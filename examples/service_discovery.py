"""Semantic Web service discovery through query containment.

Run:  python examples/service_discovery.py

One of the paper's motivating applications (Section 1): on the Semantic
Web, a service advertises what it returns as a *meta-query* over an
ontology, and a request is matched against the advertisements by
containment — service S can answer request R when R's query is contained
in S's query, i.e. every answer R needs is something S provides.

Because both sides are F-logic meta-queries, the matching is
schema-aware: a request for "mandatory string attributes of persons" is
served by an advertisement for "mandatory string attributes of any class
with members", and only the Sigma_FL constraints reveal it.
"""

from dataclasses import dataclass

from repro.api import Engine
from repro.core.query import ConjunctiveQuery
from repro.flogic import encode_rule, parse_statement


@dataclass
class Service:
    name: str
    description: str
    query: ConjunctiveQuery


def rule(text: str) -> ConjunctiveQuery:
    return encode_rule(parse_statement(text))


SERVICES = [
    Service(
        "attribute-catalog",
        "attributes with a declared type, for any class",
        rule("adv1(Att, Class) :- Class[Att*=>_]."),
    ),
    Service(
        "mandatory-auditor",
        "mandatory attributes of inhabited classes, with their type",
        rule("adv2(Att, Class) :- Class[Att {1,*} *=> _], Class[Att*=>_], _:Class."),
    ),
    Service(
        "instance-reader",
        "attribute values stored on members of a class",
        rule("adv3(Att, Class) :- O:Class, O[Att->_]."),
    ),
]

REQUESTS = [
    (
        "typed attributes of classes that have a subclass",
        rule("req1(Att, Class) :- Class[Att*=>T], Sub::Class."),
    ),
    (
        "mandatory typed attributes of classes with a member that stores a value",
        rule(
            "req2(Att, Class) :- Class[Att {1,*} *=> _], Class[Att*=>T], "
            "O:Class, O[Att->V]."
        ),
    ),
    (
        "attributes that are functional somewhere",
        rule("req3(Att, Class) :- Class[Att {0:1} *=> _]."),
    ),
]


def main() -> None:
    engine = Engine()
    print("service matchmaking: request ⊆ advertisement ⇒ service qualifies\n")
    for req_desc, request in REQUESTS:
        print(f"request: {req_desc}")
        print(f"         {request}")
        matches = []
        for service in SERVICES:
            result = engine.check(request, service.query)
            if result.contained:
                matches.append(service.name)
        if matches:
            for name in matches:
                print(f"  ✓ served by {name}")
        else:
            print("  ✗ no advertised service can answer this request")
        print()

    # The interesting one explained: req2 is served by instance-reader
    # because the *mandatory* constraint guarantees every member stores a
    # value (rho_10 + rho_5) — schema knowledge a plain matcher lacks.
    req2 = REQUESTS[1][1]
    reader = SERVICES[2]
    result = engine.check(req2, reader.query)
    print("why does instance-reader serve req2?")
    print(" ", result.explain())


if __name__ == "__main__":
    main()
