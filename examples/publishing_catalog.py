"""A publishing catalog: a realistic KB workload from a data file.

Run:  python examples/publishing_catalog.py

Loads ``examples/data/publishing.flq`` — a small publishing-house
ontology — and walks through the kinds of questions an application would
actually ask: schema exploration (pure meta-queries), mixed data/meta
queries, integrity analysis, provenance, and a containment check between
two candidate catalog views.
"""

from pathlib import Path

from repro import minimize_query
from repro.api import Engine
from repro.flogic import KnowledgeBase, encode_rule, parse_statement

DATA = Path(__file__).parent / "data" / "publishing.flq"


def main() -> None:
    kb = KnowledgeBase.from_file(DATA)
    print(f"loaded {len(kb)} facts; consistent: {kb.is_consistent()}\n")

    print("schema exploration — what kinds of publications exist?")
    for answer in kb.ask("?- X::publication."):
        print("  ", answer)

    print("\nwhich classes require at least one value for which attribute?")
    for answer in kb.ask("?- C[Att {1,*} *=> _]."):
        print("  ", answer)

    print("\nmixed query — string attributes of novels and their values on b1984:")
    for answer in kb.ask("?- novel[Att*=>string], b1984[Att->Val]."):
        print("  ", answer)

    print("\ninheritance at work — b1984 is a publication with a title:")
    print("   ", kb.ask("?- b1984[title->T]."))

    print("\ntype correctness — orwell is classified as an author, hence a person:")
    print("   orwell:person ?", kb.holds("?- orwell:person."))
    print("   why?")
    print(kb.explain("orwell:person.").pretty())

    print("\nmandatory attributes witness values even when not stored:")
    print("   farm has some narrator name?", kb.ask("?- farm[narratedBy->P], P[name->N]."))

    print("\ncontainment as view analysis:")
    view_a = encode_rule(
        parse_statement(
            "authored_books(B, T) :- B:book, B[title->T], B[writtenBy->A], A:author."
        )
    )
    view_b = encode_rule(
        parse_statement("titled_pubs(B, T) :- B:publication, B[title->T].")
    )
    engine = Engine()
    absolute = engine.check(view_a, view_b).contained
    relative = engine.check(
        view_a, view_b, schema=kb.schema_atoms()
    ).contained
    print("   authored_books ⊆ titled_pubs  (absolute)          ?", absolute)
    print("   authored_books ⊆ titled_pubs  (relative to schema)?", relative)
    print(
        "   — absolutely, B:book does not imply B:publication; relative to\n"
        "     this schema, book::publication makes it so (rho_3)."
    )
    print(
        "   titled_pubs ⊆ authored_books (relative)?",
        engine.check(view_b, view_a, schema=kb.schema_atoms()).contained,
    )

    print("\nquery minimisation — the author check is redundant:")
    redundant = encode_rule(
        parse_statement(
            "r(B) :- B:book, B[writtenBy->A], A:author, B[writtenBy->A2]."
        )
    )
    print("   ", minimize_query(redundant))


if __name__ == "__main__":
    main()
