"""Quickstart: decide your first F-logic meta-query containment.

Run:  python examples/quickstart.py

Reproduces the paper's opening example (Section 1): attribute pairs
joinable through a subclass hop are joinable directly, *because of* the
Sigma_FL constraints — the classic constraint-free test cannot see it.
"""

from repro import ConjunctiveQuery, Variable, contained_classic, is_contained
from repro.core import sub, type_
from repro.flogic import encode_rule, parse_statement


def api_style() -> None:
    """Build the queries programmatically."""
    A, B, T1, T2, T3, W = (Variable(n) for n in ("A", "B", "T1", "T2", "T3", "W"))

    # q(A,B): A's range is a *subclass* of B's domain.
    q = ConjunctiveQuery(
        "q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, W))
    )
    # qq(A,B): A's range *is* B's domain.
    qq = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, W)))

    print("q  =", q)
    print("qq =", qq)

    result = is_contained(q, qq)
    print(f"\nq ⊆ qq under Sigma_FL?   {result.contained}")
    print(f"witness homomorphism:    {result.witness}")
    print(f"chase levels examined:   {result.level_bound}")

    print(f"\nq ⊆ qq classically?      {contained_classic(q, qq).contained}")
    print(f"qq ⊆ q under Sigma_FL?   {is_contained(qq, q).contained}")


def parser_style() -> None:
    """The same check, writing F-logic Lite syntax directly."""
    q = encode_rule(parse_statement("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."))
    qq = encode_rule(parse_statement("qq(A,B) :- T1[A*=>T2], T2[B*=>_]."))
    result = is_contained(q, qq)
    print("\n--- via the F-logic parser ---")
    print(result.explain())


if __name__ == "__main__":
    api_style()
    parser_style()
