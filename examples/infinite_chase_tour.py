"""A guided tour of the infinite chase (Example 2 / Figure 1).

Run:  python examples/infinite_chase_tour.py

Walks through everything Section 4 of the paper says about the chase of

    q() :- mandatory(A,T), type(T,A,T), sub(T,U).

— the cycle detection, the per-level structure, the locality of secondary
arcs (Lemma 5), the repetition of equivalent conjuncts (Definition 6),
and the Lemma-9 folding of deep conjuncts into the first 2|q| levels that
makes containment decidable despite the infinity.
"""

from repro.analysis import check_locality, collect_chase_stats, predict_chase_termination
from repro.chase import ChaseGraph, bounded_image, chase, equivalent
from repro import is_contained
from repro.flogic import encode_rule, parse_statement
from repro.workloads import EXAMPLE2_QUERY


def main() -> None:
    q = EXAMPLE2_QUERY
    print("query:", q, "\n")

    print("1. static analysis predicts the infinite chase:")
    print("  ", predict_chase_termination(q), "\n")

    print("2. chase the first 12 levels (restricted chase, Definition 2):")
    result = chase(q, max_level=12, track_graph=True)
    print(result.instance.pretty())
    stats = collect_chase_stats(result)
    print(f"\n   growth per level: {stats.growth_per_level()}")

    print("\n3. Lemma 5 (locality): secondary arcs stay local")
    graph = ChaseGraph.from_result(result)
    violations = check_locality(graph)
    print(
        f"   {len(graph.secondary_arcs())} secondary arcs, "
        f"{len(violations)} locality violations"
    )

    print("\n4. Definition 6: the chain repeats up to equivalence")
    atoms = sorted(result.atoms(), key=lambda a: (result.instance.level_of(a), str(a)))
    data_atoms = [a for a in atoms if a.predicate == "data"]
    first, second = data_atoms[0], data_atoms[1]
    print(f"   {first} (level {result.instance.level_of(first)})")
    print(f"   {second} (level {result.instance.level_of(second)})")
    print(f"   equivalent? {equivalent(first, second)}")

    print("\n5. Lemma 9: any deep conjunct folds below delta = 2|q| =", 2 * q.size)
    delta = 2 * q.size
    deep = [a for a in atoms if result.instance.level_of(a) > delta]
    sample = deep[-1]
    image = bounded_image(result.instance, sample, delta)
    print(f"   {sample} (level {result.instance.level_of(sample)})")
    print(f"   folds to {image} (level {result.instance.level_of(image)})")

    print("\n6. Theorem 12: containment is decidable against this infinite chase")
    q2 = encode_rule(
        parse_statement("qq() :- data(X1, A1, Y1), data(Y1, A1, Z1).")
    )
    verdict = is_contained(q, q2)
    print(f"   q ⊆ qq (two consecutive data hops exist)? {verdict.contained}")
    print(f"   decided by inspecting {verdict.level_bound} chase levels only")


if __name__ == "__main__":
    main()
