"""The RDF/SPARQL bridge: BGP answering and containment over P_FL.

Run:  python examples/rdf_sparql.py

The paper remarks that its results "apply to SPARQL as well" because RDF
shares F-logic's meta-data features.  This example encodes an RDF graph
and SPARQL-style basic graph patterns into P_FL, answers the patterns
over the Sigma_FL closure, and decides BGP containment.
"""

from repro import contained_classic
from repro.api import Engine
from repro.core.terms import Variable
from repro.flogic import KnowledgeBase
from repro.rdf import BGPQuery, Graph, TriplePattern, encode_bgp, encode_graph, term


def build_graph() -> Graph:
    g = Graph()
    # schema
    g.add("student", "rdfs:subClassOf", "person")
    g.add("professor", "rdfs:subClassOf", "person")
    g.add("advises", "rdfs:range", "student")
    # data
    g.add("turing", "rdf:type", "professor")
    g.add("ada", "rdf:type", "student")
    g.add("turing", "advises", "ada")
    g.add("turing", "advises", "hopper")
    return g


def main() -> None:
    graph = build_graph()
    kb = KnowledgeBase()
    for atom in encode_graph(graph):
        kb.add(atom)
    print(f"encoded {len(graph)} triples into {len(kb)} P_FL facts\n")

    # SELECT ?x WHERE { ?x rdf:type person . }  — entailed members.
    x, c, d = Variable("x"), Variable("c"), Variable("d")
    persons = encode_bgp(
        BGPQuery("persons", (x,), (TriplePattern(x, term("rdf:type"), term("person")),))
    )
    print("SELECT ?x WHERE { ?x rdf:type person }")
    for answer in kb.ask(persons):
        print("  ", answer)

    # rdfs:range entailment: advisees are students, hence persons.
    print("\nhopper was only ever an object of 'advises'; still a person:")
    print("   ", kb.holds("?- hopper:person."))

    # BGP containment: subclass-members ⊆ class-members (rho_3).
    q1 = encode_bgp(
        BGPQuery(
            "subclass_members",
            (x, c),
            (
                TriplePattern(x, term("rdf:type"), d),
                TriplePattern(d, term("rdfs:subClassOf"), c),
            ),
        )
    )
    q2 = encode_bgp(
        BGPQuery("class_members", (x, c), (TriplePattern(x, term("rdf:type"), c),))
    )
    engine = Engine()
    print("\nBGP containment: subclass_members ⊆ class_members?")
    print("   Sigma_FL:", engine.check(q1, q2).contained)
    print("   classic: ", contained_classic(q1, q2).contained)
    print("   reverse: ", engine.check(q2, q1).contained)


if __name__ == "__main__":
    main()
