"""Query optimisation with containment: dropping Sigma-redundant joins.

Run:  python examples/query_optimizer.py

The paper's first motivation for containment is query optimisation.
This example minimises meta-queries: conjuncts that the Sigma_FL
constraints make redundant are detected by containment checks and
removed, shrinking the join the query engine has to execute.  Classic
(constraint-free) minimisation finds none of these — each redundancy
below exists only because of a specific rho rule.
"""

from repro.containment import minimize_query
from repro.flogic import KnowledgeBase, encode_rule, parse_statement

CASES = [
    (
        "rho3: membership in the superclass is implied",
        "q1(O) :- member(O, C), sub(C, D), member(O, D).",
    ),
    (
        "rho2: the transitive subclass hop is implied",
        "q2(X, Z) :- sub(X, Y), sub(Y, Z), sub(X, Z).",
    ),
    (
        "rho7: the inherited signature is implied",
        "q3(A) :- sub(C, D), type(D, A, T), type(C, A, T), member(O, C).",
    ),
    (
        "rho1: the value's membership in the type is implied",
        "q4(V) :- type(O, A, T), data(O, A, V), member(V, T).",
    ),
    (
        "nothing redundant: already minimal",
        "q5(A, B) :- type(T1, A, T2), type(T2, B, W).",
    ),
]


def main() -> None:
    for title, source in CASES:
        query = encode_rule(parse_statement(source))
        result = minimize_query(query)
        print(f"-- {title}")
        print(f"   before: {query}")
        print(f"   after:  {result.minimized}")
        print(f"   {result}")
        print()

    # Sanity: minimised and original agree on an actual database.
    kb = KnowledgeBase().load(
        """
        student::person. person::agent.
        john:student. mary:person.
        """
    )
    original = encode_rule(
        parse_statement("q(O) :- member(O, C), sub(C, D), member(O, D).")
    )
    minimised = minimize_query(original).minimized
    assert kb.ask(original) == kb.ask(minimised)
    print("evaluation check: original and minimised queries agree on the KB ✓")


if __name__ == "__main__":
    main()
