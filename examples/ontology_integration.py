"""Ontology integration: taxonomies, unions and termination analysis.

Run:  python examples/ontology_integration.py

The paper's Section-5 outlook — classification, more expressive queries,
broader constraint classes — exercised through `repro.extensions`:

1. two teams publish view definitions over a shared P_FL schema; we
   *classify* them into a subsumption taxonomy (finding that some views
   are Sigma_FL-equivalent even though they look different);
2. a federated query is a *union* of per-source queries; UCQ containment
   shows the federation is subsumed by the global view;
3. before shipping a custom constraint set, *weak acyclicity* analysis
   tells us whether its chase terminates — and shows why Sigma_FL itself
   needed the paper's bespoke bound.
"""

from repro.dependencies import SIGMA_FL, SIGMA_FL_MINUS
from repro.extensions import (
    UnionQuery,
    analyse_weak_acyclicity,
    classify_queries,
    ucq_contained,
)
from repro.flogic import encode_rule, parse_statement


def rule(text: str):
    return encode_rule(parse_statement(text))


def main() -> None:
    # -- 1. classify the two teams' view definitions -----------------------
    views = [
        rule("all_members(O, C) :- O:C."),
        rule("inherited_members(O, C) :- O:D, D::C."),
        # Team B wrote the redundant variant; Sigma_FL makes it equivalent.
        rule("inherited_members_b(O, C) :- O:D, D::C, O:C."),
        rule("typed_members(O, C) :- O:C, C[A*=>T]."),
        rule("mandatory_members(O, C) :- O:C, C[A {1,*} *=> _]."),
    ]
    taxonomy = classify_queries(views)
    print("view taxonomy (Hasse diagram, ⊑ points at the more general):")
    print(taxonomy.pretty())
    print()

    # -- 2. a federated union subsumed by the global view -------------------
    federation = UnionQuery(
        "federation",
        (
            rule("src1(O, C) :- O:D, D::C."),
            rule("src2(O, C) :- O:C, C[A {1,*} *=> _]."),
        ),
    )
    global_view = views[0]
    result = ucq_contained(federation, global_view)
    print("federated union ⊆ global members view?")
    print(result.explain())
    print()

    # -- 3. termination analysis for constraint sets -------------------------
    print("weak-acyclicity analysis:")
    print("  Sigma_FL          :", analyse_weak_acyclicity(SIGMA_FL))
    print()
    print("  Sigma_FL - {rho5} :", analyse_weak_acyclicity(SIGMA_FL_MINUS))


if __name__ == "__main__":
    main()
