"""A university ontology: loading, reasoning, and meta-querying.

Run:  python examples/university_ontology.py

Builds the paper's Section-2 running example as a knowledge base and runs
the paper's own meta-queries over it, including the data/meta *mixed*
query, consistency checking against functional attributes, and mandatory
attributes witnessed by invented values.
"""

from repro.flogic import KnowledgeBase

ONTOLOGY = """
% ---- schema: classes ------------------------------------------------
freshman::student.
student::person.
employee::person.
ta::student.
ta::employee.

% ---- schema: signatures ---------------------------------------------
person[age {0:1} *=> number].        % at most one age
person[name {1:*} *=> string].       % name is mandatory
student[major *=> string].
employee[salary {0:1} *=> number].

% ---- data -------------------------------------------------------------
john:freshman.
mary:ta.
bob:employee.
john[age->19].
john[name->'John Doe'].
john[major->'CS'].
mary[name->'Mary Major'].
mary[salary->55000].
bob[name->'Bob Builder'].
"""


def main() -> None:
    kb = KnowledgeBase()
    kb.load(ONTOLOGY)
    print(f"loaded {len(kb)} base facts; consistent: {kb.is_consistent()}")

    print("\n?- X::person.          (all subclasses of person — a meta-query)")
    for answer in kb.ask("?- X::person."):
        print("  ", answer)

    print("\n?- student[Att*=>string].   (string-typed attributes of student)")
    for answer in kb.ask("?- student[Att*=>string]."):
        print("  ", answer)

    print("\n?- student[Att*=>string], john[Att->Val].   (the paper's mixed query)")
    for answer in kb.ask("?- student[Att*=>string], john[Att->Val]."):
        print("  ", answer)

    print("\nmary is both student and employee (multiple inheritance):")
    print("   mary:person ?", kb.holds("?- mary:person."))
    print("   mary[salary*=>number] ?", kb.holds("?- mary[salary*=>number]."))

    print("\nmandatory names: everyone has one, possibly invented:")
    for answer in kb.ask("?- bob[name->V]."):
        print("  ", answer)

    print("\ntype correctness (rho_1): john's age 19 is therefore a number:")
    print("   19:number ?", kb.holds("?- 19:number."))

    print("\nnow violate functionality (age is {0:1}):")
    kb.add("john[age->21].")
    print("   consistent after second age?", kb.is_consistent())


if __name__ == "__main__":
    main()
