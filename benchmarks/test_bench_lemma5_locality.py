"""E5 — Lemma 5 locality validation over the randomized corpus."""

from repro.analysis.stats import check_locality
from repro.chase.engine import chase
from repro.chase.graph import ChaseGraph
from repro.workloads import EXAMPLE2_QUERY


class TestLemma5:
    def test_lemma5_locality(self, benchmark, reports):
        report = reports("E5")
        assert report.data["violations"] == 0
        assert report.data["secondary_arcs"] > 0
        print()
        print(report.render())

        def check_one():
            result = chase(EXAMPLE2_QUERY, max_level=10, track_graph=True)
            graph = ChaseGraph.from_result(result)
            return check_locality(graph)

        violations = benchmark(check_one)
        assert violations == []
