"""Benchmark-suite configuration.

Every benchmark regenerates one experiment row of DESIGN.md's index and
*asserts the paper-level claim* before timing anything, so
``pytest benchmarks/ --benchmark-only`` doubles as a reproduction check.
Experiment tables are printed (visible with ``-s`` or on failure); the
timed section is always the core operation the experiment is about.
"""

import pytest


@pytest.fixture(scope="session")
def reports():
    """Cache of experiment reports shared across benchmark files."""
    from repro.experiments import EXPERIMENTS

    cache = {}

    def get(experiment_id: str):
        if experiment_id not in cache:
            cache[experiment_id] = EXPERIMENTS[experiment_id]()
        return cache[experiment_id]

    return get
