"""E6 — Lemma 9 / Figure 2: folding deep conjuncts below 2|q| levels."""

from repro.chase.engine import chase
from repro.chase.paths import bounded_image
from repro.workloads import EXAMPLE2_QUERY


class TestLemma9:
    def test_lemma9_bounded_images(self, benchmark, reports):
        report = reports("E6")
        assert report.data["all_hold"]
        print()
        print(report.render())

        delta = 2 * EXAMPLE2_QUERY.size
        result = chase(EXAMPLE2_QUERY, max_level=3 * delta)
        instance = result.instance
        deep = [a for a in instance if instance.level_of(a) > delta]
        assert deep

        def fold_all():
            return [bounded_image(instance, atom, delta) for atom in deep]

        images = benchmark(fold_all)
        assert all(image is not None for image in images)
        assert all(instance.level_of(image) <= delta for image in images)

    def test_lemma9_constructive_excision(self, benchmark):
        """The proof's own clipping construction, timed against the search."""
        from repro.chase.excision import excise
        from repro.chase.graph import ChaseGraph

        delta = 2 * EXAMPLE2_QUERY.size
        result = chase(EXAMPLE2_QUERY, max_level=3 * delta, track_graph=True)
        instance = result.instance
        graph = ChaseGraph.from_result(result)
        deep = [a for a in instance if instance.level_of(a) > delta]

        def excise_all():
            return [excise(graph, instance, atom, delta) for atom in deep]

        traces = benchmark(excise_all)
        assert all(trace is not None for trace in traces)
        assert all(graph.level(trace.result) <= delta for trace in traces)
