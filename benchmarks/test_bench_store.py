"""Persistent snapshot store: quantify warm restarts and parallel attach.

Two claims, both CI-guarded:

* **snapshot-warm restarts**: a batch decided once with a persistent
  :class:`~repro.containment.store.ChaseStore`, then re-decided by a
  *fresh* store over the same database (a restarted process), must beat
  the cold run — every group hydrates from disk instead of re-chasing,
  and not a single full chase happens on the warm pass;
* **parallel attach**: ``check_all(parallel=True)`` dispatching through
  the zero-pickle snapshot attach must beat sequential throughput on a
  machine with >= 4 usable cores (the same guard as
  ``benchmarks/test_bench_anytime.py``, measured here against the store
  benchmark's own corpus).

Everything measured lands in ``BENCH_store.json`` at the repo root —
uploaded as a CI artifact.  Written against plain pytest on purpose —
CI runs it without the pytest-benchmark plugin.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.containment.bounded import ContainmentChecker
from repro.containment.store import ChaseStore
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

REPEATS = 3
#: The warm pass replaces every full chase with a snapshot hydration; it
#: must win outright, not merely tie.
WARM_SPEEDUP = 1.0
PARALLEL_SPEEDUP = 1.0
PARALLEL_WORKERS = 4


def store_corpus(n_groups=6, pairs_per_group=2, size=6, seed=1300):
    """Independent cyclic chase groups — the chase is the dominant cost."""
    pairs = []
    for g in range(n_groups):
        params = QueryGenParams(
            n_atoms=size, n_variables=size + 2, cycle_length=1, head_arity=1
        )
        gen = QueryGenerator(seed + g, params)
        q1, q2 = gen.containment_pair()
        pairs.append((q1, q2))
        for _ in range(pairs_per_group - 1):
            pairs.append((q1, gen.query()))
    return pairs


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


@pytest.fixture(scope="module")
def bench():
    """Run every measurement once; tests assert slices of the payload."""
    batch = store_corpus()

    cold_best = warm_best = float("inf")
    warm_full_chases = warm_snapshot_hits = 0
    verdicts_agree = True
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as tmp:
            db = os.path.join(tmp, "chase.db")
            cold_store = ChaseStore(persist=db)
            cold_seconds, cold_results = timed(
                lambda: ContainmentChecker(store=cold_store).check_all(batch)
            )
            cold_store.close()

            # A fresh store over the populated database — a restart.
            warm_store = ChaseStore(persist=db)
            warm_seconds, warm_results = timed(
                lambda: ContainmentChecker(store=warm_store).check_all(batch)
            )
            warm_full_chases = warm_store.stats.misses
            warm_snapshot_hits = warm_store.stats.snapshot_hits
            warm_store.close()

            verdicts_agree = verdicts_agree and [
                r.contained for r in cold_results
            ] == [r.contained for r in warm_results]
            cold_best = min(cold_best, cold_seconds)
            warm_best = min(warm_best, warm_seconds)

    sequential_seconds = float("inf")
    parallel_seconds = float("inf")
    for _ in range(REPEATS):
        seconds, _ = timed(lambda: ContainmentChecker().check_all(batch))
        sequential_seconds = min(sequential_seconds, seconds)
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as tmp:
            store = ChaseStore(persist=os.path.join(tmp, "chase.db"))
            try:
                seconds, _ = timed(
                    lambda: ContainmentChecker(store=store).check_all(
                        batch, parallel=True, max_workers=PARALLEL_WORKERS
                    )
                )
            finally:
                store.close()
        parallel_seconds = min(parallel_seconds, seconds)

    payload = {
        "corpus": {
            "groups": len({q1.canonical_key() for q1, _ in batch}),
            "pairs": len(batch),
        },
        "restart": {
            "cold_seconds": cold_best,
            "warm_seconds": warm_best,
            "speedup": cold_best / max(warm_best, 1e-9),
            "warm_full_chases": warm_full_chases,
            "warm_snapshot_hits": warm_snapshot_hits,
            "verdicts_agree": verdicts_agree,
        },
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "dispatch": "snapshot-attach",
            "usable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "sequential_seconds": sequential_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": sequential_seconds / max(parallel_seconds, 1e-9),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestSnapshotWarmRestart:
    def test_warm_beats_cold(self, bench):
        restart = bench["restart"]
        assert restart["verdicts_agree"]
        assert restart["speedup"] > WARM_SPEEDUP

    def test_warm_pass_never_rechases(self, bench):
        restart = bench["restart"]
        assert restart["warm_full_chases"] == 0
        assert restart["warm_snapshot_hits"] >= bench["corpus"]["groups"]


class TestParallelAttach:
    def test_parallel_beats_sequential_on_big_boxes(self, bench):
        parallel = bench["parallel"]
        assert bench["corpus"]["groups"] >= 4
        if parallel["usable_cpus"] >= PARALLEL_WORKERS:
            assert parallel["speedup"] > PARALLEL_SPEEDUP
        else:
            pytest.skip(
                f"only {parallel['usable_cpus']} usable cores; "
                f"parallel speedup {parallel['speedup']:.2f}x recorded, "
                "assertion needs >= 4 cores"
            )


class TestArtifact:
    def test_bench_json_written(self, bench):
        on_disk = json.loads(BENCH_PATH.read_text())
        assert {"corpus", "restart", "parallel"} <= set(on_disk)
        assert on_disk["restart"]["speedup"] == pytest.approx(
            bench["restart"]["speedup"]
        )
