"""E12 — BGP containment through the RDF bridge."""

from repro.containment import ContainmentChecker
from repro.experiments.e12_rdf_bridge import bridge_pairs
from repro.rdf import encode_bgp


class TestRDFBridge:
    def test_bridge_report(self, reports):
        report = reports("E12")
        assert report.data["all_match"]
        print()
        print(report.render())

    def test_bgp_containment_speed(self, benchmark):
        bgp1, bgp2, expected = bridge_pairs()[0]
        q1, q2 = encode_bgp(bgp1), encode_bgp(bgp2)

        def decide():
            return ContainmentChecker().check(q1, q2)

        result = benchmark(decide)
        assert result.contained == expected

    def test_graph_encoding_speed(self, benchmark):
        from repro.rdf import Graph, encode_graph

        graph = Graph()
        for i in range(50):
            graph.add(f"e{i}", "rdf:type", f"c{i % 5}")
            graph.add(f"e{i}", "knows", f"e{(i + 1) % 50}")
        for i in range(4):
            graph.add(f"c{i}", "rdfs:subClassOf", f"c{i + 1}")

        atoms = benchmark(encode_graph, graph)
        assert len(atoms) > 100
