"""E8 — Theorem 12: verdict stability when the level bound is inflated."""

from repro.containment import ContainmentChecker, theorem12_bound
from repro.workloads import EXAMPLE2_QUERY, INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ


class TestTheorem12Bound:
    def test_bound_stability(self, benchmark, reports):
        report = reports("E8")
        assert report.data["flips"] == 0
        print()
        print(report.render())

        q1, q2 = INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ
        base = theorem12_bound(q1, q2)

        def decide_at_theorem_bound():
            return ContainmentChecker().check(q1, q2, level_bound=base)

        result = benchmark(decide_at_theorem_bound)
        inflated = ContainmentChecker().check(q1, q2, level_bound=4 * base)
        assert result.contained == inflated.contained

    def test_bound_cost_on_infinite_chase(self, benchmark):
        """Deciding against Example 2's infinite chase at the paper bound."""
        from repro.flogic import encode_rule, parse_statement

        q2 = encode_rule(
            parse_statement("qq() :- data(X1, A1, Y1), data(Y1, A1, Z1).")
        )

        def decide():
            return ContainmentChecker().check(EXAMPLE2_QUERY, q2)

        result = benchmark(decide)
        assert result.contained
        assert result.level_bound == theorem12_bound(EXAMPLE2_QUERY, q2)

    def test_inflated_recheck_is_extend_only(self, benchmark):
        """Re-checking at 4x the bound must extend the stored chase, never
        re-run it: the ChaseStore counters show zero extra full chases."""
        from repro.flogic import encode_rule, parse_statement

        # Example 2's chase is infinite, so the 1x prefix cannot already
        # cover the 4x bound — the re-check genuinely needs deeper levels.
        q2 = encode_rule(
            parse_statement("qq() :- data(X1, A1, Y1), data(Y1, A1, Z1).")
        )
        base = theorem12_bound(EXAMPLE2_QUERY, q2)

        def check_then_recheck_inflated():
            # Monolithic schedule: the anytime default stops chasing at
            # the witness level, so only this path drives the stored run
            # all the way to the inflated bound.
            checker = ContainmentChecker(anytime=False)
            first = checker.check(EXAMPLE2_QUERY, q2, level_bound=base)
            inflated = checker.check(EXAMPLE2_QUERY, q2, level_bound=4 * base)
            return checker, first, inflated

        checker, first, inflated = benchmark(check_then_recheck_inflated)
        assert first.contained == inflated.contained
        assert first.chase_outcome == "full-chase"
        assert inflated.chase_outcome == "cache-extend"
        stats = checker.stats
        assert stats.full_chases == 1, f"re-chase detected: {stats}"
        assert stats.extensions == 1
        run = checker.store.peek(EXAMPLE2_QUERY)
        assert run is not None and run.bound >= 4 * base
