"""E8 — Theorem 12: verdict stability when the level bound is inflated."""

from repro.containment import ContainmentChecker, theorem12_bound
from repro.workloads import EXAMPLE2_QUERY, INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ


class TestTheorem12Bound:
    def test_bound_stability(self, benchmark, reports):
        report = reports("E8")
        assert report.data["flips"] == 0
        print()
        print(report.render())

        q1, q2 = INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ
        base = theorem12_bound(q1, q2)

        def decide_at_theorem_bound():
            return ContainmentChecker().check(q1, q2, level_bound=base)

        result = benchmark(decide_at_theorem_bound)
        inflated = ContainmentChecker().check(q1, q2, level_bound=4 * base)
        assert result.contained == inflated.contained

    def test_bound_cost_on_infinite_chase(self, benchmark):
        """Deciding against Example 2's infinite chase at the paper bound."""
        from repro.flogic import encode_rule, parse_statement

        q2 = encode_rule(
            parse_statement("qq() :- data(X1, A1, Y1), data(Y1, A1, Z1).")
        )

        def decide():
            return ContainmentChecker().check(EXAMPLE2_QUERY, q2)

        result = benchmark(decide)
        assert result.contained
        assert result.level_bound == theorem12_bound(EXAMPLE2_QUERY, q2)
