"""Sharded network serving under replayed traffic, quantified.

A traffic-replay harness against a live ``serve_tcp`` server (real TCP
connections, real pipelining) with a **Zipfian key skew** — the regime
the serving layer is built for: most requests hit a hot minority of
query keys, the tail keeps pressure on the LRUs.  Three claims feed
``BENCH_serve.json``:

* **warm sharded latency** — with per-shard chase-store/verdict caches
  deliberately smaller than the key set, N shards partition the key
  space so their aggregate warm state covers it while a single shard
  thrashes; on a machine with >= 4 usable cores the sharded warm p50
  must beat single-shard (on smaller boxes the numbers are recorded,
  the assertion is skipped — same convention as BENCH_anytime's
  parallel guard).
* **overload rejects, never times out** — thousands of concurrent
  clients burst cold work at a deliberately tiny-capacity server: a
  positive fraction must be *rejected* with structured reasons
  (``queue-full`` from the front door, ``quota-exhausted`` for the
  metered tenant) and **zero** clients may time out waiting — every
  line gets an answer.
* **per-shard warmth is observable** — ``shard_stats`` reports routing
  spread and store/result hit rates for every shard.

Written against plain pytest on purpose — CI runs it without the
pytest-benchmark plugin.
"""

import asyncio
import bisect
import json
import os
import random
import statistics
import time
from pathlib import Path

import pytest

from repro.flogic.printer import query_to_flogic
from repro.serve import ContainmentServer, TenantPolicy, TenantRegistry
from repro.store import StoreConfig
from repro.workloads.query_gen import QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Distinct containment pairs (the key space of the replay).
DISTINCT_KEYS = 36
#: Zipf exponent of the key-popularity distribution.
ZIPF_S = 1.2
#: Requests in the latency replay (per configuration, per pass).
TRACE_LEN = 480
#: Concurrent client connections in the latency replay.
LATENCY_CLIENTS = 48
#: Sharded configuration under test (vs the single-shard control).
SHARDS = 4
#: Per-shard cache sizing — smaller than the key set on purpose, so one
#: shard cannot hold the working set but SHARDS of them together can.
STORE_CAPACITY = 6
RESULT_CACHE = 8
#: Concurrent client connections in the overload burst.
OVERLOAD_CLIENTS = 1200
#: Per-response client patience before we call it a timeout (seconds).
CLIENT_TIMEOUT = 120.0

_CPUS = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)


def zipf_trace(n_keys: int, length: int, *, s: float = ZIPF_S, seed: int = 71):
    """A deterministic Zipf(s)-skewed sequence of key ranks."""
    weights = [rank ** -s for rank in range(1, n_keys + 1)]
    cdf, total = [], 0.0
    for w in weights:
        total += w
        cdf.append(total)
    rng = random.Random(seed)
    return [bisect.bisect_left(cdf, rng.random() * total) for _ in range(length)]


def corpus_lines(n_keys: int = DISTINCT_KEYS, seed: int = 1400):
    """n_keys distinct check-request lines (flq rule strings)."""
    gen = QueryGenerator(seed)
    lines = []
    for i in range(n_keys):
        q1, q2 = gen.containment_pair()
        lines.append(
            json.dumps(
                {
                    "id": i,
                    "op": "check",
                    "q1": query_to_flogic(q1),
                    "q2": query_to_flogic(q2),
                }
            )
        )
    return lines


async def _client_replay(host, port, requests, latencies, timeouts):
    """One connection replaying its request slice strictly in order."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for line in requests:
            t0 = time.perf_counter()
            writer.write((line + "\n").encode())
            await writer.drain()
            try:
                raw = await asyncio.wait_for(reader.readline(), CLIENT_TIMEOUT)
            except asyncio.TimeoutError:
                timeouts.append(line)
                return
            latencies.append(time.perf_counter() - t0)
            assert raw, "server closed mid-replay"
    finally:
        writer.close()


async def _drain(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b'{"op": "drain"}\n')
    await writer.drain()
    response = json.loads(await asyncio.wait_for(reader.readline(), CLIENT_TIMEOUT))
    assert response["drained"] is True
    writer.close()


def _run_with_server(server: ContainmentServer, session) -> dict:
    """Serve on an ephemeral port, run *session(host, port)*, drain."""

    async def main():
        bound = asyncio.get_running_loop().create_future()
        serve_task = asyncio.ensure_future(
            server.serve_tcp(
                "127.0.0.1", 0, ready=lambda h, p: bound.set_result((h, p))
            )
        )
        host, port = await asyncio.wait_for(bound, CLIENT_TIMEOUT)
        try:
            result = await session(host, port)
            await _drain(host, port)
            await asyncio.wait_for(serve_task, CLIENT_TIMEOUT)
            return result
        finally:
            if not serve_task.done():
                serve_task.cancel()
                await asyncio.gather(serve_task, return_exceptions=True)

    with server:
        return asyncio.run(main())


def latency_replay(shards: int) -> dict:
    """Warm-up pass, then a measured Zipf replay over concurrent clients."""
    lines = corpus_lines()
    trace = [lines[rank] for rank in zipf_trace(len(lines), TRACE_LEN)]
    server = ContainmentServer(
        shards,
        store_config=StoreConfig(
            capacity=STORE_CAPACITY, result_cache=RESULT_CACHE
        ),
    )

    async def session(host, port):
        async def one_pass():
            latencies, timeouts = [], []
            slices = [trace[i::LATENCY_CLIENTS] for i in range(LATENCY_CLIENTS)]
            await asyncio.gather(
                *(
                    _client_replay(host, port, s, latencies, timeouts)
                    for s in slices
                    if s
                )
            )
            return latencies, timeouts

        await one_pass()  # warm-up: populate stores and verdict caches
        latencies, timeouts = await one_pass()
        return latencies, timeouts

    latencies, timeouts = _run_with_server(server, session)
    shard_rows = [
        {
            "shard": row["shard"],
            "routed": row["routed"],
            "store_hit_rate": row["store_hit_rate"],
            "result_hit_rate": row["result_hit_rate"],
        }
        for row in server.shard_stats()
    ]
    assert not timeouts, f"{len(timeouts)} client timeouts in latency replay"
    latencies.sort()
    return {
        "shards": shards,
        "requests": len(latencies),
        "p50_ms": 1000 * statistics.median(latencies),
        "p99_ms": 1000 * latencies[int(0.99 * (len(latencies) - 1))],
        "shard_stats": shard_rows,
    }


def overload_burst() -> dict:
    """Thousands of clients burst cold work at a tiny-capacity server."""
    gen = QueryGenerator(9000)
    server = ContainmentServer(
        2,
        max_active=2,
        max_pending=2,
        tenants=TenantRegistry(
            {"metered": TenantPolicy(rate=50.0, burst=10.0)}
        ),
    )
    outcomes = {"ok": 0, "rejected": 0}
    by_reason: dict = {}
    timeouts = []

    async def client(host, port, line):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            t0 = time.perf_counter()
            writer.write((line + "\n").encode())
            await writer.drain()
            try:
                raw = await asyncio.wait_for(reader.readline(), CLIENT_TIMEOUT)
            except asyncio.TimeoutError:
                timeouts.append(time.perf_counter() - t0)
                return
            response = json.loads(raw)
            if response.get("ok"):
                outcomes["ok"] += 1
            else:
                outcomes["rejected"] += 1
                reason = response["reason"]
                by_reason[reason] = by_reason.get(reason, 0) + 1
        finally:
            writer.close()

    async def session(host, port):
        tasks = []
        for i in range(OVERLOAD_CLIENTS):
            q1, q2 = gen.containment_pair()  # distinct keys: no cache help
            request = {
                "id": i,
                "op": "check",
                "q1": query_to_flogic(q1),
                "q2": query_to_flogic(q2),
            }
            if i % 3 == 0:
                request["tenant"] = "metered"
            tasks.append(client(host, port, json.dumps(request)))
        await asyncio.gather(*tasks)
        return None

    _run_with_server(server, session)
    total = outcomes["ok"] + outcomes["rejected"]
    return {
        "clients": OVERLOAD_CLIENTS,
        "inflight_cap": server.inflight_cap,
        "answered": total,
        "completed": outcomes["ok"],
        "rejected": outcomes["rejected"],
        "rejection_rate": outcomes["rejected"] / max(total, 1),
        "rejections_by_reason": by_reason,
        "client_timeouts": len(timeouts),
    }


@pytest.fixture(scope="module")
def bench():
    """Run every measurement once; tests assert slices of the payload."""
    single = latency_replay(1)
    sharded = latency_replay(SHARDS)
    overload = overload_burst()
    payload = {
        "corpus": {
            "distinct_keys": DISTINCT_KEYS,
            "zipf_s": ZIPF_S,
            "trace_len": TRACE_LEN,
            "latency_clients": LATENCY_CLIENTS,
            "store_capacity_per_shard": STORE_CAPACITY,
            "result_cache_per_shard": RESULT_CACHE,
            "usable_cpus": _CPUS,
        },
        "single_shard": single,
        "sharded": sharded,
        "p50_speedup": single["p50_ms"] / max(sharded["p50_ms"], 1e-9),
        "overload": overload,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestWarmShardedLatency:
    def test_sharded_p50_beats_single_shard(self, bench):
        if bench["corpus"]["usable_cpus"] >= 4:
            assert bench["p50_speedup"] > 1.0
        else:
            pytest.skip(
                f"only {bench['corpus']['usable_cpus']} usable cores; "
                f"p50 speedup {bench['p50_speedup']:.2f}x recorded in "
                "BENCH_serve.json, assertion needs >= 4 cores"
            )

    def test_every_request_answered(self, bench):
        assert bench["single_shard"]["requests"] == TRACE_LEN
        assert bench["sharded"]["requests"] == TRACE_LEN

    def test_sharded_aggregate_cache_outholds_single(self, bench):
        """The mechanism behind the p50 win (core-count independent):
        N shards' caches together cover more of the key space."""
        sharded = bench["sharded"]["shard_stats"]
        assert len(sharded) == SHARDS
        assert sum(row["routed"] for row in sharded) >= TRACE_LEN


class TestShardObservability:
    def test_per_shard_hit_rates_reported(self, bench):
        for row in bench["sharded"]["shard_stats"]:
            assert set(row) == {
                "shard",
                "routed",
                "store_hit_rate",
                "result_hit_rate",
            }
        busy = [r for r in bench["sharded"]["shard_stats"] if r["routed"]]
        assert busy, "no shard saw traffic?"
        for row in busy:
            assert row["store_hit_rate"] is not None

    def test_routing_spreads_across_shards(self, bench):
        busy = [r for r in bench["sharded"]["shard_stats"] if r["routed"]]
        assert len(busy) >= 2, "Zipf replay landed on a single shard"


class TestOverload:
    def test_rejects_rather_than_times_out(self, bench):
        overload = bench["overload"]
        assert overload["client_timeouts"] == 0
        assert overload["rejected"] > 0
        assert overload["rejection_rate"] > 0.0
        assert overload["answered"] == overload["clients"]

    def test_rejections_are_structured(self, bench):
        by_reason = bench["overload"]["rejections_by_reason"]
        assert set(by_reason) <= {"queue-full", "quota-exhausted", "draining"}
        assert by_reason.get("queue-full", 0) > 0

    def test_some_work_still_completes(self, bench):
        assert bench["overload"]["completed"] > 0


class TestArtifact:
    def test_bench_json_written(self, bench):
        on_disk = json.loads(BENCH_PATH.read_text())
        assert on_disk["p50_speedup"] == pytest.approx(bench["p50_speedup"])
        assert {"corpus", "single_shard", "sharded", "overload"} <= set(on_disk)
