"""Guard: disabled observability must cost < 3% of a containment decision.

The instrumented call sites fall in two classes:

* **coarse spans** — an unconditional ``with tracer.span(...)`` per phase
  (chase extension, semi-naive round, EGD fixpoint, store lookup, hom
  search, containment check).  Against the no-op tracer this is one
  method call returning a shared stateless object plus a no-op
  enter/exit.
* **hot-path guards** — a single ``tracer.enabled`` attribute check per
  chase trigger (the only per-trigger cost when disabled).

Rather than benchmark two build states of the code (there is no
un-instrumented build to compare against), the guard bounds the damage
from first principles: count how many instrumentation sites an enabled
run of the reference decision actually passes through, measure the
per-site cost of the no-op primitives in a tight loop, and require

    sites * max(noop_span_cost, enabled_check_cost) < 3% * decision_time.

This is an over-estimate of the true overhead (it prices every site at
the dearest primitive), so passing it implies the < 3% acceptance bar.
Written against plain pytest on purpose — CI runs it without the
pytest-benchmark plugin.
"""

import time

import pytest

from repro.containment.bounded import ContainmentChecker
from repro.obs import NOOP_TRACER, Observability, Tracer
from repro.workloads.corpus import EXAMPLE2_QUERY, INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ

#: Reference workload: the Section-1 pair plus a decision against the
#: Figure-1 infinite chase — both chase and hom-search phases exercised.
PAIRS = (
    (INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ),
    (INTRO_JOINABLE_QQ, INTRO_JOINABLE_Q),
    (EXAMPLE2_QUERY, EXAMPLE2_QUERY),
)

OVERHEAD_BUDGET = 0.03


def _decide_all(obs=None, **checker_kwargs):
    checker = ContainmentChecker(obs=obs, **checker_kwargs)
    return [checker.check(q1, q2) for q1, q2 in PAIRS]


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _per_call(fn, n=50_000):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


class TestNoopTracerIsFree:
    def test_default_observability_records_nothing(self):
        results = _decide_all()
        assert all(isinstance(r.contained, bool) for r in results)
        assert NOOP_TRACER.spans == ()
        assert NOOP_TRACER.as_dicts() == []

    def test_enabled_run_counts_instrumentation_sites(self):
        obs = Observability.on()
        _decide_all(obs)
        spans = sum(1 for _ in obs.tracer.walk())
        assert spans > 0
        names = {span.name for _, span in obs.tracer.walk()}
        assert {"containment.check", "store.lookup", "chase.extend", "hom.search"} <= names


class TestOverheadGuard:
    def test_disabled_overhead_under_three_percent(self):
        # 1. The real cost of the reference decision, no observability.
        decision_s = _best_of(_decide_all)

        # 2. How many sites an identical (enabled) run passes through:
        #    every recorded span was one `with tracer.span(...)` site, and
        #    per-trigger guards are bounded by the trigger spans recorded.
        obs = Observability.on()
        _decide_all(obs)
        sites = sum(1 for _ in obs.tracer.walk())
        assert sites > 0

        # 3. Per-site cost of the disabled primitives, measured hot.
        noop_span_s = _per_call(lambda: NOOP_TRACER.span("x", a=1).__exit__(None, None, None))
        guard_s = _per_call(lambda: NOOP_TRACER.enabled)
        per_site_s = max(noop_span_s, guard_s)

        worst_case_overhead = sites * per_site_s
        ratio = worst_case_overhead / decision_s
        assert ratio < OVERHEAD_BUDGET, (
            f"no-op observability overhead bound {ratio:.2%} exceeds "
            f"{OVERHEAD_BUDGET:.0%}: {sites} sites x {per_site_s * 1e9:.0f}ns "
            f"against a {decision_s * 1e3:.2f}ms decision"
        )

    def test_metrics_publication_is_segment_batched(self):
        """Metric publication must scale with extend segments, not triggers.

        Pinned to the monolithic schedule: one deep chase per group, so
        many triggers share a segment.  (Under the anytime default every
        probe is its own short segment and the ratio is meaningless.)
        """
        obs = Observability.on()
        _decide_all(obs, anytime=False)
        dump = obs.metrics.as_dict()["counters"]
        triggers = sum(dump.get("chase.triggers", {}).values())
        segments = dump.get("chase.extend_segments", 0)
        assert triggers > 0 and segments > 0
        # Far fewer publication events than trigger firings.
        assert segments < max(triggers, 2)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(pytest.main([__file__, "-v"]))
