"""Service layer: warm worker pools and request coalescing, quantified.

Two claims about :class:`repro.api.Engine` over the E9-style grouped
corpus (independent cyclic chase groups — the workload where a batch
actually dispatches to worker processes):

* **warm batches**: a long-lived Engine's *second* ``check_all`` over
  the same corpus is >= 1.5x median faster than a cold per-call pool
  (fresh checker + ephemeral ``ProcessPoolExecutor`` each time).  The
  warm path recalls decided verdicts from the service's result cache
  and never re-spawns workers; ``pools_started`` must not grow after
  warm-up.
* **coalescing**: eight identical in-flight checks collapse onto one
  computation — seven dedup hits, exactly one call into the checker.

Everything measured lands in ``BENCH_service.json`` at the repo root —
uploaded as a CI artifact alongside ``BENCH_anytime.json``.  Written
against plain pytest on purpose — CI runs it without the
pytest-benchmark plugin.
"""

import json
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.api import Engine
from repro.containment.bounded import ContainmentChecker
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Timing repeats; the reported warm/cold numbers are medians.
REPEATS = 3

WARM_MEDIAN_SPEEDUP = 1.5
POOL_WORKERS = 4
COALESCE_FANOUT = 8


def group_corpus(n_groups=6, pairs_per_group=3, size=6, seed=900):
    """Independent cyclic chase groups, same shape as the E9 batches."""
    pairs = []
    for g in range(n_groups):
        params = QueryGenParams(
            n_atoms=size, n_variables=size + 2, cycle_length=1, head_arity=1
        )
        gen = QueryGenerator(seed + g, params)
        q1, q2 = gen.containment_pair()
        pairs.append((q1, q2))
        for _ in range(pairs_per_group - 1):
            pairs.append((q1, gen.query()))
    return pairs


def _second_batch_seconds(run_batch, fresh_state):
    """Time the *second* batch: warm-up first, then measure the repeat."""
    samples = []
    for _ in range(REPEATS):
        state = fresh_state()
        try:
            run_batch(state)  # first batch: pay any warm-up cost
            t0 = time.perf_counter()
            run_batch(state)
            samples.append(time.perf_counter() - t0)
        finally:
            close = getattr(state, "close", None)
            if close is not None:
                close()
    return statistics.median(samples)


@pytest.fixture(scope="module")
def bench():
    """Run every measurement once; tests assert slices of the payload."""
    corpus = group_corpus()

    # Cold baseline: a fresh checker per batch, ephemeral pool per call.
    cold_seconds = _second_batch_seconds(
        lambda checker: checker.check_all(
            corpus, parallel=True, max_workers=POOL_WORKERS
        ),
        lambda: ContainmentChecker(),
    )

    # Warm service: one Engine survives across batches.
    warm_seconds = _second_batch_seconds(
        lambda engine: engine.check_all(corpus),
        lambda: Engine(max_workers=POOL_WORKERS),
    )

    # Pool stability + verdict agreement across three consecutive batches.
    with Engine(max_workers=POOL_WORKERS) as engine:
        first = engine.check_all(corpus)
        pools_after_warmup = engine.service.pool.stats.pools_started
        second = engine.check_all(corpus)
        third = engine.check_all(corpus)
        pool_stats = {
            "pools_started": engine.service.pool.stats.pools_started,
            "pools_after_warmup": pools_after_warmup,
            "tasks_submitted": engine.service.pool.stats.tasks_submitted,
            "recycles": engine.service.pool.stats.recycles,
        }
        result_hits = engine.service.stats.result_hits
        verdicts_stable = (
            [r.contained for r in first]
            == [r.contained for r in second]
            == [r.contained for r in third]
        )

    # Coalescing: eight identical in-flight checks, one computation.
    # The leader is held inside the checker until every follower has
    # piled onto its future, so the dedup count is deterministic.
    q1, q2 = group_corpus(n_groups=1, pairs_per_group=1)[0]
    engine = Engine()
    entered = threading.Event()
    release = threading.Event()
    calls = []
    inner_check = engine.service.checker.check

    def gated_check(*args, **kwargs):
        calls.append(1)
        entered.set()
        release.wait(timeout=60)
        return inner_check(*args, **kwargs)

    engine.service.checker.check = gated_check
    threads = [
        threading.Thread(target=lambda: engine.check(q1, q2))
        for _ in range(COALESCE_FANOUT)
    ]
    threads[0].start()
    entered.wait(timeout=30)
    for t in threads[1:]:
        t.start()
    deadline = time.monotonic() + 30
    while (
        engine.service.stats.coalesced < COALESCE_FANOUT - 1
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    release.set()
    for t in threads:
        t.join(timeout=60)
    engine.service.checker.check = inner_check
    coalesce = {
        "fanout": COALESCE_FANOUT,
        "computations": len(calls),
        "coalesce_hits": engine.service.stats.coalesced,
        "dedup_hits": engine.service.stats.coalesced
        + engine.service.stats.result_hits,
    }
    engine.close()

    payload = {
        "corpus": {
            "pairs": len(corpus),
            "groups": len({q1.canonical_key() for q1, _ in corpus}),
            "workers": POOL_WORKERS,
        },
        "warm_vs_cold": {
            "cold_second_batch_seconds": cold_seconds,
            "warm_second_batch_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-9),
            "repeat_batch_result_hits": result_hits,
            "verdicts_stable": verdicts_stable,
        },
        "pool": pool_stats,
        "coalescing": coalesce,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestWarmPool:
    def test_second_batch_speedup(self, bench):
        assert bench["warm_vs_cold"]["speedup"] >= WARM_MEDIAN_SPEEDUP

    def test_no_pool_restarts_after_warmup(self, bench):
        pool = bench["pool"]
        assert pool["pools_started"] == pool["pools_after_warmup"]
        assert pool["pools_started"] <= 1
        assert pool["recycles"] == 0

    def test_repeat_batches_recall_every_verdict(self, bench):
        # Batches two and three never re-dispatched a decided pair.
        assert (
            bench["warm_vs_cold"]["repeat_batch_result_hits"]
            == 2 * bench["corpus"]["pairs"]
        )
        assert bench["warm_vs_cold"]["verdicts_stable"]


class TestCoalescing:
    def test_duplicated_workload_dedups(self, bench):
        coalesce = bench["coalescing"]
        assert coalesce["computations"] == 1
        assert coalesce["coalesce_hits"] >= 1
        assert coalesce["dedup_hits"] == coalesce["fanout"] - 1


class TestArtifact:
    def test_bench_json_written(self, bench):
        on_disk = json.loads(BENCH_PATH.read_text())
        assert on_disk["warm_vs_cold"]["speedup"] == pytest.approx(
            bench["warm_vs_cold"]["speedup"]
        )
        assert {"corpus", "warm_vs_cold", "pool", "coalescing"} <= set(on_disk)
