"""Anytime containment: quantify the interleaved chase/search schedule.

Three claims, measured on the E9 scaling corpus (mixed cyclic/acyclic
random pairs — the cyclic ones are where the Theorem-12 bound is
expensive and the anytime schedule has something to save):

* **positives**: median end-to-end speedup of the anytime schedule over
  the monolithic chase-then-search order is >= 3x, and no positive
  decision materialises chase levels past ``witness_level + 1``;
* **negatives** (the guard): the anytime schedule's O(log bound) probe
  overhead keeps the median negative decision within 1.1x of the
  monolithic time — early exit must not tax refutations;
* **parallel batches**: ``check_all(parallel=True)`` with 4 workers over
  >= 4 independent chase groups, dispatched through the zero-pickle
  snapshot attach (:mod:`repro.store` — the parent flushes once and
  workers hydrate from the shared database instead of receiving pickled
  payload state), beats sequential throughput (> 1.0x, asserted only
  when the machine actually has >= 4 usable cores; the measured ratio is
  recorded either way).

Everything measured lands in ``BENCH_anytime.json`` at the repo root —
uploaded as a CI artifact, so the numbers ride along with every build.
Written against plain pytest on purpose — CI runs it without the
pytest-benchmark plugin.
"""

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from repro.containment.bounded import ContainmentChecker
from repro.containment.store import ChaseStore
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_anytime.json"

#: Timing repeats; every reported number is a best-of (robust to noise).
REPEATS = 5

POSITIVE_MEDIAN_SPEEDUP = 3.0
NEGATIVE_MEDIAN_BUDGET = 1.1
#: The attach dispatch must *beat* sequential, not merely tie it — the
#: historical 2.0x target was never reachable while every group shipped
#: pickled payload state to a cold worker store.
PARALLEL_SPEEDUP = 1.0
PARALLEL_WORKERS = 4


def e9_corpus(sizes=(2, 4, 6, 8, 10), pairs_per_size=3, seed=5):
    """The E9 scaling corpus: same generator parameters as the experiment."""
    pairs = []
    for size in sizes:
        for k in range(pairs_per_size):
            params = QueryGenParams(
                n_atoms=size,
                n_variables=size + 2,
                cycle_length=1 if k % 2 == 0 else 0,
                head_arity=1,
            )
            q1, q2 = QueryGenerator(seed + size * 100 + k, params).containment_pair()
            pairs.append((q1, q2))
    return pairs


def group_corpus(n_groups=8, pairs_per_group=3, size=6, seed=900):
    """Independent cyclic chase groups for the parallel-batch measurement."""
    pairs = []
    for g in range(n_groups):
        params = QueryGenParams(
            n_atoms=size, n_variables=size + 2, cycle_length=1, head_arity=1
        )
        gen = QueryGenerator(seed + g, params)
        q1, q2 = gen.containment_pair()
        pairs.append((q1, q2))
        for _ in range(pairs_per_group - 1):
            pairs.append((q1, gen.query()))
    return pairs


def best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def timed_check(q1, q2, anytime):
    # A fresh checker per run: neither schedule may inherit the other's
    # cached chase prefix.
    return best_time(lambda: ContainmentChecker(anytime=anytime).check(q1, q2))


@pytest.fixture(scope="module")
def bench(request):
    """Run every measurement once; tests assert slices of the payload."""
    corpus = e9_corpus()
    verdicts = [
        (q1, q2, ContainmentChecker(anytime=False).check(q1, q2))
        for q1, q2 in corpus
    ]
    positives = [
        (q1, q2) for q1, q2, r in verdicts if r.contained and r.witness is not None
    ]
    negatives = [(q1, q2) for q1, q2, r in verdicts if not r.contained]

    positive_rows = []
    for q1, q2 in positives:
        result = ContainmentChecker().check(q1, q2)
        positive_rows.append(
            {
                "q1": q1.name,
                "q2": q2.name,
                "bound": result.level_bound,
                "witness_level": result.witness_level,
                "levels_chased": result.levels_chased,
                "anytime_seconds": timed_check(q1, q2, True),
                "monolithic_seconds": timed_check(q1, q2, False),
            }
        )
    positive_speedups = [
        row["monolithic_seconds"] / max(row["anytime_seconds"], 1e-9)
        for row in positive_rows
    ]

    negative_rows = []
    for q1, q2 in negatives:
        negative_rows.append(
            {
                "q1": q1.name,
                "q2": q2.name,
                "anytime_seconds": timed_check(q1, q2, True),
                "monolithic_seconds": timed_check(q1, q2, False),
            }
        )
    negative_ratios = [
        row["anytime_seconds"] / max(row["monolithic_seconds"], 1e-9)
        for row in negative_rows
    ]

    batch = group_corpus()
    sequential_seconds = best_time(
        lambda: ContainmentChecker().check_all(batch), repeats=3
    )

    def parallel_attached():
        # A fresh snapshot database per run (cold, like the sequential
        # baseline's fresh checker); workers attach to it read-only and
        # hydrate groups instead of receiving pickled chase state.
        with tempfile.TemporaryDirectory() as tmp:
            store = ChaseStore(persist=os.path.join(tmp, "chase.db"))
            try:
                ContainmentChecker(store=store).check_all(
                    batch, parallel=True, max_workers=PARALLEL_WORKERS
                )
            finally:
                store.close()

    parallel_seconds = best_time(parallel_attached, repeats=3)

    payload = {
        "corpus": {
            "pairs": len(corpus),
            "positives": len(positives),
            "negatives": len(negatives),
        },
        "positive": {
            "median_speedup": statistics.median(positive_speedups),
            "min_speedup": min(positive_speedups),
            "max_speedup": max(positive_speedups),
            "early_exit_rate": sum(
                1 for row in positive_rows if row["witness_level"] < row["bound"]
            )
            / len(positive_rows),
            "rows": positive_rows,
        },
        "negative": {
            "median_ratio": statistics.median(negative_ratios),
            "max_ratio": max(negative_ratios),
            "rows": negative_rows,
        },
        "parallel": {
            "groups": len({q1.canonical_key() for q1, _ in batch}),
            "pairs": len(batch),
            "workers": PARALLEL_WORKERS,
            "dispatch": "snapshot-attach",
            "usable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "sequential_seconds": sequential_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": sequential_seconds / max(parallel_seconds, 1e-9),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestAnytimePositives:
    def test_median_speedup(self, bench):
        assert bench["corpus"]["positives"] >= 5
        assert bench["positive"]["median_speedup"] >= POSITIVE_MEDIAN_SPEEDUP

    def test_early_exit_everywhere(self, bench):
        assert bench["positive"]["early_exit_rate"] == 1.0

    def test_no_levels_materialised_past_the_witness(self, bench):
        for row in bench["positive"]["rows"]:
            assert row["levels_chased"] <= row["witness_level"] + 1


class TestAnytimeNegativeGuard:
    def test_negatives_within_budget(self, bench):
        assert bench["corpus"]["negatives"] >= 2
        assert bench["negative"]["median_ratio"] <= NEGATIVE_MEDIAN_BUDGET


class TestParallelBatch:
    def test_parallel_matches_and_scales(self, bench):
        parallel = bench["parallel"]
        assert parallel["groups"] >= 4
        if parallel["usable_cpus"] >= PARALLEL_WORKERS:
            # Strict: the attached dispatch must actually win, not tie.
            assert parallel["speedup"] > PARALLEL_SPEEDUP
        else:
            # A 1-2 core box cannot show wall-clock scaling; the measured
            # ratio is still recorded in BENCH_anytime.json.
            pytest.skip(
                f"only {parallel['usable_cpus']} usable cores; "
                f"parallel speedup {parallel['speedup']:.2f}x recorded, "
                "assertion needs >= 4 cores"
            )


class TestArtifact:
    def test_bench_json_written(self, bench):
        on_disk = json.loads(BENCH_PATH.read_text())
        assert on_disk["positive"]["median_speedup"] == pytest.approx(
            bench["positive"]["median_speedup"]
        )
        assert {"corpus", "positive", "negative", "parallel"} <= set(on_disk)
