"""E11 — chase growth vs level bound, and the D1 restricted/oblivious ablation."""

import pytest

from repro.chase.engine import chase
from repro.workloads import EXAMPLE2_QUERY


class TestChaseGrowth:
    def test_growth_report(self, reports):
        report = reports("E11")
        assert report.data["linear"]
        rows = {r["query"]: r for r in report.data["rows"]}
        assert rows["q_presatisfied"]["oblivious"] > rows["q_presatisfied"]["restricted"]
        print()
        print(report.render())

    @pytest.mark.parametrize("max_level", [8, 16, 24])
    def test_chase_at_level(self, benchmark, max_level):
        result = benchmark.pedantic(
            chase,
            args=(EXAMPLE2_QUERY,),
            kwargs={"max_level": max_level},
            rounds=3,
            iterations=1,
        )
        assert not result.saturated
        assert result.level_reached >= max_level - 1

    def test_oblivious_ablation(self, benchmark):
        def run_oblivious():
            return chase(EXAMPLE2_QUERY, max_level=12, restricted=False)

        result = benchmark(run_oblivious)
        restricted = chase(EXAMPLE2_QUERY, max_level=12)
        assert result.size() >= restricted.size()
