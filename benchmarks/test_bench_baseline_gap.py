"""E10 — baseline comparison: Sigma_FL-aware checker vs Chandra-Merlin.

Times both deciders on the same pair, and regenerates the corpus-wide
verdict table showing the containments only the paper's machinery finds.
"""

from repro.containment import ContainmentChecker, contained_classic
from repro.workloads import INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ


class TestBaselineGap:
    def test_baseline_gap_report(self, reports):
        report = reports("E10")
        assert report.data["classic_only"] == 0  # classic is sound
        assert report.data["sigma_only"] >= 2    # the paper's examples at least
        print()
        print(report.render())

    def test_classic_checker_speed(self, benchmark):
        result = benchmark(contained_classic, INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        assert not result.contained  # fast but blind to the constraints

    def test_sigma_checker_speed(self, benchmark):
        def decide():
            return ContainmentChecker().check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)

        result = benchmark(decide)
        assert result.contained  # slower, but correct under Sigma_FL
