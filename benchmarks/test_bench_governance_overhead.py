"""Guard: governance with an unlimited budget must cost < 3% wall-clock.

The acceptance bar for the governance layer mirrors the observability
one: engines that receive no Governor pay a ``governor is None`` check
and nothing else, and a Governor with an *unlimited* budget — every poll
runs, nothing ever trips — must stay within 3% of the ungoverned
wall-clock on the E9 positive corpus.

Method: decide every E9 pair both ungoverned and with
``budget=ExecutionBudget.unlimited()`` (fresh checkers each time, so no
run inherits another's chase store), the two modes interleaved within
each of :data:`REPEATS` best-of repeats so load drift cancels, and
compare per-pair ratios at the median.  Results are written to
``BENCH_governance.json`` so CI archives the numbers next to the anytime
benchmark.

Written against plain pytest on purpose — CI runs it without the
pytest-benchmark plugin.
"""

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.containment.bounded import ContainmentChecker
from repro.governance.budget import ExecutionBudget
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_governance.json"

REPEATS = 5

#: Median per-pair slowdown allowed for the always-polling unlimited
#: governor (matches the ISSUE acceptance criterion of < 3%).
OVERHEAD_BUDGET = 0.03


def e9_corpus(sizes=(2, 4, 6, 8, 10), pairs_per_size=3, seed=5):
    """The E9 scaling corpus: same generator parameters as the experiment."""
    pairs = []
    for size in sizes:
        for k in range(pairs_per_size):
            params = QueryGenParams(
                n_atoms=size,
                n_variables=size + 2,
                cycle_length=1 if k % 2 == 0 else 0,
                head_arity=1,
            )
            q1, q2 = QueryGenerator(seed + size * 100 + k, params).containment_pair()
            pairs.append((q1, q2))
    return pairs


def _measure_interleaved(pairs, budget):
    """Best-of-N seconds per pair for (ungoverned, governed), interleaved.

    The two modes alternate within each repeat so slow drift in machine
    load (thermal throttling, a co-scheduled benchmark) hits both sides
    equally instead of biasing whichever sweep ran second.
    """
    ungoverned = [float("inf")] * len(pairs)
    governed = [float("inf")] * len(pairs)
    for _ in range(REPEATS):
        for i, (q1, q2) in enumerate(pairs):
            t0 = time.perf_counter()
            ContainmentChecker().check(q1, q2)
            ungoverned[i] = min(ungoverned[i], time.perf_counter() - t0)
            t0 = time.perf_counter()
            ContainmentChecker(budget=budget).check(q1, q2)
            governed[i] = min(governed[i], time.perf_counter() - t0)
    return ungoverned, governed


class TestGovernanceOverhead:
    def test_unlimited_budget_under_three_percent(self):
        pairs = e9_corpus()
        # Positives only: the acceptance criterion targets the anytime
        # early-exit path, and negative pairs' full-bound chases have
        # wall-clocks noisy enough to drown a 3% signal.
        positives = [
            (q1, q2)
            for q1, q2 in pairs
            if ContainmentChecker().check(q1, q2).contained
        ]
        assert positives, "E9 corpus unexpectedly has no positive pairs"

        ungoverned, governed = _measure_interleaved(
            positives, ExecutionBudget.unlimited()
        )

        ratios = [g / max(u, 1e-9) for g, u in zip(governed, ungoverned)]
        median_ratio = statistics.median(ratios)

        payload = {
            "corpus": "E9 positives",
            "pairs": len(positives),
            "repeats": REPEATS,
            "ungoverned_seconds": ungoverned,
            "governed_seconds": governed,
            "ratios": ratios,
            "median_ratio": median_ratio,
            "budget": OVERHEAD_BUDGET,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

        assert median_ratio <= 1 + OVERHEAD_BUDGET, (
            f"unlimited-budget governance costs {median_ratio - 1:.2%} at the "
            f"median (bar: {OVERHEAD_BUDGET:.0%}); per-pair ratios: "
            + ", ".join(f"{r:.3f}" for r in ratios)
        )

    def test_ungoverned_engines_skip_polling_entirely(self):
        # The zero-cost claim rests on `governor is None` short-circuits:
        # an ungoverned check must never construct a Governor at all.
        checker = ContainmentChecker()
        assert checker.budget is None
        assert checker.fault_injector is None
        assert checker._make_governor(None, None) is None


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(pytest.main([__file__, "-v"]))
