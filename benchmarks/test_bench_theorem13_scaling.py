"""E9 — Theorem 13: scaling of the decision procedure with query size.

One parametrised benchmark per size gives the scaling series directly in
the pytest-benchmark table; the E9 experiment report adds the per-phase
(chase vs homomorphism) breakdown.
"""

import pytest

from repro.containment import ContainmentChecker
from repro.workloads import QueryGenParams, QueryGenerator


def make_pair(size: int):
    params = QueryGenParams(
        n_atoms=size, n_variables=size + 2, cycle_length=1, head_arity=1
    )
    return QueryGenerator(100 + size, params).containment_pair()


class TestTheorem13Scaling:
    def test_scaling_report(self, reports):
        report = reports("E9")
        rows = report.data["rows"]
        assert len(rows) >= 3
        print()
        print(report.render())
        # Bounds grow with size — the quadratic |q1|*|q2| factor.
        bounds = [r["bound"] for r in rows]
        assert bounds == sorted(bounds) and bounds[-1] > bounds[0]

    @pytest.mark.parametrize("size", [2, 4, 6, 8])
    def test_containment_scaling(self, benchmark, size):
        q1, q2 = make_pair(size)

        def decide():
            # Fresh checker per call: no cross-round chase caching.
            return ContainmentChecker().check(q1, q2)

        result = benchmark.pedantic(decide, rounds=3, iterations=1, warmup_rounds=1)
        assert result is not None
