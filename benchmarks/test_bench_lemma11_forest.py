"""E7 — Lemma 11 / Figures 3-4: joint folding of conjunct sets."""

import random

from repro.chase.engine import chase
from repro.chase.paths import bounded_image_of_set
from repro.workloads import EXAMPLE2_QUERY


class TestLemma11:
    def test_lemma11_joint_images(self, benchmark, reports):
        report = reports("E7")
        assert report.data["all_hold"]
        print()
        print(report.render())

        delta = 2 * EXAMPLE2_QUERY.size
        n = 3
        result = chase(EXAMPLE2_QUERY, max_level=(n + 2) * delta)
        instance = result.instance
        deep = [a for a in instance if instance.level_of(a) > delta]
        rng = random.Random(7)
        sample = rng.sample(deep, n)

        def fold_set():
            return bounded_image_of_set(instance, sample, n * delta)

        found = benchmark(fold_set)
        assert found is not None
        _, images = found
        assert all(instance.level_of(image) <= n * delta for image in images)
