"""E13 — design-decision D4: join-order heuristic ablation."""

from repro.experiments.e13_join_order import _adversarial_chain
from repro.flogic.kb import KnowledgeBase
from repro.homomorphism.search import find_homomorphism
from repro.workloads import OntologyParams, generate_ontology


def _materialised_index():
    ontology = generate_ontology(
        31, OntologyParams(n_classes=12, n_objects=120, mandatory_probability=0.0)
    )
    kb = KnowledgeBase()
    for atom in ontology.atoms:
        kb.add(atom)
    return kb.materialise()


class TestJoinOrderAblation:
    def test_join_order_report(self, reports):
        report = reports("E13")
        rows = {r["workload"]: r for r in report.data["rows"]}
        assert rows["chain"]["ordered"] < rows["chain"]["naive"]
        print()
        print(report.render())

    def test_ordered_join(self, benchmark):
        index = _materialised_index()
        chain = _adversarial_chain(7)
        expected = find_homomorphism(chain, index, reorder=False)
        result = benchmark(find_homomorphism, chain, index, reorder=True)
        assert (result is None) == (expected is None)  # same verdict, faster

    def test_naive_join(self, benchmark):
        index = _materialised_index()
        chain = _adversarial_chain(7)
        expected = find_homomorphism(chain, index, reorder=True)
        result = benchmark(find_homomorphism, chain, index, reorder=False)
        assert (result is None) == (expected is None)
