"""E1/E2/E3 — the paper's worked examples, asserted and timed.

Regenerates the Section-1 containment table and the Example-1 head
rewrite, then benchmarks the containment decision itself.
"""

from repro.chase.engine import chase
from repro.containment import ContainmentChecker, contained_classic
from repro.core.terms import Variable
from repro.workloads import (
    EXAMPLE1_QUERY,
    INTRO_JOINABLE_Q,
    INTRO_JOINABLE_QQ,
    INTRO_MANDATORY_Q,
    INTRO_MANDATORY_QQ,
)


class TestIntroJoinable:
    """E1: q ⊆ qq for the joinable-attributes example."""

    def test_intro_joinable(self, benchmark, reports):
        report = reports("E1")
        assert report.data["matches"] == 4
        print()
        print(report.render())

        def decide():
            return ContainmentChecker().check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)

        result = benchmark(decide)
        assert result.contained
        assert not contained_classic(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ).contained


class TestIntroMandatory:
    """E2: q ⊆ qq for the mandatory-attributes example."""

    def test_intro_mandatory(self, benchmark):
        def decide():
            return ContainmentChecker().check(INTRO_MANDATORY_Q, INTRO_MANDATORY_QQ)

        result = benchmark(decide)
        assert result.contained
        assert result.witness[Variable("W")].is_null  # maps onto the invented value
        assert not ContainmentChecker().check(
            INTRO_MANDATORY_QQ, INTRO_MANDATORY_Q
        ).contained


class TestExample1HeadRewrite:
    """E3: chasing q(V1,V2) rewrites the head to q(V1,V1)."""

    def test_example1_head_rewrite(self, benchmark, reports):
        report = reports("E3")
        assert report.data["head_matches_paper"]
        print()
        print(report.render())

        result = benchmark(chase, EXAMPLE1_QUERY)
        v1 = Variable("V1")
        assert result.head == (v1, v1)
        assert result.saturated
