"""Dense kernel vs baseline search: the headline speedup measurement.

The tentpole claim of the kernel PR, measured on the E9 scaling corpus:
enumerating *all* homomorphisms of q2 into q1's chased canonical
database — the inner loop of every containment decision — is at least
**3x faster at the median** (goal: 10x) on the dense int-interned
bitset kernel than on the baseline backtracking search, while returning
the *identical solution set* on every case.

The chase itself is excluded from the timed region on purpose: both
kernels share it unchanged, and the homomorphism search is where the
candidate-pruning representation differs.  The dense mirror is warmed
before timing (one untimed enumeration), matching the steady state of
a long-lived checker, and every reported time is a best-of-``REPEATS``.

Everything lands in ``BENCH_kernel.json`` at the repo root — uploaded
as a CI artifact alongside the anytime and governance numbers.  Plain
pytest on purpose: CI runs it without the pytest-benchmark plugin.
"""

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.containment.bounded import ContainmentChecker, theorem12_bound
from repro.datalog.matching import SearchStats
from repro.homomorphism.search import all_homomorphisms
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Timing repeats; every reported number is a best-of (robust to noise).
REPEATS = 5

MEDIAN_SPEEDUP = 3.0

#: Chase-depth ceiling for the corpus instances.  The Theorem-12 bound
#: on the larger cyclic pairs is far past saturation; capping the
#: materialised prefix keeps the *chase* (untimed, shared by both
#: kernels) cheap while leaving thousands of facts to search.
MAX_LEVELS = 8


def e9_corpus(sizes=(2, 4, 6, 8, 10), pairs_per_size=3, seed=5):
    """The E9 scaling corpus: same generator parameters as the experiment."""
    pairs = []
    for size in sizes:
        for k in range(pairs_per_size):
            params = QueryGenParams(
                n_atoms=size,
                n_variables=size + 2,
                cycle_length=1 if k % 2 == 0 else 0,
                head_arity=1,
            )
            q1, q2 = QueryGenerator(seed + size * 100 + k, params).containment_pair()
            pairs.append((q1, q2))
    return pairs


def best_time(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def bench():
    """Chase every pair once, then race the two kernels over the prefix."""
    checker = ContainmentChecker()
    rows = []
    symbols = {"constants": 0, "variables": 0, "nulls": 0}
    total_symbols = total_rows = total_bitset_ops = 0

    for case, (q1, q2) in enumerate(e9_corpus()):
        bound = min(theorem12_bound(q1, q2), MAX_LEVELS)
        run, _ = checker.store.run_for(q1, bound)
        view = run.instance.up_to_level(bound)

        def enumerate_with(kernel, stats=None):
            return list(all_homomorphisms(q2, view, kernel=kernel, stats=stats))

        # Solution-set agreement and per-kernel counters (untimed; the
        # dense pass also warms the mirror and the plan cache).
        dense_stats, baseline_stats = SearchStats(), SearchStats()
        dense_solutions = enumerate_with("dense", dense_stats)
        baseline_solutions = enumerate_with("baseline", baseline_stats)
        agree = set(dense_solutions) == set(baseline_solutions)

        kernel_seconds = best_time(lambda: enumerate_with("dense"))
        baseline_seconds = best_time(lambda: enumerate_with("baseline"))

        dense_mirror = run.instance.index.dense
        counts = dense_mirror.arena.kind_counts()
        for kind in symbols:
            symbols[kind] += counts[kind]
        total_symbols += len(dense_mirror.arena)
        total_rows += sum(t.n_rows for t in dense_mirror.tables.values())
        total_bitset_ops += dense_stats.bitset_ops

        rows.append(
            {
                "case": case,
                "q1": q1.name,
                "q2": q2.name,
                "facts": len(view),
                "body_atoms": len(q2.body),
                "solutions": len(dense_solutions),
                "baseline_solutions": len(baseline_solutions),
                "agree": agree,
                "nodes": dense_stats.nodes,
                "baseline_nodes": baseline_stats.nodes,
                "bitset_ops": dense_stats.bitset_ops,
                "kernel_seconds": kernel_seconds,
                "baseline_seconds": baseline_seconds,
                "speedup": baseline_seconds / max(kernel_seconds, 1e-9),
            }
        )

    speedups = [row["speedup"] for row in rows]
    payload = {
        "cases": len(rows),
        "median_speedup": statistics.median(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "kernel": {
            "symbols": total_symbols,
            "constants": symbols["constants"],
            "variables": symbols["variables"],
            "nulls": symbols["nulls"],
            "rows": total_rows,
            "bitset_ops": total_bitset_ops,
        },
        "rows": rows,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestKernelSpeedup:
    def test_median_speedup(self, bench):
        assert bench["cases"] == 15
        assert bench["median_speedup"] >= MEDIAN_SPEEDUP

    def test_every_case_agrees(self, bench):
        # The speedup is worthless unless the answer is the same.
        for row in bench["rows"]:
            assert row["agree"], f"case {row['case']} diverged"
            assert row["solutions"] == row["baseline_solutions"]

    def test_node_counts_match_baseline(self, bench):
        # Same join order, same search tree: the dense executor expands
        # exactly the nodes the baseline does — it just finds them via
        # bitset intersections instead of per-fact tuple matching.
        for row in bench["rows"]:
            assert row["nodes"] == row["baseline_nodes"]


class TestArtifact:
    def test_bench_json_written(self, bench):
        on_disk = json.loads(BENCH_PATH.read_text())
        assert on_disk["median_speedup"] == pytest.approx(bench["median_speedup"])
        assert {"cases", "median_speedup", "kernel", "rows"} <= set(on_disk)
        assert on_disk["kernel"]["rows"] > 0
