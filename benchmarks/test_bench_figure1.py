"""E4 — Figure 1: rebuild the Example-2 chase graph and time it."""

from repro.chase.engine import chase
from repro.chase.graph import ChaseGraph
from repro.workloads import EXAMPLE2_QUERY


class TestFigure1:
    def test_figure1_chase_graph(self, benchmark, reports):
        report = reports("E4")
        assert report.data["chain_found"]
        assert report.data["branch_found"]
        print()
        print(report.render())

        def build():
            result = chase(EXAMPLE2_QUERY, max_level=12, track_graph=True)
            return ChaseGraph.from_result(result)

        graph = benchmark(build)
        assert len(graph.primary_arcs()) > 0
        assert len(graph.secondary_arcs()) > 0
        assert graph.max_level() >= 12

    def test_figure1_graph_scales_with_level(self, benchmark):
        """The graph at 24 levels: roughly double the conjuncts of 12."""

        def build():
            return chase(EXAMPLE2_QUERY, max_level=24, track_graph=True)

        result = benchmark(build)
        small = chase(EXAMPLE2_QUERY, max_level=12)
        ratio = result.size() / small.size()
        assert 1.5 <= ratio <= 2.5  # linear growth, Lemma-5 isolation
