"""Deterministic fault injection for governance tests.

A fault plan is a tuple of :class:`Fault` records, each naming a poll
*site* (the strings the engines pass to ``Governor.poll`` /
``Governor.checkpoint``, e.g. ``"chase.trigger"`` or
``"containment.probe"``) and what should happen the Nth time that site
fires: sleep (simulating a slow step), retain an allocation (simulating
memory pressure), or raise :class:`InjectedFault` (simulating a crash).

Determinism is the point: the injector counts site activations, so a
test that says "the 3rd chase trigger raises" fails the same trigger on
every run, letting the degradation tests assert exact outcomes instead
of racing wall clocks.

:class:`Fault` is a frozen, picklable dataclass so plans can ride the
``check_all`` process-pool payload and fire inside worker processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Fault kinds: raise InjectedFault, sleep, or retain an allocation.
KIND_RAISE = "raise"
KIND_SLOW = "slow"
KIND_ALLOC = "alloc"


class InjectedFault(RuntimeError):
    """The error raised by a ``kind="raise"`` fault.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: an
    injected crash must look like an unexpected failure (a wedged or
    dying worker), so the recovery paths under test — pool fallback,
    UNKNOWN degradation — cannot special-case it away.
    """


@dataclass(frozen=True)
class Fault:
    """One planned fault at a named governor poll site.

    ``at`` is the 1-based activation count that triggers the fault (the
    Nth time the site fires); with ``repeat=True`` the fault fires on
    every activation from ``at`` onward.  ``kind`` selects the effect:
    ``"slow"`` sleeps ``seconds``, ``"alloc"`` retains a ``bytes``-sized
    buffer on the injector, ``"raise"`` raises :class:`InjectedFault`.
    """

    site: str
    at: int = 1
    kind: str = KIND_RAISE
    seconds: float = 0.0
    bytes: int = 0
    repeat: bool = False


class FaultInjector:
    """Fires a plan of :class:`Fault` records as poll sites activate.

    The injector keeps a per-site activation counter and a log of fired
    faults (``fired``), and retains ``alloc`` buffers in ``retained`` so
    the memory pressure persists for the run's lifetime, the way a real
    leak would.
    """

    def __init__(self, plan: Sequence[Fault] = ()) -> None:
        self.plan: Tuple[Fault, ...] = tuple(plan)
        self.counts: Dict[str, int] = {}
        self.fired: List[Tuple[str, int, str]] = []
        self.retained: List[bytearray] = []

    def fire(self, site: str) -> None:
        """Record an activation of ``site`` and apply any due faults."""
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        for fault in self.plan:
            if fault.site != site:
                continue
            due = count == fault.at or (fault.repeat and count >= fault.at)
            if not due:
                continue
            self.fired.append((site, count, fault.kind))
            if fault.kind == KIND_SLOW:
                time.sleep(fault.seconds)
            elif fault.kind == KIND_ALLOC:
                self.retained.append(bytearray(fault.bytes))
            elif fault.kind == KIND_RAISE:
                raise InjectedFault(
                    f"injected fault at {site} (activation {count})"
                )
            else:
                raise ValueError(f"unknown fault kind: {fault.kind!r}")
