"""Resource governance: budgets, deadlines, cancellation, fault injection.

The ROADMAP's production north star needs every potentially unbounded
operation — the chase most of all, since Σ_FL chases of cyclic queries
need not terminate — to run under a declared resource envelope and to
degrade gracefully when it is exceeded.  This package provides:

* :class:`ExecutionBudget` — wall-clock deadline, fact-count ceiling,
  approximate memory ceiling, and a unified step budget;
* :class:`CancelScope` — cooperative cross-thread cancellation;
* :class:`Governor` — the per-run enforcer the engines poll, raising
  :class:`~repro.core.errors.BudgetExceeded` /
  :class:`~repro.core.errors.ExecutionCancelled` with a structured
  :class:`BudgetReport`;
* :mod:`repro.governance.faults` — a deterministic fault-injection
  harness (:class:`Fault`, :class:`FaultInjector`) used by the
  degradation tests.

The containment checker converts governed interruption into a
three-valued result: ``decided_true`` / ``decided_false`` require a
positive witness or a completed Theorem-12 prefix; anything less is
``UNKNOWN`` — soundness is never traded for responsiveness.
"""

from repro.governance.budget import (
    BudgetReport,
    CancelScope,
    ExecutionBudget,
    Governor,
    approx_instance_bytes,
)
from repro.governance.faults import Fault, FaultInjector, InjectedFault

__all__ = [
    "BudgetReport",
    "CancelScope",
    "ExecutionBudget",
    "Fault",
    "FaultInjector",
    "Governor",
    "InjectedFault",
    "approx_instance_bytes",
]
