"""Execution budgets, cancellation scopes, and the :class:`Governor`.

The governance layer gives every long-running operation in the stack —
chase extension, datalog fixpoint, homomorphism search, containment
probing — a uniform way to stop *before* it is done:

* :class:`ExecutionBudget` declares the resources a run may consume
  (wall-clock deadline, fact count, approximate memory, chase steps);
* :class:`CancelScope` is a cooperative cancellation token that another
  thread (or a signal handler) can flip at any time;
* :class:`Governor` is the per-run object the engines actually poll; it
  owns the consumption counters, checks them against the budget, fires
  injected faults, and raises :class:`~repro.core.errors.BudgetExceeded`
  or :class:`~repro.core.errors.ExecutionCancelled` with a structured
  :class:`BudgetReport` attached.

Design constraints mirrored from :mod:`repro.obs`: when no budget, scope
or fault plan is configured the engines never construct a Governor at
all (``governor is None`` fast path), so the governed code paths cost
nothing in the common case.  Inside hot loops the polling itself is
amortised (:meth:`Governor.tick`) so even a governed homomorphism search
checks the clock only once every 32 nodes.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.errors import BudgetExceeded, ExecutionCancelled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.governance.faults import FaultInjector
    from repro.obs import Observability

#: ``tick()`` polls the budget once every this many calls (power of two).
TICK_MASK = 31

#: Instance memory is estimated from a sample of at most this many atoms.
MEMORY_SAMPLE_SIZE = 64

#: Multiplier covering index/journal overhead the atom sample cannot see.
MEMORY_OVERHEAD_FACTOR = 4


@dataclass(frozen=True)
class ExecutionBudget:
    """Declarative resource limits for one governed run.

    Every field is optional; ``None`` means unlimited for that resource.
    The budget is immutable and picklable, so the same object can be
    shipped to ``check_all`` worker processes for worker-side deadline
    enforcement.

    ``max_steps`` unifies the pre-governance ``ChaseConfig.max_steps``
    valve: a governed chase counts TGD/EGD applications against this
    ceiling through the same :class:`Governor` that watches the clock.
    """

    deadline_seconds: Optional[float] = None
    max_facts: Optional[int] = None
    max_memory_bytes: Optional[int] = None
    max_steps: Optional[int] = None

    @classmethod
    def unlimited(cls) -> "ExecutionBudget":
        """A budget with every limit disabled.

        Useful for benchmarks that measure the governed code path's
        overhead, and as an explicit "governed but unbounded" marker.
        """
        return cls()

    @property
    def is_unlimited(self) -> bool:
        """True when no resource in the budget is actually limited."""
        return (
            self.deadline_seconds is None
            and self.max_facts is None
            and self.max_memory_bytes is None
            and self.max_steps is None
        )

    def merged(self, other: Optional["ExecutionBudget"]) -> "ExecutionBudget":
        """The tightest combination of this budget and *other*.

        Every limit is the elementwise minimum (``None`` = unlimited
        loses to any concrete ceiling).  This is the budget-inheritance
        rule of the service layer: a service-wide default budget merged
        with a per-request budget can only get stricter, so no request
        escapes the envelope the service was configured with.
        """
        if other is None:
            return self

        def _min(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return ExecutionBudget(
            deadline_seconds=_min(self.deadline_seconds, other.deadline_seconds),
            max_facts=_min(self.max_facts, other.max_facts),
            max_memory_bytes=_min(self.max_memory_bytes, other.max_memory_bytes),
            max_steps=_min(self.max_steps, other.max_steps),
        )


@dataclass(frozen=True)
class BudgetReport:
    """Structured snapshot of budget consumption at a point in time.

    Attached to :class:`~repro.core.errors.ExecutionInterrupted` raises
    and to UNKNOWN :class:`~repro.containment.ContainmentResult` values,
    so callers can see *which* resource ran out and how far the run got
    without parsing an error message.
    """

    exhausted: Optional[str]
    elapsed_seconds: float
    deadline_seconds: Optional[float]
    steps: int
    max_steps: Optional[int]
    facts: int
    max_facts: Optional[int]
    approx_memory_bytes: Optional[int]
    max_memory_bytes: Optional[int]

    def as_dict(self) -> dict:
        """The report as a plain dict (for JSON export and metrics)."""
        return {
            "exhausted": self.exhausted,
            "elapsed_seconds": self.elapsed_seconds,
            "deadline_seconds": self.deadline_seconds,
            "steps": self.steps,
            "max_steps": self.max_steps,
            "facts": self.facts,
            "max_facts": self.max_facts,
            "approx_memory_bytes": self.approx_memory_bytes,
            "max_memory_bytes": self.max_memory_bytes,
        }

    def __str__(self) -> str:
        parts = []
        if self.exhausted:
            parts.append(f"exhausted={self.exhausted}")
        parts.append(f"elapsed={self.elapsed_seconds:.3f}s")
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:.3f}s")
        parts.append(f"steps={self.steps}")
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.max_facts is not None or self.facts:
            parts.append(f"facts={self.facts}")
        if self.max_facts is not None:
            parts.append(f"max_facts={self.max_facts}")
        if self.approx_memory_bytes is not None:
            parts.append(f"approx_memory={self.approx_memory_bytes}B")
        if self.max_memory_bytes is not None:
            parts.append(f"max_memory={self.max_memory_bytes}B")
        return "budget(" + ", ".join(parts) + ")"


class CancelScope:
    """Cooperative cancellation token.

    Any thread may call :meth:`cancel`; governed operations observe it at
    their next poll point and raise
    :class:`~repro.core.errors.ExecutionCancelled`.  Attribute reads and
    writes are single bytecode operations, so no lock is needed for the
    cross-thread handshake under CPython's memory model.
    """

    __slots__ = ("cancelled", "reason")

    def __init__(self) -> None:
        self.cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; idempotent, safe from any thread."""
        self.reason = reason
        self.cancelled = True


def approx_instance_bytes(instance) -> int:
    """Estimate the resident size of a chase instance in bytes.

    Samples up to :data:`MEMORY_SAMPLE_SIZE` atoms, measures them with
    :func:`sys.getsizeof` (atom object, its args tuple, and each term),
    scales the per-atom average by the instance's fact count, and
    multiplies by :data:`MEMORY_OVERHEAD_FACTOR` to account for the
    per-predicate indexes and the journal.  Deliberately cheap and
    deliberately approximate: the memory ceiling is a guardrail against
    runaway chases, not an accounting tool.
    """
    n = len(instance)
    if n == 0:
        return 0
    sample_bytes = 0
    sampled = 0
    for atom in instance:
        sample_bytes += sys.getsizeof(atom) + sys.getsizeof(atom.args)
        for term in atom.args:
            sample_bytes += sys.getsizeof(term)
        sampled += 1
        if sampled >= MEMORY_SAMPLE_SIZE:
            break
    per_atom = sample_bytes / sampled
    return int(per_atom * n * MEMORY_OVERHEAD_FACTOR)


class Governor:
    """Per-run budget enforcer polled by the governed engines.

    One Governor is created per top-level operation (one containment
    check, one chase run, one worker batch) and handed down through the
    engines.  The engines call:

    * :meth:`poll` at coarse checkpoints (chase trigger evaluation, the
      anytime probe loop) — checks faults, cancellation, deadline and the
      fact ceiling;
    * :meth:`step` after each applied chase step — counts against
      ``max_steps``;
    * :meth:`tick` inside the homomorphism search's per-node loop — an
      amortised :meth:`poll` that touches the clock once every 32 calls;
    * :meth:`checkpoint` at instance-growth boundaries (end of a chase
      round, datalog iteration) — a :meth:`poll` that additionally
      estimates instance memory when a memory ceiling is set.

    The ``clock`` parameter exists for tests; production callers leave
    the default ``time.perf_counter``.
    """

    __slots__ = (
        "budget",
        "scope",
        "obs",
        "faults",
        "clock",
        "started_at",
        "steps",
        "facts",
        "approx_memory_bytes",
        "_tick",
        "_deadline_at",
        "_max_facts",
        "_max_steps",
        "_armed",
    )

    def __init__(
        self,
        budget: Optional[ExecutionBudget] = None,
        *,
        scope: Optional[CancelScope] = None,
        obs: Optional["Observability"] = None,
        faults: Optional["FaultInjector"] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.budget = budget if budget is not None else ExecutionBudget()
        self.scope = scope
        self.obs = obs
        self.faults = faults
        self.clock = clock
        self.started_at = clock()
        self.steps = 0
        self.facts = 0
        self.approx_memory_bytes: Optional[int] = None
        self._tick = 0
        deadline = self.budget.deadline_seconds
        self._deadline_at = None if deadline is None else self.started_at + deadline
        # Hot-path precomputation: an unlimited governor with no faults
        # and no scope reduces poll() to one attribute check, keeping the
        # "governed but unbounded" mode within the <3% overhead bar.
        self._max_facts = self.budget.max_facts
        self._max_steps = self.budget.max_steps
        self._armed = (
            faults is not None
            or scope is not None
            or self._deadline_at is not None
            or self._max_facts is not None
        )

    def poll(self, site: str = "", facts: int = 0) -> None:
        """Check faults, cancellation, deadline, and the fact ceiling.

        ``site`` names the checkpoint for fault injection and metrics;
        ``facts`` reports the current instance size when the caller has
        it at hand (0 leaves the last observation in place).
        """
        if facts:
            self.facts = facts
        if not self._armed:
            return
        if self.faults is not None and site:
            self.faults.fire(site)
        scope = self.scope
        if scope is not None and scope.cancelled:
            self._cancelled(scope.reason)
        if self._deadline_at is not None and self.clock() > self._deadline_at:
            self._exhaust("deadline")
        if facts and self._max_facts is not None and facts > self._max_facts:
            self._exhaust("facts")

    def step(self, n: int = 1) -> None:
        """Count ``n`` applied chase steps against ``max_steps``."""
        self.steps += n
        if self._max_steps is not None and self.steps > self._max_steps:
            self._exhaust("steps")

    def tick(self, site: str = "hom.search") -> None:
        """Amortised :meth:`poll` for hot loops (1 real poll per 32 calls).

        ``site`` names the checkpoint the amortised poll reports under —
        the homomorphism search by default, but join loops running inside
        chase trigger evaluation pass their own site so fault injection
        and metrics attribute the poll to the right layer.
        """
        if not self._armed:
            return
        self._tick += 1
        if self._tick & TICK_MASK:
            return
        self.poll(site)

    def checkpoint(self, site: str, *, instance=None, facts: int = 0) -> None:
        """A :meth:`poll` that also enforces the memory ceiling.

        When ``instance`` is given *and* ``budget.max_memory_bytes`` is
        set, its size is estimated via :func:`approx_instance_bytes` and
        recorded for :meth:`report`.  Without a memory ceiling the
        estimate is skipped entirely (it is O(instance) to compute), so
        ``BudgetReport.approx_memory_bytes`` stays ``None`` for runs
        governed only by time/step/fact budgets.
        """
        if instance is not None:
            facts = facts or len(instance)
            max_memory = self.budget.max_memory_bytes
            if max_memory is not None:
                estimate = approx_instance_bytes(instance)
                self.approx_memory_bytes = estimate
                if estimate > max_memory:
                    self.facts = facts
                    self._exhaust("memory")
        self.poll(site, facts=facts)

    def elapsed(self) -> float:
        """Seconds since this governor was created."""
        return self.clock() - self.started_at

    def report(self, exhausted: Optional[str] = None) -> BudgetReport:
        """Snapshot current consumption as a :class:`BudgetReport`."""
        return BudgetReport(
            exhausted=exhausted,
            elapsed_seconds=self.elapsed(),
            deadline_seconds=self.budget.deadline_seconds,
            steps=self.steps,
            max_steps=self.budget.max_steps,
            facts=self.facts,
            max_facts=self.budget.max_facts,
            approx_memory_bytes=self.approx_memory_bytes,
            max_memory_bytes=self.budget.max_memory_bytes,
        )

    def _count_exhaustion(self, resource: str) -> None:
        if self.obs is not None and self.obs.metrics is not None:
            self.obs.metrics.counter(
                "governance.budget_exhausted", resource=resource
            ).inc()

    def _exhaust(self, resource: str) -> None:
        report = self.report(exhausted=resource)
        self._count_exhaustion(resource)
        raise BudgetExceeded(
            f"execution budget exhausted ({resource}): {report}",
            budget_report=report,
        )

    def _cancelled(self, reason: str) -> None:
        report = self.report(exhausted="cancelled")
        self._count_exhaustion("cancelled")
        raise ExecutionCancelled(
            f"execution cancelled ({reason or 'no reason given'}): {report}",
            budget_report=report,
        )
