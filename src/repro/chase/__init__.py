"""The chase: instances, the Definition-2 engine, the chase graph and paths."""

from .engine import ChaseConfig, ChaseEngine, ChaseResult, ChaseRun, chase
from .excision import Clip, ExcisionTrace, backward_primary_path, excise
from .graph import ChaseGraph, GraphArc
from .instance import Arc, ChaseInstance, Derivation, INITIAL_RULE_LABEL, LevelPrefixView
from .paths import (
    bounded_image,
    bounded_image_of_set,
    equivalent,
    follow_parallel,
    generalize_conjuncts,
    is_primary_path,
    parallel_paths,
    primary_path_arcs,
    primary_path_to,
)

__all__ = [
    "chase",
    "ChaseEngine",
    "ChaseConfig",
    "ChaseResult",
    "ChaseRun",
    "ChaseInstance",
    "LevelPrefixView",
    "Arc",
    "Derivation",
    "INITIAL_RULE_LABEL",
    "ChaseGraph",
    "GraphArc",
    "equivalent",
    "is_primary_path",
    "primary_path_arcs",
    "primary_path_to",
    "parallel_paths",
    "follow_parallel",
    "generalize_conjuncts",
    "bounded_image",
    "bounded_image_of_set",
    "excise",
    "ExcisionTrace",
    "Clip",
    "backward_primary_path",
]
