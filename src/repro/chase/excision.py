"""Constructive excision — the algorithm inside Lemma 9's proof.

:func:`repro.chase.paths.bounded_image` *searches* for the bounded
homomorphic image that Lemma 9 promises.  This module instead *constructs*
it the way the proof does (see the paper's Figure 2):

1. take the primary path ``pi`` from level 0 to the deep conjunct ``c``;
2. find two **equivalent** conjuncts ``c1 ~ c2`` on it (the pigeonhole
   over equivalence classes guarantees they exist once the path is longer
   than ``delta = 2|q|``);
3. *clip* the segment between them: re-run the rule labels of the
   ``c2 -> c`` suffix from ``c1`` instead (a **parallel path**,
   Definition 8), landing on a conjunct ``c'`` equivalent to ``c`` but
   ``level(c2) - level(c1)`` levels shallower;
4. repeat until the level is at most ``delta``.

The result records every clip, so the experiments can display the
excision trace exactly as Figure 2 draws it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.atoms import Atom
from .graph import ChaseGraph, GraphArc
from .instance import ChaseInstance
from .paths import equivalent, follow_parallel

__all__ = ["Clip", "ExcisionTrace", "backward_primary_path", "excise"]


@dataclass(frozen=True)
class Clip:
    """One excision step: the segment between *upper* and *lower* was cut."""

    upper: Atom  # c1 (shallower of the equivalent pair)
    lower: Atom  # c2 (deeper)
    before: Atom  # conjunct before this clip
    after: Atom  # conjunct after re-running the suffix from `upper`
    levels_saved: int


@dataclass
class ExcisionTrace:
    """The full Lemma-9 construction for one conjunct."""

    start: Atom
    result: Atom
    clips: list[Clip] = field(default_factory=list)

    @property
    def total_levels_saved(self) -> int:
        return sum(clip.levels_saved for clip in self.clips)

    def pretty(self) -> str:
        lines = [f"excise {self.start}:"]
        for clip in self.clips:
            lines.append(
                f"  clip [{clip.upper} ~ {clip.lower}] "
                f"saves {clip.levels_saved} levels: {clip.before} -> {clip.after}"
            )
        lines.append(f"  final: {self.result}")
        return "\n".join(lines)


def backward_primary_path(
    graph: ChaseGraph, conjunct: Atom
) -> Optional[list[GraphArc]]:
    """The primary path from level 0 *to* ``conjunct``, found backwards.

    Walks primary (non-cross) in-arcs from the conjunct toward level 0.
    Per Definition 7(ii) the path may *begin* with a +2-level hop out of a
    ``type`` conjunct, so when no primary in-arc exists we accept exactly
    one such initial hop.  Returns the arcs in forward order, or ``None``
    when the conjunct is at level 0 already or the graph is disconnected
    (e.g. built without cross-arc tracking).
    """
    if graph.level(conjunct) == 0:
        return []
    arcs_reversed: list[GraphArc] = []
    current = conjunct
    while graph.level(current) > 0:
        step = None
        for arc in graph.arcs_into(current):
            if arc.cross:
                continue
            if arc.primary:
                step = arc
                break
            if (
                arc.source.predicate == "type"
                and arc.target_level == arc.source_level + 2
            ):
                # Candidate Definition-7(ii) initial hop; prefer primary.
                step = step or arc
        if step is None:
            return None
        if not step.primary and arcs_reversed and not _is_initial_hop_ok(step):
            return None
        arcs_reversed.append(step)
        current = step.source
        if not step.primary:
            # A +2 hop is only legal as the path's FIRST arc; since we walk
            # backwards it must be the last one appended — stop here if the
            # source is not yet at level 0 and no primary arc continues.
            if graph.level(current) == 0:
                break
            return None
    return list(reversed(arcs_reversed))


def _is_initial_hop_ok(arc: GraphArc) -> bool:
    return arc.source.predicate == "type" and (
        arc.target_level == arc.source_level + 2
    )


def excise(
    graph: ChaseGraph,
    instance: ChaseInstance,
    conjunct: Atom,
    delta: int,
    *,
    max_clips: int = 64,
) -> Optional[ExcisionTrace]:
    """Run the Lemma-9 construction on *conjunct* down to level <= *delta*.

    Returns the trace, or ``None`` when the construction cannot proceed on
    this (finite, possibly truncated) chase prefix — e.g. no primary path
    is recorded, or no equivalent pair exists on it yet.
    """
    trace = ExcisionTrace(start=conjunct, result=conjunct)
    current = conjunct
    for _ in range(max_clips):
        if graph.level(current) <= delta:
            trace.result = current
            return trace
        path = backward_primary_path(graph, current)
        if not path:
            return None
        nodes = [path[0].source] + [arc.target for arc in path]
        clip = _first_equivalent_pair(nodes)
        if clip is None:
            return None
        i, j = clip
        suffix_labels = [arc.rule for arc in path[j:]]
        rerun = follow_parallel(graph, nodes[i], suffix_labels)
        if rerun is None:
            return None
        landed = rerun[-1].target if rerun else nodes[i]
        if not equivalent(landed, current):
            return None
        saved = graph.level(current) - graph.level(landed)
        if saved <= 0:
            return None
        trace.clips.append(
            Clip(
                upper=nodes[i],
                lower=nodes[j],
                before=current,
                after=landed,
                levels_saved=saved,
            )
        )
        current = landed
    trace.result = current
    return trace if graph.level(current) <= delta else None


def _first_equivalent_pair(nodes: list[Atom]) -> Optional[tuple[int, int]]:
    """Indices ``(i, j)``, ``i < j``, of the first equivalent pair on the path."""
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if equivalent(nodes[i], nodes[j]):
                return i, j
    return None
