"""The chase procedure of Definition 2, with Section 4's two-phase schedule.

Given a conjunctive query ``q`` and a dependency set (by default Sigma_FL),
the engine:

1. **Level-0 phase** — saturates ``body(q)`` under every *non-existential*
   dependency: full TGDs fire to fixpoint, interleaved with EGD repair
   (chase rule (1): while rho_4 is applicable, apply it).  Everything
   derived here sits at level 0, matching Section 4's convention that
   ``chase_{Sigma^-}(q)`` *is* level 0.

2. **Existential phase** — runs the full dependency set with level
   accounting per Definition 3(3): a conjunct generated from parents at
   levels ``l1..ln`` has level ``max(li) + 1``.  The existential rule rho_5
   is applied *restricted*: it fires only when no extension of the trigger
   homomorphism already maps its head into the instance (Definition
   2(2)(ii)); the oblivious variant (design ablation D1) can be selected
   in the config.  A ``max_level`` bound makes the possibly-infinite chase
   finite — this is exactly the Theorem-12 prefix construction.

Rule applications are discovered semi-naively: each round only considers
trigger homomorphisms that use at least one conjunct added (or rewritten
by an EGD merge) in the previous round.  EGD repair runs to fixpoint after
every round, so the instance each round starts from always satisfies the
EGDs — the batched realisation of Definition 2's "(a) while rule 1 is
applicable, apply it repeatedly" schedule.  Batching EGD repair at round
granularity (instead of after every single TGD step) can only reorder
merges; the chase result is the same universal model up to null renaming.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.atoms import Atom
from ..core.errors import ChaseBudgetExceeded, ChaseFailure, ExecutionInterrupted
from ..core.query import ConjunctiveQuery
from ..governance.budget import BudgetReport, Governor
from ..core.substitution import Substitution
from ..core.terms import NullFactory, Term, Variable, term_sort_key
from ..datalog.matching import match_conjunction
from ..dependencies.dependency import EGD, TGD, Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..obs import OBS_OFF, Observability
from ..store.snapshot import RunSnapshot
from .instance import ChaseInstance

__all__ = ["ChaseConfig", "ChaseResult", "ChaseEngine", "ChaseRun", "chase"]


@dataclass(frozen=True)
class ChaseConfig:
    """Tunable behaviour of a chase run.

    Attributes
    ----------
    max_level:
        Stop generating conjuncts above this level (``None`` = unbounded).
        The Theorem-12 checker sets this to ``|q2| * 2 * |q1|``.
    max_steps:
        Safety valve on the number of TGD applications.  When hit, the run
        raises :class:`ChaseBudgetExceeded`: an unbounded chase of a cyclic
        query never saturates, and the caller must choose a ``max_level``.
    track_graph:
        Record chase-graph arcs (incl. cross-arcs).  Needed by the figure
        and lemma experiments; off by default for speed.
    restricted:
        Apply existential TGDs restricted (Definition 2).  ``False``
        selects the oblivious chase (ablation D1), which never checks
        whether the head is already satisfied.
    reorder_join:
        Use the selectivity join-order heuristic when matching rule bodies
        (ablation D4).
    """

    max_level: Optional[int] = None
    max_steps: Optional[int] = 200_000
    track_graph: bool = False
    restricted: bool = True
    reorder_join: bool = True


@dataclass
class ChaseResult:
    """Outcome of one chase run.

    ``failed`` — the EGD equated two distinct constants (Definition
    2(1)(a)); the chased query is unsatisfiable under the dependencies and
    is therefore contained in *every* query of its arity.

    ``saturated`` — no dependency is applicable anywhere: the chase
    terminated by itself.  When ``saturated`` is False and ``failed`` is
    False, the run stopped at the ``max_level`` bound and ``instance``
    holds the finite prefix up to that level.
    """

    query: ConjunctiveQuery
    instance: Optional[ChaseInstance]
    failed: bool
    saturated: bool
    steps: int
    level_reached: int
    elapsed_seconds: float
    rule_applications: dict[str, int] = field(default_factory=dict)
    #: How many incremental prefix extensions produced this result (0 for a
    #: single fresh run; see :class:`ChaseRun`).
    extensions: int = 0
    #: Wall-clock of each extension segment, in order.  Disjoint windows:
    #: ``elapsed_seconds == sum(segment_seconds)``, so no second of chase
    #: work is ever attributed to two segments.
    segment_seconds: tuple[float, ...] = ()

    @property
    def head(self) -> tuple[Term, ...]:
        """``head(chase(q))`` — the head as rewritten by EGD repair."""
        if self.instance is None:
            return self.query.head
        return self.instance.head

    def atoms(self) -> frozenset[Atom]:
        """Every atom of the chased instance (empty if the chase failed)."""
        if self.instance is None:
            return frozenset()
        return self.instance.atoms()

    def size(self) -> int:
        """Number of atoms in the chased instance."""
        return 0 if self.instance is None else len(self.instance)

    def __repr__(self) -> str:
        status = "failed" if self.failed else ("saturated" if self.saturated else "truncated")
        return (
            f"ChaseResult({self.query.name}: {status}, {self.size()} conjuncts, "
            f"{self.steps} steps, level {self.level_reached})"
        )


class ChaseEngine:
    """Chases conjunctive queries with a fixed dependency set."""

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        config: ChaseConfig = ChaseConfig(),
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.obs = obs if obs is not None else OBS_OFF
        self.dependencies = tuple(dependencies)
        self._egds: tuple[EGD, ...] = tuple(
            d for d in self.dependencies if isinstance(d, EGD)
        )
        self._full_tgds: tuple[TGD, ...] = tuple(
            d for d in self.dependencies if isinstance(d, TGD) and d.is_full
        )
        self._existential_tgds: tuple[TGD, ...] = tuple(
            d for d in self.dependencies if isinstance(d, TGD) and not d.is_full
        )

    # -- public API ----------------------------------------------------------

    def start(self, query: ConjunctiveQuery) -> "ChaseRun":
        """Open a resumable chase session for *query*.

        Nothing is chased until :meth:`ChaseRun.extend_to` is called; the
        returned run checkpoints its frontier between extensions, so
        growing a bound-``b`` prefix to ``b' > b`` costs only the new
        levels.
        """
        return ChaseRun(self, query)

    def run(self, query: ConjunctiveQuery) -> ChaseResult:
        """Chase *query*; chase failure is reported in the result, not raised.

        :class:`ChaseBudgetExceeded` *is* raised when ``max_steps`` is hit —
        that signals a configuration problem (an unbounded chase of a
        cyclic query), not a property of the query.
        """
        return self.start(query).extend_to(self.config.max_level).result()

    # -- phase 1: Sigma minus existential rules, everything at level 0 --------

    def _saturate_level_zero(
        self,
        instance: ChaseInstance,
        counters: dict[str, int],
        governor: Optional[Governor] = None,
    ) -> None:
        self._egd_fixpoint(instance, delta=None)
        delta: list[Atom] = list(instance)
        delta.extend(instance.drain_dirty())
        while delta:
            if governor is not None:
                governor.checkpoint("chase.round", instance=instance)
            additions: list[Atom] = []
            for fact in delta:
                if fact not in instance:
                    continue  # rewritten away by a merge mid-round
                for tgd in self._full_tgds:
                    matches = list(
                        match_conjunction(
                            tgd.body,
                            instance.index,
                            required_fact=fact,
                            reorder=self.config.reorder_join,
                            governor=governor,
                            governor_site="chase.match",
                        )
                    )
                    for sigma in matches:
                        head_img = sigma.apply_atom(tgd.head)
                        parents = self._parent_ids(instance, sigma, tgd)
                        node = instance.add(
                            head_img,
                            level=0,
                            rule=tgd.label,
                            parents=parents,
                            cross_if_present=True,
                        )
                        if node is not None:
                            counters[tgd.label] = counters.get(tgd.label, 0) + 1
                            additions.append(head_img)
                            self._check_step_budget(counters)
                            if governor is not None:
                                governor.step()
            self._egd_fixpoint(instance, delta=additions)
            additions = [a for a in additions if a in instance]
            additions.extend(instance.drain_dirty())
            delta = additions

    @staticmethod
    def _find_head_witness(
        instance: ChaseInstance, pattern: Atom, existential: set[Variable]
    ) -> Optional[Atom]:
        """A conjunct some extension mu' of the trigger maps the head onto.

        Only the TGD's *existential* variables are free in the pattern;
        every other position already holds a chase value — and a chase
        value that happens to be a query variable is rigid, not a
        wildcard, so plain pattern matching would be wrong here.
        """
        for fact in instance.index.facts(pattern.predicate):
            bindings: dict[Variable, Term] = {}
            ok = True
            for pat_term, fact_term in zip(pattern.args, fact.args):
                if isinstance(pat_term, Variable) and pat_term in existential:
                    bound = bindings.get(pat_term)
                    if bound is None:
                        bindings[pat_term] = fact_term
                    elif bound != fact_term:
                        ok = False
                        break
                elif pat_term != fact_term:
                    ok = False
                    break
            if ok:
                return fact
        return None

    @staticmethod
    def _instantiate_nulls(pattern: Atom, tgd: TGD, nulls: NullFactory) -> Atom:
        fresh: dict[Variable, Term] = {}
        existential = set(tgd.existential_vars)
        args = []
        for term in pattern.args:
            if isinstance(term, Variable) and term in existential:
                if term not in fresh:
                    fresh[term] = nulls.fresh()
                args.append(fresh[term])
            else:
                args.append(term)
        return Atom(pattern.predicate, tuple(args))

    # -- EGD repair -------------------------------------------------------------

    def _egd_round(self, instance: ChaseInstance, facts: Optional[list[Atom]]) -> bool:
        """Find all current EGD violations, then repair them; True if changed.

        Matches are materialised before any merge so the index is never
        mutated while being iterated.
        """
        pairs: list[tuple[Term, Term]] = []
        for egd in self._egds:
            if facts is None:
                matches = list(
                    match_conjunction(
                        egd.body, instance.index, reorder=self.config.reorder_join
                    )
                )
            else:
                matches = []
                for fact in facts:
                    if fact not in instance:
                        continue
                    matches.extend(
                        match_conjunction(
                            egd.body,
                            instance.index,
                            required_fact=fact,
                            reorder=self.config.reorder_join,
                        )
                    )
            for sigma in matches:
                pairs.append((sigma.apply_term(egd.left), sigma.apply_term(egd.right)))
        changed = False
        for left, right in pairs:
            left = instance.resolve_term(left)
            right = instance.resolve_term(right)
            if left != right:
                instance.merge(left, right)
                changed = True
        return changed

    def _egd_fixpoint(self, instance: ChaseInstance, delta) -> None:
        """Chase rule (1): apply EGDs repeatedly until none is applicable."""
        if not self._egds:
            return
        facts: Optional[list[Atom]] = list(delta) if delta is not None else None
        if facts is not None and not facts:
            return
        tracer = self.obs.tracer
        merges_before = instance.merges
        with tracer.span("egd.merge") as span:
            while True:
                changed = self._egd_round(instance, facts)
                dirty = instance.drain_dirty()
                if not changed and not dirty:
                    break
                # Re-check incrementally against the conjuncts the merges
                # rewrote.
                facts = dirty if dirty else []
                if not facts and not changed:
                    break
                if not facts:
                    # Changed but nothing dirtied (pure collapses): one full
                    # re-check guarantees the fixpoint.
                    facts = None
            if tracer.enabled:
                span.add("merges", instance.merges - merges_before)

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _parent_ids(instance: ChaseInstance, sigma: Substitution, tgd) -> tuple[int, ...]:
        ids = []
        for body_atom in tgd.body:
            img = sigma.apply_atom(body_atom)
            ids.append(instance.node_id(img))
        # A single conjunct may match several body atoms; keep unique order.
        seen: set[int] = set()
        unique = []
        for i in ids:
            if i not in seen:
                seen.add(i)
                unique.append(i)
        return tuple(unique)

    def _check_step_budget(self, counters: dict[str, int]) -> None:
        limit = self.config.max_steps
        if limit is None:
            return
        steps = sum(counters.values())
        if steps <= limit:
            return
        report = BudgetReport(
            exhausted="steps",
            elapsed_seconds=0.0,
            deadline_seconds=None,
            steps=steps,
            max_steps=limit,
            facts=0,
            max_facts=None,
            approx_memory_bytes=None,
            max_memory_bytes=None,
        )
        raise ChaseBudgetExceeded(
            f"chase stopped after {steps} TGD applications, over the "
            f"configured ceiling of {limit}.  A cyclic query chases forever "
            "unless the prefix is bounded: pass "
            "ChaseConfig(max_level=theorem12_bound(q1, q2)) (or any finite "
            "level) to ChaseEngine, or rebuild the engine with "
            "ChaseConfig(max_steps=<larger valve>) if the chase is known to "
            f"terminate.  {report}",
            budget_report=report,
        )


class _LevelCapped:
    """Sentinel: a TGD application was suppressed by the level bound."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<level-capped>"


_LEVEL_CAPPED = _LevelCapped()


class ChaseRun:
    """A resumable chase session: chase once, extend incrementally.

    Created by :meth:`ChaseEngine.start`.  The run owns every piece of
    state a chase needs to continue where it stopped — the instance (with
    its union-find of EGD merges), the null factory, the per-rule counters
    and, crucially, the **checkpointed frontier**: every trigger whose
    head level exceeded the last bound is kept as a pending trigger
    instead of being discarded.  :meth:`extend_to` replays that frontier
    under the new bound and resumes the semi-naive rounds, so extending a
    bound-``b`` prefix to ``b' > b`` performs only the work of levels
    ``b+1 .. b'`` — never a re-run from scratch.

    Pending triggers store their homomorphism *as captured*; replay
    resolves every bound term through the instance's merge map first, so a
    trigger survives EGD rewrites that happened after it was checkpointed
    (exactly as the rewritten conjunct would have re-fed the semi-naive
    delta in a fresh run).
    """

    def __init__(self, engine: ChaseEngine, query: ConjunctiveQuery):
        self.engine = engine
        self.query = query
        self.instance = ChaseInstance(
            query.canonical_atoms(),
            query.head,
            track_graph=engine.config.track_graph,
        )
        self.nulls = NullFactory()
        self.counters: dict[str, int] = {}
        self.failed = False
        self.saturated = False
        #: Highest level bound chased so far; -1 until the first extension.
        self.bound = -1
        #: Number of incremental extensions after the initial chase.
        self.extensions = 0
        self.elapsed_seconds = 0.0
        #: Per-segment wall-clock; ``elapsed_seconds`` is exactly its sum.
        self.segment_seconds: list[float] = []
        #: Per-segment delta: the conjuncts each :meth:`extend_to` segment
        #: added — or rewrote into a new form via an EGD merge — that are
        #: still present.  Aligned with :attr:`segment_seconds`.  This is
        #: the fact set the anytime checker's delta-restricted
        #: homomorphism search consumes, so level-``k`` search work is
        #: never repeated at level ``k+1``.
        self.segment_deltas: list[tuple[Atom, ...]] = []
        #: Whether each segment rewrote the chased head (an EGD merge hit
        #: a head term).  A head rewrite invalidates the head seed of
        #: earlier searches, so the consumer must fall back to a full
        #: search over the current prefix for that segment.
        self.segment_head_rewrites: list[bool] = []
        self._level_zero_done = False
        self._started = False
        #: Whether this run was rebuilt from a persisted snapshot rather
        #: than chased in-process (see :meth:`from_snapshot`).
        self.hydrated = False
        #: Whether the hydration was level-truncated.  A partial run
        #: answers questions up to its bound but must never be extended or
        #: persisted back; :class:`~repro.containment.store.ChaseStore`
        #: discards it and re-hydrates when a deeper prefix is needed.
        self.hydrated_partial = False
        #: Set when an extension was stopped by the governance layer.  The
        #: in-flight semi-naive delta is lost, so the next extension
        #: restarts its delta from the full instance (sound: the restricted
        #: chase never refires an already-satisfied head).
        self._interrupted = False
        #: The governor of the extension currently executing, if any; the
        #: trigger loop polls it.  Cleared when the extension returns.
        self._governor: Optional[Governor] = None
        self._pending: dict[tuple, tuple[TGD, Substitution]] = {}
        self._snapshot: Optional[ChaseResult] = None
        self._tracer = engine.obs.tracer
        self._metrics = engine.obs.metrics
        # Last-published snapshots, so metric publication at segment
        # boundaries emits deltas and never double-counts across extends.
        self._published_counters: dict[str, int] = {}
        self._published_levels: dict[int, int] = {}
        self._published_nulls = 0
        self._published_merges = 0
        self._published_conjuncts = 0

    # -- state queries -------------------------------------------------------

    @property
    def pending_triggers(self) -> int:
        """Size of the checkpointed frontier (triggers beyond the bound)."""
        return len(self._pending)

    def covers(self, level_bound: Optional[int]) -> bool:
        """Whether this run already answers questions at *level_bound*.

        A failed or saturated run covers every bound (the full chase is a
        prefix of itself); otherwise the run covers bounds up to the one
        it was extended to.  ``None`` asks for the unbounded chase.
        """
        if self.failed or self.saturated:
            return True
        if level_bound is None:
            return False
        return level_bound <= self.bound

    # -- extension -----------------------------------------------------------

    def extend_to(
        self, level_bound: Optional[int], *, governor: Optional[Governor] = None
    ) -> "ChaseRun":
        """Ensure the prefix holds every conjunct up to *level_bound*.

        Idempotent when the run already covers the bound.  ``None`` chases
        to saturation (which raises :class:`ChaseBudgetExceeded` on cyclic
        queries, as a fresh unbounded run would).  Chase failure is
        recorded on the run, not raised.

        When a *governor* is supplied, the trigger loop polls it; a budget
        or cancellation raise propagates, but the run stays consistent and
        resumable — the segment's journal delta is still recorded, the
        bound is *not* advanced (``covers`` keeps answering ``False``),
        and a later ``extend_to`` (typically with a fresh budget) restarts
        the semi-naive delta from the full instance and finishes the work.
        """
        if self.covers(level_bound):
            return self
        is_extension = self._started
        tracer = self._tracer
        with tracer.span(
            "chase.extend",
            query=self.query.name,
            bound="saturation" if level_bound is None else level_bound,
            segment=len(self.segment_seconds),
        ) as span:
            start = time.perf_counter()
            # The first segment's delta spans the whole journal, so the
            # initial body conjuncts count as "new" exactly once.
            journal_marker = self.instance.journal_marker() if self._started else 0
            head_before = self.instance.head
            self._governor = governor
            try:
                if not self._level_zero_done:
                    with tracer.span("chase.level", level=0, phase="sigma-minus") as lz:
                        self.engine._saturate_level_zero(
                            self.instance, self.counters, governor
                        )
                        if tracer.enabled:
                            lz.set(conjuncts=len(self.instance))
                    self._level_zero_done = True
                self._existential_rounds(level_bound)
                if level_bound is not None:
                    self.bound = level_bound
                else:
                    self.bound = max(self.bound, self.instance.max_level())
            except ChaseFailure:
                self.failed = True
                self.saturated = True
                self._pending.clear()
            except ExecutionInterrupted:
                self._interrupted = True
                raise
            finally:
                self._governor = None
                # Each segment is timed by its own disjoint window, so a
                # resumed run never re-counts time attributed to a prior
                # segment: elapsed_seconds is exactly sum(segment_seconds).
                segment = time.perf_counter() - start
                self.segment_seconds.append(segment)
                self.elapsed_seconds += segment
                if self.failed:
                    self.segment_deltas.append(())
                    self.segment_head_rewrites.append(False)
                else:
                    self.segment_deltas.append(
                        tuple(self.instance.journal_since(journal_marker))
                    )
                    self.segment_head_rewrites.append(
                        self.instance.head != head_before
                    )
                if is_extension:
                    self.extensions += 1
                self._started = True
                self._snapshot = None
                self._publish_metrics()
                if tracer.enabled:
                    span.set(
                        seconds=segment,
                        failed=self.failed,
                        saturated=self.saturated,
                        conjuncts=len(self.instance),
                        pending=len(self._pending),
                    )
        return self

    def result(self) -> ChaseResult:
        """A :class:`ChaseResult` snapshot of the run's current state.

        The same object is returned until the next extension, so callers
        caching on identity (the containment checker does) see one result
        per reached bound.  The instance inside is the live one — restrict
        through :meth:`ChaseInstance.up_to_level` when a smaller prefix is
        needed.
        """
        if self._snapshot is None:
            if self.failed:
                self._snapshot = ChaseResult(
                    query=self.query,
                    instance=None,
                    failed=True,
                    saturated=True,
                    steps=sum(self.counters.values()),
                    level_reached=0,
                    elapsed_seconds=self.elapsed_seconds,
                    rule_applications=self.counters,
                    extensions=self.extensions,
                    segment_seconds=tuple(self.segment_seconds),
                )
            else:
                self._snapshot = ChaseResult(
                    query=self.query,
                    instance=self.instance,
                    failed=False,
                    saturated=self.saturated,
                    steps=sum(self.counters.values()),
                    level_reached=self.instance.max_level(),
                    elapsed_seconds=self.elapsed_seconds,
                    rule_applications=self.counters,
                    extensions=self.extensions,
                    segment_seconds=tuple(self.segment_seconds),
                )
        return self._snapshot

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> RunSnapshot:
        """A level-segmented, pure-data image of this run for persistence.

        The image captures everything :meth:`from_snapshot` needs to resume
        the chase in another process: every conjunct with its level and
        deriving rule (sorted for determinism), the EGD-rewritten head, the
        null counter, the per-rule counters and the failed/saturated/bound
        scalars.  The checkpointed trigger frontier is deliberately *not*
        serialized — resumption restarts the semi-naive delta from the full
        instance (the ``_interrupted`` path), which rediscovers every
        applicable trigger and is sound for the restricted chase.
        """
        if self.failed:
            facts: tuple[tuple[int, str, Atom], ...] = ()
            max_level = 0
        else:
            instance = self.instance
            facts = tuple(
                sorted(
                    ((instance.level_of(a), instance.rule_of(a), a) for a in instance),
                    key=lambda row: (row[0], str(row[2])),
                )
            )
            max_level = instance.max_level()
        return RunSnapshot(
            query=str(self.query),
            bound=self.bound,
            failed=self.failed,
            saturated=self.saturated,
            null_counter=self.nulls.peek(),
            counters=dict(self.counters),
            head=self.instance.head,
            facts=facts,
            max_level=max_level,
        )

    @classmethod
    def from_snapshot(
        cls,
        engine: ChaseEngine,
        query: ConjunctiveQuery,
        snapshot: RunSnapshot,
    ) -> "ChaseRun":
        """Rebuild a run from a persisted :class:`RunSnapshot`.

        The instance is reconstructed fact by fact with its stored levels
        and rules (``parents=()`` — snapshots carry no provenance, so
        callers needing chase graphs must chase fresh); the null factory
        resumes at the persisted counter so later extensions never reuse an
        index.  A non-failed hydrated run is marked ``_interrupted``: its
        pending-trigger frontier was not persisted, so the next
        :meth:`extend_to` restarts the semi-naive delta from the full
        instance, which refinds every applicable trigger (restricted-chase
        sound, exactly like resuming after a governor interrupt).
        """
        run = cls(engine, query)
        run.counters = dict(snapshot.counters)
        run.failed = snapshot.failed
        run.bound = snapshot.bound
        run.hydrated = True
        run.hydrated_partial = snapshot.partial
        if snapshot.failed:
            run.saturated = True
        else:
            instance = ChaseInstance(
                (), snapshot.head, track_graph=engine.config.track_graph
            )
            for level, rule, atom in snapshot.facts:
                instance.add(atom, level=level, rule=rule, parents=())
            run.instance = instance
            run.nulls = NullFactory(start=snapshot.null_counter)
            run.saturated = snapshot.saturated and not snapshot.partial
            run._interrupted = True
        run._level_zero_done = True
        run._started = True
        # Seed the published-metrics snapshots with the inherited state so
        # this process only ever publishes the *new* work it performs.
        run._published_counters = dict(run.counters)
        run._published_nulls = max(0, snapshot.null_counter - 1)
        run._published_merges = run.instance.merges
        run._published_conjuncts = len(run.instance)
        if not run.failed:
            run._published_levels = run.instance.level_histogram()
        return run

    # -- metrics publication --------------------------------------------------

    def _publish_metrics(self) -> None:
        """Publish segment deltas into the metrics registry.

        Runs once per :meth:`extend_to` segment, never per trigger, so the
        chase hot path stays free of registry lookups; the ``_published_*``
        snapshots guarantee a resumed run contributes each firing, null and
        merge to the process-wide totals exactly once.
        """
        metrics = self._metrics
        if metrics is None:
            return
        for rule, count in self.counters.items():
            delta = count - self._published_counters.get(rule, 0)
            if delta:
                metrics.counter("chase.triggers", rule=rule).inc(delta)
                self._published_counters[rule] = count
        nulls = self.nulls.peek() - 1
        if nulls > self._published_nulls:
            metrics.counter("chase.nulls_invented").inc(nulls - self._published_nulls)
            self._published_nulls = nulls
        merges = self.instance.merges
        if merges > self._published_merges:
            metrics.counter("egd.rewrites").inc(merges - self._published_merges)
            self._published_merges = merges
        conjuncts = len(self.instance)
        if conjuncts > self._published_conjuncts:
            metrics.counter("chase.conjuncts_added").inc(
                conjuncts - self._published_conjuncts
            )
        self._published_conjuncts = conjuncts
        metrics.counter("chase.extend_segments").inc()
        if not self.failed:
            histogram = metrics.histogram("chase.level_of_conjunct")
            levels = self.instance.level_histogram()
            for level, count in levels.items():
                delta = count - self._published_levels.get(level, 0)
                if delta > 0:
                    histogram.observe(level, delta)
            self._published_levels = levels

    # -- the leveled phase, resumable ---------------------------------------

    def _existential_rounds(self, level_bound: Optional[int]) -> None:
        engine = self.engine
        instance = self.instance
        config = engine.config
        all_tgds = engine._full_tgds + engine._existential_tgds

        # Replay the checkpointed frontier under the (larger) new bound.
        pending = list(self._pending.values())
        self._pending = {}
        additions: list[Atom] = []
        for tgd, sigma in pending:
            self._fire(tgd, self._resolve_sigma(sigma), level_bound, additions)
        if not self._started:
            delta: list[Atom] = list(instance)
        elif self._interrupted:
            # The previous extension was stopped mid-round by the
            # governance layer: its semi-naive delta (and any frontier
            # triggers not yet re-pended) were lost.  Restarting the delta
            # from the full instance rediscovers every applicable trigger;
            # the restricted chase makes the replay sound because triggers
            # whose heads are already satisfied do not refire.  (Under the
            # oblivious ablation a replayed existential trigger invents a
            # fresh null, yielding a larger — but still universal —
            # prefix; interrupt/resume equivalence is only claimed for the
            # restricted chase.)
            engine._egd_fixpoint(instance, delta=additions)
            self._interrupted = False
            delta = list(instance)
            delta.extend(instance.drain_dirty())
        else:
            engine._egd_fixpoint(instance, delta=additions)
            additions = [a for a in additions if a in instance]
            additions.extend(instance.drain_dirty())
            delta = additions

        tracer = self._tracer
        governor = self._governor
        round_no = 0
        while delta:
            round_no += 1
            if governor is not None:
                governor.checkpoint("chase.round", instance=instance)
            with tracer.span("chase.level", round=round_no, phase="existential") as sp:
                additions = []
                for fact in delta:
                    if fact not in instance:
                        continue
                    for tgd in all_tgds:
                        matches = list(
                            match_conjunction(
                                tgd.body,
                                instance.index,
                                required_fact=fact,
                                reorder=config.reorder_join,
                                governor=governor,
                                governor_site="chase.match",
                            )
                        )
                        for sigma in matches:
                            self._fire(tgd, sigma, level_bound, additions)
                engine._egd_fixpoint(instance, delta=additions)
                additions = [a for a in additions if a in instance]
                additions.extend(instance.drain_dirty())
                if tracer.enabled:
                    sp.set(
                        delta=len(delta),
                        added=len(additions),
                        level=instance.max_level(),
                    )
            delta = additions
        self.saturated = not self._pending

    def _fire(
        self,
        tgd: TGD,
        sigma: Substitution,
        level_bound: Optional[int],
        additions: list[Atom],
    ) -> None:
        tracer = self._tracer
        governor = self._governor
        if governor is not None:
            governor.poll("chase.trigger", facts=len(self.instance))
        if tracer.enabled:
            # Single cached-attribute check keeps the disabled hot path to
            # one branch per trigger.
            with tracer.span("chase.trigger", rule=tgd.label) as sp:
                added = self._apply_tgd(tgd, sigma, level_bound)
                sp.set(
                    fired=added is not None and added is not _LEVEL_CAPPED,
                    capped=added is _LEVEL_CAPPED,
                )
        else:
            added = self._apply_tgd(tgd, sigma, level_bound)
        if added is None or added is _LEVEL_CAPPED:
            return
        self.counters[tgd.label] = self.counters.get(tgd.label, 0) + 1
        additions.append(added)
        self.engine._check_step_budget(self.counters)
        if governor is not None:
            governor.step()

    def _apply_tgd(self, tgd: TGD, sigma: Substitution, level_bound: Optional[int]):
        """One Definition-2 rule-(2) step.

        Returns the added conjunct, ``None`` when the rule was not
        applicable (head already present — a cross-arc is recorded), or
        the ``_LEVEL_CAPPED`` sentinel when the application was suppressed
        by the level bound — in which case the trigger is checkpointed for
        the next extension.
        """
        instance = self.instance
        engine = self.engine
        # The trigger may predate an EGD merge executed earlier in this
        # round; re-check that its body image still exists.
        body_imgs = [sigma.apply_atom(b) for b in tgd.body]
        if any(img not in instance for img in body_imgs):
            return None
        parents = engine._parent_ids(instance, sigma, tgd)
        level = 1 + max(instance.level_of_id(p) for p in parents)
        if tgd.is_full:
            head_img = sigma.apply_atom(tgd.head)
            if head_img in instance:
                instance.record_cross_arc(parents, head_img, tgd.label)
                return None
        else:
            pattern = sigma.apply_atom(tgd.head)
            if engine.config.restricted:
                witness = engine._find_head_witness(
                    instance, pattern, set(tgd.existential_vars)
                )
                if witness is not None:
                    # Definition 3(4)(ii): the extension mu' exists; record
                    # the cross-arc and do not fire.
                    instance.record_cross_arc(parents, witness, tgd.label)
                    return None
            head_img = engine._instantiate_nulls(pattern, tgd, self.nulls)
        if level_bound is not None and level > level_bound:
            self._pend(tgd, sigma)
            return _LEVEL_CAPPED
        instance.add(head_img, level=level, rule=tgd.label, parents=parents)
        return head_img

    # -- frontier checkpointing ----------------------------------------------

    def _pend(self, tgd: TGD, sigma: Substitution) -> None:
        resolved = self._resolve_sigma(sigma)
        key = (
            tgd.label,
            tuple(
                sorted(
                    ((v.name, term_sort_key(resolved[v])) for v in resolved),
                )
            ),
        )
        self._pending.setdefault(key, (tgd, resolved))

    def _resolve_sigma(self, sigma: Substitution) -> Substitution:
        """Rewrite a checkpointed trigger through the EGD merge map."""
        resolved = {v: self.instance.resolve_term(t) for v, t in sigma.items()}
        if all(resolved[v] == sigma[v] for v in resolved):
            return sigma
        return Substitution(resolved)

    def __repr__(self) -> str:
        status = (
            "failed"
            if self.failed
            else ("saturated" if self.saturated else f"bound {self.bound}")
        )
        return (
            f"ChaseRun({self.query.name}: {status}, {len(self.instance)} conjuncts, "
            f"{self.extensions} extensions, {self.pending_triggers} pending)"
        )


def chase(
    query: ConjunctiveQuery,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    obs: Optional[Observability] = None,
    **config_kwargs,
) -> ChaseResult:
    """Convenience wrapper: chase *query* with a one-off engine.

    Keyword arguments are passed through to :class:`ChaseConfig`, e.g.
    ``chase(q, max_level=12, track_graph=True)``; *obs* wires the run to
    an :class:`~repro.obs.Observability` sink.
    """
    return ChaseEngine(dependencies, ChaseConfig(**config_kwargs), obs=obs).run(query)
