"""Conjunct equivalence, primary paths and the excision machinery.

This module implements the combinatorial tools of Section 4:

* **Definition 6** — conjunct equivalence ``c1 ~ c2``: same relation and
  agreement on every component that is a *real* (non-fresh) constant.
  Query variables and labeled nulls impose no constraint — which is what
  lets the infinite chains of the chase repeat up to renaming.
* **Definition 7** — *primary paths*: paths of primary arcs, except that
  they may leave a ``type`` conjunct through an arc that jumps two levels
  (the rho_1 pattern visible in Figure 1).
* **Definition 8** — *parallel paths*: equal-length paths whose arcs carry
  the same rule labels position by position.
* The **excision** searches behind Lemmas 9–11: given a conjunct (or a set
  of conjuncts) deep in the chase, find a homomorphic image within the
  prescribed level bound.  We verify the lemmas constructively by
  searching for the bounded image with the generic homomorphism engine
  restricted to a level prefix.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

from ..core.atoms import Atom
from ..core.substitution import Substitution
from ..core.terms import Constant, Term, Variable
from ..datalog.index import FactIndex
from ..datalog.matching import match_conjunction
from .graph import ChaseGraph, GraphArc
from .instance import ChaseInstance

__all__ = [
    "equivalent",
    "primary_path_arcs",
    "is_primary_path",
    "primary_path_to",
    "parallel_paths",
    "follow_parallel",
    "generalize_conjuncts",
    "bounded_image",
    "bounded_image_of_set",
]


def equivalent(c1: Atom, c2: Atom) -> bool:
    """Definition 6: ``c1 ~ c2``.

    Both conjuncts must have the same relation symbol and arity, and agree
    on every component where either side is a real constant.  (The paper
    states the arity requirement; the relation symbol is implied by its
    use — equivalent conjuncts stand in for one another in the chase.)
    """
    if c1.predicate != c2.predicate or c1.arity != c2.arity:
        return False
    for a, b in zip(c1.args, c2.args):
        if (isinstance(a, Constant) or isinstance(b, Constant)) and a != b:
            return False
    return True


def _arc_allowed_on_primary_path(arc: GraphArc, is_first: bool) -> bool:
    """Definition 7: primary arc, or an initial +2-level hop out of ``type``."""
    if arc.primary:
        return True
    if (
        is_first
        and arc.source.predicate == "type"
        and arc.target_level == arc.source_level + 2
    ):
        return True
    return False


def is_primary_path(arcs: Sequence[GraphArc]) -> bool:
    """Check that a list of consecutive arcs forms a primary path (Def. 7)."""
    if not arcs:
        return True
    for i, arc in enumerate(arcs):
        if not _arc_allowed_on_primary_path(arc, is_first=i == 0):
            return False
        if i > 0 and arcs[i - 1].target != arc.source:
            return False
    return True


def primary_path_arcs(graph: ChaseGraph, source: Atom) -> Iterable[list[GraphArc]]:
    """Enumerate primary paths starting at *source*, shortest first.

    The chase graph of Sigma_FL has out-degree bounded by the rule set, and
    Lemma 5 keeps the chains isolated, so enumeration is cheap in practice.
    """
    frontier: list[list[GraphArc]] = [[]]
    while frontier:
        new_frontier: list[list[GraphArc]] = []
        for path in frontier:
            tip = path[-1].target if path else source
            for arc in graph.arcs_out_of(tip):
                if arc.cross:
                    continue
                if _arc_allowed_on_primary_path(arc, is_first=not path):
                    extended = path + [arc]
                    yield extended
                    new_frontier.append(extended)
        frontier = new_frontier


def primary_path_to(
    graph: ChaseGraph, source: Atom, target: Atom, *, max_length: Optional[int] = None
) -> Optional[list[GraphArc]]:
    """The primary path from *source* to *target*, or ``None``.

    The paper argues (proof of Lemma 9) that such paths are unique when
    they exist; we return the first (shortest) one found.
    """
    for path in primary_path_arcs(graph, source):
        if max_length is not None and len(path) > max_length:
            return None
        if path[-1].target == target:
            return path
    return None


def parallel_paths(pi1: Sequence[GraphArc], pi2: Sequence[GraphArc]) -> bool:
    """Definition 8: same length and identical rule labels position-wise."""
    if len(pi1) != len(pi2):
        return False
    return all(a.rule == b.rule for a, b in zip(pi1, pi2))


def follow_parallel(
    graph: ChaseGraph, start: Atom, labels: Sequence[str]
) -> Optional[list[GraphArc]]:
    """Follow, from *start*, a path whose arcs carry exactly *labels*.

    Returns the first such path (depth-first), or ``None``.  This is the
    ``pi_2`` construction of Lemmas 9 and 10: given a primary path's rule
    labels, re-run it from an equivalent conjunct found earlier.
    """

    def recurse(tip: Atom, remaining: Sequence[str], acc: list[GraphArc]):
        if not remaining:
            return acc
        for arc in graph.arcs_out_of(tip):
            if arc.cross or arc.rule != remaining[0]:
                continue
            found = recurse(arc.target, remaining[1:], acc + [arc])
            if found is not None:
                return found
        return None

    return recurse(start, list(labels), [])


# -- bounded homomorphic images (Lemmas 9 and 11) -----------------------------


def generalize_conjuncts(
    conjuncts: Sequence[Atom],
) -> tuple[tuple[Atom, ...], dict[Term, Variable]]:
    """Turn chase conjuncts into a matchable pattern.

    Internal chase-to-chase homomorphisms fix real constants and may remap
    everything else (query variables behave like fresh values inside the
    chase — see Definition 6).  We therefore replace every non-constant
    term by a pattern variable, consistently across the set, and return
    both the pattern and the term-to-variable mapping.
    """
    mapping: dict[Term, Variable] = {}
    counter = itertools.count(1)
    pattern: list[Atom] = []
    for conjunct in conjuncts:
        args: list[Term] = []
        for term in conjunct.args:
            if isinstance(term, Constant):
                args.append(term)
            else:
                var = mapping.get(term)
                if var is None:
                    var = Variable(f"_H{next(counter)}")
                    mapping[term] = var
                args.append(var)
        pattern.append(Atom(conjunct.predicate, tuple(args)))
    return tuple(pattern), mapping


def _prefix_index(instance: ChaseInstance, level_bound: int) -> FactIndex:
    return FactIndex(instance.atoms_up_to_level(level_bound))


def bounded_image(
    instance: ChaseInstance, conjunct: Atom, level_bound: int
) -> Optional[Atom]:
    """Lemma 9 check: an image of *conjunct* at level <= *level_bound*.

    Searches for a homomorphism (constants fixed, other terms free) from
    the single conjunct into the level-bounded prefix of the chase and
    returns the image conjunct, or ``None`` when no such image exists —
    which would falsify Lemma 9 if ``level_bound >= 2 * |q|``.
    """
    pattern, _ = generalize_conjuncts((conjunct,))
    prefix = _prefix_index(instance, level_bound)
    for sigma in match_conjunction(pattern, prefix, reorder=False):
        return sigma.apply_atom(pattern[0])
    return None


def bounded_image_of_set(
    instance: ChaseInstance, conjuncts: Sequence[Atom], level_bound: int
) -> Optional[tuple[Substitution, tuple[Atom, ...]]]:
    """Lemma 11 check: one homomorphism moving the whole set below the bound.

    Returns the substitution on pattern variables together with the image
    conjuncts, or ``None`` when the set admits no bounded image (which
    would falsify Lemma 11 when ``level_bound >= len(conjuncts) * 2 * |q|``).
    """
    pattern, _ = generalize_conjuncts(tuple(conjuncts))
    prefix = _prefix_index(instance, level_bound)
    for sigma in match_conjunction(pattern, prefix):
        return sigma, sigma.apply_atoms(pattern)
    return None
