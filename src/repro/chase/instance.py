"""Chase instances: the evolving database of conjuncts.

A :class:`ChaseInstance` is the mutable state of one chase run.  On top of
an indexed set of conjuncts it maintains everything Definitions 2 and 3 of
the paper need:

* a **level** per conjunct (Definition 3(3)) and the generating rule with
  its parent conjuncts — kept on stable integer *node ids* so provenance
  survives EGD rewrites;
* **arcs** of the chase graph, including cross-arcs (Definition 3(4)),
  recorded optionally (graph tracking costs memory and is off during plain
  containment checks);
* the **head of the chased query**, which EGD applications may rewrite
  (the paper's Example 1); and
* the EGD **merge** operation itself: equate two terms, rewrite every
  conjunct, collapse duplicates, and fail on a constant/constant clash.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..core.atoms import Atom
from ..core.errors import ChaseFailure
from ..core.terms import Constant, Term, term_sort_key
from ..datalog.index import FactIndex

__all__ = [
    "Arc",
    "Derivation",
    "ChaseInstance",
    "LevelPrefixView",
    "INITIAL_RULE_LABEL",
]

#: Rule label used for the conjuncts the chase starts from (body of q).
INITIAL_RULE_LABEL = "initial"


@dataclass(frozen=True)
class Arc:
    """One chase-graph arc: *parents* jointly produced *child* via *rule*.

    ``cross`` marks Definition 3(4) cross-arcs — the rule was applicable
    but its head image already existed, so no conjunct was added.
    """

    parent_ids: tuple[int, ...]
    child_id: int
    rule: str
    cross: bool = False


@dataclass(frozen=True)
class Derivation:
    """A derivation tree: how one conjunct came to be in the chase.

    Leaves are the initial conjuncts (rule ``initial``); inner nodes name
    the Sigma rule applied and recurse into the premise derivations.
    """

    atom: Atom
    rule: str
    premises: tuple["Derivation", ...] = ()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if not self.premises:
            return f"{pad}{self.atom}  [{self.rule}]"
        lines = [f"{pad}{self.atom}  [{self.rule}] from:"]
        lines += [p.pretty(indent + 1) for p in self.premises]
        return "\n".join(lines)

    def depth(self) -> int:
        if not self.premises:
            return 0
        return 1 + max(p.depth() for p in self.premises)

    def __str__(self) -> str:
        return self.pretty()


class ChaseInstance:
    """Mutable chase state.  See module docstring."""

    def __init__(
        self,
        atoms: Iterable[Atom],
        head: Sequence[Term] = (),
        *,
        track_graph: bool = False,
    ):
        self._index = FactIndex()
        self._atom_id: dict[Atom, int] = {}
        self._id_atom: dict[int, Atom] = {}
        self._level: dict[int, int] = {}
        self._rule: dict[int, str] = {}
        self._id_alias: dict[int, int] = {}
        self._term_atoms: dict[Term, set[Atom]] = {}
        self._merged_into: dict[Term, Term] = {}
        self._ids = itertools.count(1)
        self._arcs: list[Arc] = []
        self._track_graph = track_graph
        self._dirty: list[Atom] = []
        self._journal: list[Atom] = []
        self._parents: dict[int, tuple[int, ...]] = {}
        #: EGD merges executed (term pairs actually equated) and conjunct
        #: collapses they caused — the ``egd.rewrites`` observability feed.
        self.merges = 0
        self.collapses = 0
        self.head: tuple[Term, ...] = tuple(head)
        for atom in atoms:
            self.add(atom, level=0, rule=INITIAL_RULE_LABEL, parents=())

    # -- read access ---------------------------------------------------------

    @property
    def index(self) -> FactIndex:
        """The underlying fact index (do not mutate directly)."""
        return self._index

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._index

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._index)

    def atoms(self) -> frozenset[Atom]:
        return self._index.to_frozenset()

    def node_id(self, atom: Atom) -> int:
        """The stable node id of a current conjunct."""
        return self._resolve_id(self._atom_id[atom])

    def atom_of(self, node_id: int) -> Atom:
        """The current conjunct carried by *node_id* (follows merges)."""
        return self._id_atom[self._resolve_id(node_id)]

    def level_of(self, atom: Atom) -> int:
        """Definition 3(3) level of a current conjunct."""
        return self._level[self.node_id(atom)]

    def level_of_id(self, node_id: int) -> int:
        """Level of a conjunct given its (possibly aliased) node id."""
        return self._level[self._resolve_id(node_id)]

    def rule_of(self, atom: Atom) -> str:
        """Label of the rule that generated the conjunct (or ``initial``)."""
        return self._rule[self.node_id(atom)]

    def max_level(self) -> int:
        return max(self._level[self._resolve_id(i)] for i in self._id_atom) if self._id_atom else 0

    def atoms_up_to_level(self, bound: int) -> list[Atom]:
        """Current conjuncts whose level does not exceed *bound*."""
        return [a for a in self._index if self.level_of(a) <= bound]

    def level_histogram(self, bound: Optional[int] = None) -> dict[int, int]:
        """Conjunct count per level (restricted to ``level <= bound`` if given).

        The per-level growth profile Lemma 5 predicts to be linear for
        cyclic queries; the provenance payload and the metrics publisher
        both read it.
        """
        histogram: dict[int, int] = {}
        for atom in self._index:
            level = self.level_of(atom)
            if bound is not None and level > bound:
                continue
            histogram[level] = histogram.get(level, 0) + 1
        return histogram

    def firing_sequence(self) -> tuple[tuple[str, int], ...]:
        """``(rule, level)`` per surviving non-initial conjunct, in firing order.

        Node ids are allocated in rule-application order, so the sequence
        is reconstructed for free from the provenance maps — no recording
        happens during the chase.  Conjuncts rewritten away by EGD merges
        are absent (their aliased node keeps the earliest derivation).
        """
        rows = []
        for node_id in sorted(self._id_atom):
            rule = self._rule[node_id]
            if rule == INITIAL_RULE_LABEL:
                continue
            rows.append((rule, self._level[node_id]))
        return tuple(rows)

    def atoms_at_level(self, level: int) -> list[Atom]:
        """Current conjuncts whose level is exactly *level*.

        The per-level delta of an already-materialised (cached) prefix:
        the anytime checker feeds these to the delta-restricted
        homomorphism search when no fresh chase work happened.
        """
        return [a for a in self._index if self.level_of(a) == level]

    # -- the addition/rewrite journal -----------------------------------------

    def journal_marker(self) -> int:
        """An opaque marker into the addition/rewrite journal.

        Pass it to :meth:`journal_since` after mutating the instance to
        obtain every conjunct added — or rewritten into a new form by an
        EGD merge — in between.  Unlike the level map, the journal also
        captures *old-level* conjuncts whose form changed, which is what
        makes it a sound delta for incremental homomorphism search.
        """
        return len(self._journal)

    def journal_since(self, marker: int) -> list[Atom]:
        """Distinct conjuncts added/rewritten since *marker*, still present.

        Conjuncts that were added and then rewritten away again within the
        window are dropped; duplicates (an atom rewritten several times
        into the same final form) are collapsed.
        """
        seen: set[Atom] = set()
        out: list[Atom] = []
        for atom in self._journal[marker:]:
            if atom in seen or atom not in self._index:
                continue
            seen.add(atom)
            out.append(atom)
        return out

    def up_to_level(self, bound: int) -> "LevelPrefixView":
        """A read-only, index-protocol view of the first *bound* levels.

        O(1) to construct — nothing is copied; matching filters lazily by
        level.  The view is a snapshot *by reference*: it stays correct
        only while the instance is not mutated, so take it fresh per
        search (the containment checker does).
        """
        return LevelPrefixView(self, bound)

    def arcs(self) -> tuple[Arc, ...]:
        """All recorded chase-graph arcs (ids are raw; resolve via atom_of)."""
        return tuple(self._arcs)

    def derivation_of(self, atom: Atom) -> Derivation:
        """The derivation tree of a current conjunct.

        Premises are resolved through EGD merges to their current form.
        EGD collapses can in principle entangle provenance; re-visited
        nodes are rendered as leaves to keep the tree finite.
        """
        def build(node: int, visiting: frozenset[int]) -> Derivation:
            node = self._resolve_id(node)
            node_atom = self._id_atom[node]
            rule = self._rule[node]
            parent_ids = self._parents.get(node, ())
            if node in visiting or not parent_ids:
                return Derivation(node_atom, rule)
            nested = frozenset(visiting | {node})
            premises = []
            for parent in parent_ids:
                parent = self._resolve_id(parent)
                if parent not in self._id_atom:  # pragma: no cover - defensive
                    continue
                premises.append(build(parent, nested))
            return Derivation(node_atom, rule, tuple(premises))

        return build(self.node_id(atom), frozenset())

    def resolve_term(self, term: Term) -> Term:
        """Follow EGD merges: the current representative of *term*."""
        seen = []
        while term in self._merged_into:
            seen.append(term)
            term = self._merged_into[term]
        for t in seen:  # path compression
            self._merged_into[t] = term
        return term

    # -- mutation: adding conjuncts -------------------------------------------

    def add(
        self,
        atom: Atom,
        *,
        level: int,
        rule: str,
        parents: tuple[int, ...],
        cross_if_present: bool = False,
    ) -> Optional[int]:
        """Insert a conjunct with provenance; return its node id.

        When the conjunct already exists nothing is added; if
        *cross_if_present* is set a cross-arc to the existing node is
        recorded instead (Definition 3(4)) and ``None`` is returned.
        """
        existing = self._atom_id.get(atom)
        if existing is not None:
            if cross_if_present and self._track_graph:
                self._arcs.append(
                    Arc(parents, self._resolve_id(existing), rule, cross=True)
                )
            return None
        node = next(self._ids)
        self._atom_id[atom] = node
        self._id_atom[node] = atom
        self._level[node] = level
        self._rule[node] = rule
        self._parents[node] = parents
        for term in set(atom.args):
            self._term_atoms.setdefault(term, set()).add(atom)
        self._index.add(atom)
        self._journal.append(atom)
        if self._track_graph and rule != INITIAL_RULE_LABEL:
            self._arcs.append(Arc(parents, node, rule, cross=False))
        return node

    def record_cross_arc(self, parents: tuple[int, ...], child: Atom, rule: str) -> None:
        """Record a cross-arc to an already-present conjunct."""
        if self._track_graph:
            self._arcs.append(Arc(parents, self.node_id(child), rule, cross=True))

    # -- mutation: EGD merge ---------------------------------------------------

    def merge(self, left: Term, right: Term) -> bool:
        """Equate two terms per chase rule (1) of Definition 2.

        The lexicographically smaller term (constants < nulls < variables)
        survives; the other is rewritten away everywhere, including in the
        query head.  Returns True when the instance changed.  Raises
        :class:`ChaseFailure` when both are distinct real constants
        (Definition 2(1)(a)).
        """
        left = self.resolve_term(left)
        right = self.resolve_term(right)
        if left == right:
            return False
        if isinstance(left, Constant) and isinstance(right, Constant):
            raise ChaseFailure(
                f"EGD equated distinct constants {left} and {right}: chase fails"
            )
        keep, lose = sorted((left, right), key=term_sort_key)
        self.merges += 1
        self._merged_into[lose] = keep
        affected = list(self._term_atoms.pop(lose, ()))
        for old_atom in affected:
            new_atom = Atom(
                old_atom.predicate,
                tuple(keep if t == lose else t for t in old_atom.args),
            )
            self._replace_atom(old_atom, new_atom)
        if lose in self.head:
            self.head = tuple(keep if t == lose else t for t in self.head)
        return True

    def _replace_atom(self, old_atom: Atom, new_atom: Atom) -> None:
        node = self._atom_id.pop(old_atom)
        node = self._resolve_id(node)
        self._index.discard(old_atom)
        for term in set(old_atom.args):
            bucket = self._term_atoms.get(term)
            if bucket is not None:
                bucket.discard(old_atom)
        existing = self._atom_id.get(new_atom)
        if existing is not None:
            # Two conjuncts collapsed: alias the younger node to the older
            # one and keep the smaller level (the conjunct now "exists since"
            # its earliest derivation).
            existing = self._resolve_id(existing)
            if existing == node:
                return
            self.collapses += 1
            keep_id, drop_id = sorted(
                (existing, node), key=lambda i: (self._level[i], i)
            )
            self._id_alias[drop_id] = keep_id
            self._id_atom.pop(drop_id, None)
            self._level.pop(drop_id, None)
            self._rule.pop(drop_id, None)
        else:
            self._atom_id[new_atom] = node
            self._id_atom[node] = new_atom
            for term in set(new_atom.args):
                self._term_atoms.setdefault(term, set()).add(new_atom)
            self._index.add(new_atom)
            self._dirty.append(new_atom)
            self._journal.append(new_atom)

    def drain_dirty(self) -> list[Atom]:
        """Conjuncts rewritten by merges since the last drain.

        The chase engine feeds these back into its semi-naive delta: a
        rewritten conjunct can enable rule applications that its old form
        could not.
        """
        out = [a for a in self._dirty if a in self._index]
        self._dirty = []
        return out

    def _resolve_id(self, node: int) -> int:
        seen = []
        while node in self._id_alias:
            seen.append(node)
            node = self._id_alias[node]
        for n in seen:
            self._id_alias[n] = node
        return node

    # -- display ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"ChaseInstance({len(self._index)} conjuncts, "
            f"max level {self.max_level()}, head={tuple(str(t) for t in self.head)})"
        )

    def pretty(self, *, max_atoms: Optional[int] = None) -> str:
        """A level-ordered, human-readable listing of the instance."""
        rows = sorted(
            ((self.level_of(a), str(a), self.rule_of(a)) for a in self._index),
            key=lambda row: (row[0], row[1]),
        )
        if max_atoms is not None:
            rows = rows[:max_atoms]
        width = max((len(r[1]) for r in rows), default=10)
        lines = [f"  L{lvl:<3} {text:<{width}}  [{rule}]" for lvl, text, rule in rows]
        return "\n".join(lines)


class LevelPrefixView:
    """The first ``bound`` levels of a chase instance, as a fact index.

    Implements the read side of the :class:`~repro.datalog.index.FactIndex`
    protocol (``candidates``, ``count``, ``facts``, containment, iteration)
    by filtering the instance's backing index through its level map — the
    homomorphism search and conjunction matcher run against it unchanged.
    Construction copies nothing; per-predicate counts are memoised on
    first use, so the selectivity join-order heuristic stays cheap.
    """

    __slots__ = ("_instance", "_bound", "_counts", "_len", "_dense_masks")

    def __init__(self, instance: ChaseInstance, bound: int):
        self._instance = instance
        self._bound = bound
        self._counts: dict[str, int] = {}
        self._len: Optional[int] = None
        # Cache slot owned by the dense kernel: (DenseIndex, generation,
        # per-table row masks) — see repro.kernel.index.DenseIndex.level_masks.
        self._dense_masks = None

    @property
    def bound(self) -> int:
        return self._bound

    @property
    def instance(self) -> ChaseInstance:
        """The underlying chase instance (the dense kernel mirrors its
        backing index and filters it through this view's level bound)."""
        return self._instance

    def _visible(self, atom: Atom) -> bool:
        return self._instance.level_of(atom) <= self._bound

    # -- FactIndex read protocol -------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._instance.index and self._visible(atom)

    def __iter__(self) -> Iterator[Atom]:
        return (a for a in self._instance.index if self._visible(a))

    def __len__(self) -> int:
        if self._len is None:
            self._len = sum(1 for _ in self)
        return self._len

    def __bool__(self) -> bool:
        return any(True for _ in self)

    def predicates(self) -> set[str]:
        return {p for p in self._instance.index.predicates() if self.count(p)}

    def facts(self, predicate: str) -> frozenset[Atom]:
        return frozenset(
            a for a in self._instance.index.facts(predicate) if self._visible(a)
        )

    def count(self, predicate: str) -> int:
        cached = self._counts.get(predicate)
        if cached is None:
            cached = sum(
                1
                for a in self._instance.index.facts(predicate)
                if self._visible(a)
            )
            self._counts[predicate] = cached
        return cached

    def candidates(self, pattern: Atom, sigma=None) -> Iterable[Atom]:
        from ..core.substitution import Substitution

        if sigma is None:
            sigma = Substitution.EMPTY
        return (
            a
            for a in self._instance.index.candidates(pattern, sigma)
            if self._visible(a)
        )

    def to_frozenset(self) -> frozenset[Atom]:
        return frozenset(self)

    def __repr__(self) -> str:
        return (
            f"LevelPrefixView(levels<={self._bound} of "
            f"{len(self._instance)}-conjunct instance)"
        )
