"""The chase graph G(q) of Definition 3.

Nodes are the conjuncts of ``chase(q)``; an arc runs from each conjunct
involved in a rule application to the conjunct it produced, labelled by
the rule.  *Cross-arcs* (Definition 3(4)) mark applications whose head was
already present.  Arcs from level *k* to level *k+1* are **primary**, all
others **secondary** (Definition 3(5)) — the distinction Lemma 5's
locality property is about.

The graph is immutable and is derived from a finished
:class:`~repro.chase.engine.ChaseResult` whose engine ran with
``track_graph=True``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.atoms import Atom
from ..core.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ChaseResult
    from .instance import ChaseInstance

__all__ = ["GraphArc", "ChaseGraph"]


@dataclass(frozen=True)
class GraphArc:
    """A labelled arc of the chase graph."""

    source: Atom
    target: Atom
    rule: str
    cross: bool
    source_level: int
    target_level: int

    @property
    def primary(self) -> bool:
        """Definition 3(5): an arc from level k to level k+1 is primary."""
        return self.target_level == self.source_level + 1

    @property
    def secondary(self) -> bool:
        return not self.primary

    def __str__(self) -> str:
        kind = "cross " if self.cross else ""
        return (
            f"{self.source} (L{self.source_level}) --[{self.rule} {kind}]--> "
            f"{self.target} (L{self.target_level})"
        )


class ChaseGraph:
    """An immutable view of G(q) built from a chase instance."""

    def __init__(self, instance: "ChaseInstance"):
        self._levels: dict[Atom, int] = {}
        self._rules: dict[Atom, str] = {}
        self._arcs: tuple[GraphArc, ...] = ()
        self._into: dict[Atom, list[GraphArc]] = defaultdict(list)
        self._out_of: dict[Atom, list[GraphArc]] = defaultdict(list)

        for atom in instance:
            self._levels[atom] = instance.level_of(atom)
            self._rules[atom] = instance.rule_of(atom)

        seen: set[tuple[Atom, Atom, str, bool]] = set()
        arcs: list[GraphArc] = []
        for raw in instance.arcs():
            try:
                child = instance.atom_of(raw.child_id)
            except KeyError:  # pragma: no cover - defensive
                continue
            if child not in self._levels:
                continue
            for parent_id in raw.parent_ids:
                try:
                    parent = instance.atom_of(parent_id)
                except KeyError:  # pragma: no cover - defensive
                    continue
                if parent not in self._levels:
                    continue
                key = (parent, child, raw.rule, raw.cross)
                if key in seen:
                    continue
                seen.add(key)
                arc = GraphArc(
                    source=parent,
                    target=child,
                    rule=raw.rule,
                    cross=raw.cross,
                    source_level=self._levels[parent],
                    target_level=self._levels[child],
                )
                arcs.append(arc)
                self._into[child].append(arc)
                self._out_of[parent].append(arc)
        self._arcs = tuple(arcs)

    @classmethod
    def from_result(cls, result: "ChaseResult") -> "ChaseGraph":
        """Build the graph of a finished chase run (graph tracking required)."""
        if result.instance is None:
            raise ReproError("cannot build a chase graph: the chase failed")
        if not result.instance.arcs() and len(result.instance) > len(
            result.query.body
        ):
            raise ReproError(
                "chase was run without track_graph=True; re-run with "
                "chase(q, track_graph=True)"
            )
        return cls(result.instance)

    # -- structure ------------------------------------------------------------

    def nodes(self) -> tuple[Atom, ...]:
        return tuple(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._levels

    def arcs(self) -> tuple[GraphArc, ...]:
        return self._arcs

    def arcs_into(self, atom: Atom) -> tuple[GraphArc, ...]:
        return tuple(self._into.get(atom, ()))

    def arcs_out_of(self, atom: Atom) -> tuple[GraphArc, ...]:
        return tuple(self._out_of.get(atom, ()))

    def level(self, atom: Atom) -> int:
        return self._levels[atom]

    def rule(self, atom: Atom) -> str:
        """Label of the rule that generated the node (``initial`` for body(q))."""
        return self._rules[atom]

    def max_level(self) -> int:
        return max(self._levels.values(), default=0)

    def nodes_at_level(self, level: int) -> tuple[Atom, ...]:
        return tuple(a for a, l in self._levels.items() if l == level)

    def primary_arcs(self) -> tuple[GraphArc, ...]:
        return tuple(a for a in self._arcs if a.primary)

    def secondary_arcs(self) -> tuple[GraphArc, ...]:
        return tuple(a for a in self._arcs if a.secondary)

    def parents(self, atom: Atom) -> tuple[Atom, ...]:
        """Sources of non-cross arcs into *atom* (its generating conjuncts)."""
        return tuple(arc.source for arc in self._into.get(atom, ()) if not arc.cross)

    def primary_parent(self, atom: Atom) -> Optional[Atom]:
        """The source of a primary non-cross arc into *atom*, if any."""
        for arc in self._into.get(atom, ()):
            if arc.primary and not arc.cross:
                return arc.source
        return None

    # -- export ----------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (nodes keyed by str(atom)).

        Node attributes: ``level``, ``rule``; edge attributes: ``rule``,
        ``cross``, ``primary``.  Requires networkx (an optional extra).
        """
        import networkx as nx

        graph = nx.MultiDiGraph()
        for atom, level in self._levels.items():
            graph.add_node(str(atom), level=level, rule=self._rules[atom])
        for arc in self._arcs:
            graph.add_edge(
                str(arc.source),
                str(arc.target),
                rule=arc.rule,
                cross=arc.cross,
                primary=arc.primary,
            )
        return graph

    def pretty_table(self, *, max_level: Optional[int] = None) -> str:
        """A per-level textual rendering in the spirit of the paper's Figure 1."""
        lines = []
        top = self.max_level() if max_level is None else max_level
        for level in range(top + 1):
            atoms = sorted(self.nodes_at_level(level), key=str)
            if not atoms:
                continue
            lines.append(f"level {level}:")
            for atom in atoms:
                producers = sorted(
                    {
                        f"{arc.rule}({arc.source})"
                        for arc in self.arcs_into(atom)
                        if not arc.cross
                    }
                )
                origin = f"  <- {'; '.join(producers)}" if producers else ""
                lines.append(f"  {atom}{origin}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ChaseGraph({len(self._levels)} nodes, {len(self._arcs)} arcs, "
            f"max level {self.max_level()})"
        )
