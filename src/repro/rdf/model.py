"""A minimal RDF data model.

The paper argues (Section 1) that its results carry over to RDF and
SPARQL, because RDF shares F-logic's meta-data features and SPARQL can
query them.  This package substantiates the claim with a small, honest
bridge: RDF triples and SPARQL-style basic graph patterns (BGPs) are
translated into the P_FL vocabulary, after which the full Sigma_FL
containment machinery applies.

Only the RDFS vocabulary that has a Sigma_FL counterpart is interpreted;
everything else is data.  This mirrors the paper's remark that the P_FL
encoding "is also related to, but slightly different from, the usual
encoding of RDF in first-order logic".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from ..core.terms import Constant, Term, Variable

__all__ = [
    "RDF_TYPE",
    "RDFS_SUBCLASSOF",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "Triple",
    "TriplePattern",
    "Graph",
    "BGPQuery",
    "term",
]

#: The interpreted RDFS vocabulary (CURIE-style names).
RDF_TYPE = "rdf:type"
RDFS_SUBCLASSOF = "rdfs:subClassOf"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"


@dataclass(frozen=True)
class Triple:
    """A ground RDF triple (subject, predicate, object) of IRIs/literals."""

    subject: str
    predicate: str
    object: str

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."


@dataclass(frozen=True)
class TriplePattern:
    """A BGP triple pattern; each position is a term (variable or constant).

    SPARQL's ``?x`` variables are represented by library
    :class:`Variable` objects; IRIs and literals by :class:`Constant`.
    """

    subject: Term
    predicate: Term
    object: Term

    def terms(self) -> tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def __str__(self) -> str:
        def show(t: Term) -> str:
            return f"?{t}" if isinstance(t, Variable) else str(t)

        return f"{show(self.subject)} {show(self.predicate)} {show(self.object)} ."


class Graph:
    """A set of ground triples."""

    def __init__(self, triples: Iterable[Triple] = ()):
        self._triples: set[Triple] = set(triples)

    def add(self, subject: str, predicate: str, object: str) -> "Graph":
        self._triples.add(Triple(subject, predicate, object))
        return self

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __repr__(self) -> str:
        return f"Graph({len(self._triples)} triples)"


@dataclass(frozen=True)
class BGPQuery:
    """A SPARQL-style SELECT over one basic graph pattern.

    ``projection`` lists the answer variables (SELECT clause);
    ``patterns`` is the WHERE block.
    """

    name: str
    projection: tuple[Variable, ...]
    patterns: tuple[TriplePattern, ...]

    def __str__(self) -> str:
        proj = " ".join(f"?{v}" for v in self.projection)
        where = " ".join(str(p) for p in self.patterns)
        return f"SELECT {proj} WHERE {{ {where} }}"


def term(value: Union[str, Term]) -> Term:
    """Coerce a string to a term: ``?name`` becomes a variable."""
    if isinstance(value, Term):
        return value
    if value.startswith("?") and len(value) > 1:
        return Variable(value[1:])
    return Constant(value)
