"""Translating RDF graphs and BGP queries into P_FL.

The mapping interprets the RDFS core and leaves the rest as data:

=============================  ==========================================
triple                          P_FL atom(s)
=============================  ==========================================
``s rdf:type c``                ``member(s, c)``
``c1 rdfs:subClassOf c2``       ``sub(c1, c2)``
``p rdfs:domain c``             ``type(c, p, rdfs_resource)`` *
``p rdfs:range t``              ``type(rdfs_resource, p, t)`` *
``s p o`` (other)               ``data(s, p, o)``
=============================  ==========================================

\\* RDFS domain/range are *global* per property, while F-logic signatures
are *per class*.  We bridge the gap with the distinguished class
``rdfs_resource``: a range declaration types the property on the
universal class, and a domain declaration asserts that whoever carries
the property is typed — the closest Sigma_FL reading.  The bridge is
intentionally partial (RDFS entailment and Sigma_FL are different
theories); what the paper claims, and what we reproduce, is that the
*meta-querying pattern* of SPARQL — variables in class/property position —
is covered by the containment machinery, not that Sigma_FL equals RDFS.

Triple *patterns* translate the same way; a variable in predicate
position forces the generic ``data`` reading (the pattern could match any
non-interpreted triple), which is exactly SPARQL's behaviour of matching
the vocabulary triples as ordinary data.
"""

from __future__ import annotations

from ..core.atoms import Atom, data, member, sub, type_
from ..core.errors import EncodingError
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from .model import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    BGPQuery,
    Graph,
    Triple,
    TriplePattern,
)

__all__ = [
    "RDFS_RESOURCE",
    "encode_triple",
    "encode_graph",
    "encode_pattern",
    "encode_bgp",
]

#: The universal class used to host global domain/range signatures.
RDFS_RESOURCE = Constant("rdfs_resource")


def encode_triple(triple: Triple) -> tuple[Atom, ...]:
    """P_FL atoms for one ground triple."""
    s = Constant(triple.subject)
    o = Constant(triple.object)
    if triple.predicate == RDF_TYPE:
        return (member(s, o),)
    if triple.predicate == RDFS_SUBCLASSOF:
        return (sub(s, o),)
    if triple.predicate == RDFS_DOMAIN:
        # p rdfs:domain c: anything with a p-value is a c.  Sigma_FL has no
        # native domain constraint; we record the signature on the domain
        # class so meta-queries can see it.
        return (type_(o, s, RDFS_RESOURCE),)
    if triple.predicate == RDFS_RANGE:
        # p rdfs:range t: p-values are of type t, globally.  rho_1 then
        # propagates membership to objects, via the universal class.
        return (type_(RDFS_RESOURCE, s, o),)
    p = Constant(triple.predicate)
    return (data(s, p, o),)


def encode_graph(graph: Graph, *, universal_membership: bool = True) -> list[Atom]:
    """P_FL atoms for a whole graph.

    With *universal_membership* every subject and object of a data triple
    is made a member of ``rdfs_resource``, so the global range signature
    reaches them through rho_6 — the standard RDFS reading.
    """
    atoms: list[Atom] = []
    seen: set[Atom] = set()
    entities: set[Constant] = set()

    def emit(atom: Atom) -> None:
        if atom not in seen:
            seen.add(atom)
            atoms.append(atom)

    for triple in sorted(graph, key=lambda t: (t.subject, t.predicate, t.object)):
        for atom in encode_triple(triple):
            emit(atom)
        if triple.predicate not in (RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASSOF):
            entities.add(Constant(triple.subject))
            if triple.predicate != RDF_TYPE:
                entities.add(Constant(triple.object))
    if universal_membership:
        for entity in sorted(entities, key=str):
            emit(member(entity, RDFS_RESOURCE))
    return atoms


def encode_pattern(pattern: TriplePattern) -> tuple[Atom, ...]:
    """P_FL atoms for one triple pattern of a BGP."""
    s, p, o = pattern.terms()
    if isinstance(p, Variable):
        # A variable predicate can only match data triples under this
        # encoding; SPARQL users who want to range over rdf:type as well
        # write it as a separate union branch (unions are outside the
        # paper's conjunctive fragment).
        return (data(s, p, o),)
    if not isinstance(p, Constant):  # pragma: no cover - terms are Var/Const
        raise EncodingError(f"unsupported predicate term: {p!r}")
    if p.name == RDF_TYPE:
        return (member(s, o),)
    if p.name == RDFS_SUBCLASSOF:
        return (sub(s, o),)
    if p.name == RDFS_DOMAIN:
        return (type_(o, s, RDFS_RESOURCE),)
    if p.name == RDFS_RANGE:
        return (type_(RDFS_RESOURCE, s, o),)
    return (data(s, p, o),)


def encode_bgp(query: BGPQuery) -> ConjunctiveQuery:
    """A BGP SELECT as a conjunctive P_FL query (containment-ready)."""
    body: list[Atom] = []
    for pattern in query.patterns:
        body.extend(encode_pattern(pattern))
    if not body:
        raise EncodingError(f"BGP query {query.name} has an empty pattern block")
    return ConjunctiveQuery(query.name, tuple(query.projection), tuple(body))
