"""RDF/SPARQL bridge: triples and BGP queries over the P_FL encoding."""

from .bridge import (
    RDFS_RESOURCE,
    encode_bgp,
    encode_graph,
    encode_pattern,
    encode_triple,
)
from .model import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    BGPQuery,
    Graph,
    Triple,
    TriplePattern,
    term,
)

__all__ = [
    "Triple",
    "TriplePattern",
    "Graph",
    "BGPQuery",
    "term",
    "RDF_TYPE",
    "RDFS_SUBCLASSOF",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "RDFS_RESOURCE",
    "encode_triple",
    "encode_graph",
    "encode_pattern",
    "encode_bgp",
]
