"""The containment service: admission, coalescing, warm scheduling.

:class:`ContainmentService` is the long-lived orchestrator the
:class:`repro.api.Engine` facade wraps.  One instance owns:

* a :class:`~repro.containment.bounded.ContainmentChecker` with its
  shared (thread-safe) :class:`~repro.containment.store.ChaseStore` —
  chase prefixes computed for one request are reused by every later
  request with the same canonical ``q1``;
* a :class:`~repro.service.pool.WorkerPool` — warm process workers that
  persist across ``check_all`` batches;
* an :class:`~repro.service.queue.AdmissionQueue` — the bounded
  concurrency gate that rejects overload explicitly and drains on
  :meth:`close`.

Request lifecycle: **admit** (or reject) → **coalesce** (identical
in-flight checks share one result future; same-``q1`` checks share one
ChaseRun through the store) → **schedule** (in-thread for ``check``,
warm pool for ``check_all``) → **govern** (service budget merged with
the per-request budget — requests can only tighten the envelope) →
**decide**.

Coalescing semantics: two concurrent :meth:`check` calls are *identical*
when their queries' canonical keys, resolved bound, schema, mode flags
and effective budget all match.  The first arrival (the leader) computes;
followers block on the leader's future and share its outcome — including
an exceptional one — and each follower increments the
``service.coalesce_hits`` counter.  Requests carrying a private
:class:`~repro.governance.CancelScope` bypass coalescing entirely: their
cancellation token must govern exactly one run.

Coalescing extends past the in-flight window: a **decided** verdict
(TRUE/FALSE — never UNKNOWN, whose meaning is "the budget ran out this
time") is remembered in a bounded LRU keyed by the same identity, so a
request identical to a *completed* one is answered without recomputation
(``service.result_hits``).  This is what makes a repeated ``check_all``
batch warm even when the first batch ran on the worker pool — the chase
state lives in the workers' private stores, but the verdicts live here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..containment.bounded import ContainmentChecker
from ..containment.result import ContainmentResult
from ..containment.store import ChaseStore
from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..dependencies import SIGMA_FL
from ..dependencies.dependency import Dependency
from ..governance import CancelScope, ExecutionBudget
from ..obs import OBS_OFF, Observability
from ..store import StoreConfig, resolve_store_config
from .pool import WorkerPool
from .queue import AdmissionQueue

__all__ = ["ContainmentService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Request-level counters of one :class:`ContainmentService`."""

    #: Single checks decided (leaders; coalesced followers not included).
    checks: int = 0
    #: ``check_all`` batches served.
    batches: int = 0
    #: Checks answered by piggybacking on an identical in-flight check.
    coalesced: int = 0
    #: Checks answered from the decided-result cache.
    result_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, JSON-friendly)."""
        return {
            "checks": self.checks,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "result_hits": self.result_hits,
        }


class ContainmentService:
    """Thread-safe, long-lived containment service.

    Parameters
    ----------
    dependencies:
        The constraint set Sigma (defaults to the paper's Sigma_FL).
    reorder_join, max_steps, anytime, store:
        Forwarded to the underlying
        :class:`~repro.containment.bounded.ContainmentChecker`.
    budget:
        Service-wide :class:`~repro.governance.ExecutionBudget` envelope.
        Per-request budgets are merged with it elementwise-min, so a
        request can tighten but never loosen the service's limits.
    max_active, max_pending:
        Admission limits (see :class:`~repro.service.queue.AdmissionQueue`).
    max_workers:
        Size of the warm process pool used by :meth:`check_all`.
    store_config:
        One :class:`~repro.store.StoreConfig` describing the whole
        storage stack — chase-store LRU capacity, optional persistent
        snapshot path + write-back policy, read-only attach, and the
        decided-verdict cache size.  Built only when *store* is ``None``;
        the serve layer shards share one ``path`` so a restarted fleet
        comes back warm.
    result_cache, store_capacity:
        **Deprecated** scattered forms of *store_config* — still honoured
        (they override the config's fields) but each emits a
        ``DeprecationWarning``.  See ``docs/api.md`` for the migration.
    obs:
        Observability sink shared by the checker, store, pool and queue.
    kernel:
        Homomorphism-search kernel (``auto``/``dense``/``baseline``),
        forwarded to the checker; see :mod:`repro.kernel`.  The kernel's
        aggregate counters appear as the ``kernel`` section of
        :meth:`stats_dict`.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        store: Optional[ChaseStore] = None,
        anytime: bool = True,
        budget: Optional[ExecutionBudget] = None,
        max_active: int = 8,
        max_pending: int = 64,
        max_workers: Optional[int] = None,
        store_config: Optional[StoreConfig] = None,
        result_cache: Optional[int] = None,
        store_capacity: Optional[int] = None,
        obs: Optional[Observability] = None,
        kernel: str = "auto",
    ):
        self.obs = obs if obs is not None else OBS_OFF
        config = resolve_store_config(
            store_config,
            store_capacity=store_capacity,
            result_cache=result_cache,
            owner="ContainmentService",
        )
        self.store_config = config
        if store is None:
            store = ChaseStore.from_config(
                dependencies,
                config,
                reorder_join=reorder_join,
                max_steps=max_steps,
                obs=obs,
            )
        self.checker = ContainmentChecker(
            dependencies,
            reorder_join=reorder_join,
            max_steps=max_steps,
            store=store,
            anytime=anytime,
            obs=obs,
            kernel=kernel,
        )
        self.budget = budget
        self.pool = WorkerPool(max_workers, obs=self.obs)
        self.queue = AdmissionQueue(
            max_active=max_active, max_pending=max_pending, obs=self.obs
        )
        self.stats = ServiceStats()
        self._inflight: dict[tuple, Future] = {}
        self._inflight_lock = threading.Lock()
        self._result_capacity = config.result_cache
        self._results: OrderedDict[tuple, ContainmentResult] = OrderedDict()
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def store(self) -> ChaseStore:
        """The shared chase store (thread-safe; reused across requests)."""
        return self.checker.store

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def inflight(self) -> int:
        """Distinct coalescable checks currently executing."""
        with self._inflight_lock:
            return len(self._inflight)

    @property
    def draining(self) -> bool:
        """Whether admissions have been closed (drain begun or completed)."""
        return self.queue.closed

    def stats_dict(self) -> dict[str, dict[str, int]]:
        """Every layer's counters in one JSON-friendly snapshot."""
        with self._inflight_lock:
            decided_cached = len(self._results)
        return {
            "service": dict(self.stats.as_dict(), decided_cached=decided_cached),
            "queue": self.queue.stats.as_dict(),
            "pool": self.pool.stats.as_dict(),
            "store": self.store.stats.as_dict(),
            "kernel": self.checker.kernel_stats.as_dict(),
        }

    # -- requests ------------------------------------------------------------

    def check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        explain: bool = False,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
        scope: Optional[CancelScope] = None,
    ) -> ContainmentResult:
        """Decide ``q1 ⊆_Sigma q2`` through the service pipeline.

        Same contract as
        :meth:`~repro.containment.bounded.ContainmentChecker.check`, plus
        the service semantics: the call is admission-controlled (may
        raise :class:`~repro.core.errors.AdmissionRejected`), its budget
        is merged into the service envelope, and identical concurrent
        calls share one computation.
        """
        effective = self._effective_budget(budget)
        schema_t = tuple(schema) if schema is not None else None
        if scope is not None:
            # A private cancellation token must govern exactly one run —
            # never a shared one.  Skip coalescing.
            return self._run_check(
                q1, q2, level_bound, schema_t, explain, anytime, effective, scope
            )
        if self.queue.closed:
            # A draining service answers nothing — not even from cache.
            # Going through admit keeps the rejection reason and metric
            # uniform with every other refused request.
            with self.queue.admit(op="check"):
                pass  # pragma: no cover - admit raises first
        key = self._request_key(
            q1, q2, level_bound, schema_t, explain, anytime, effective
        )
        cached = self._recall(key)
        if cached is not None:
            with self.obs.tracer.span(
                "service.check", q1=q1.name, q2=q2.name, cached=True
            ):
                return cached
        with self._inflight_lock:
            future = self._inflight.get(key)
            leader = future is None
            if leader:
                future = self._inflight[key] = Future()
        if not leader:
            self.stats.coalesced += 1
            self._count("service.coalesce_hits")
            tracer = self.obs.tracer
            with tracer.span(
                "service.check", q1=q1.name, q2=q2.name, coalesced=True
            ):
                return future.result()
        try:
            result = self._run_check(
                q1, q2, level_bound, schema_t, explain, anytime, effective, None
            )
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            self._remember(key, result)
            future.set_result(result)
            return result
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def check_all(
        self,
        pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
        parallel: bool = True,
    ) -> list[ContainmentResult]:
        """Decide a batch of pairs on the warm pool (one admission slot).

        The batch counts as a single admitted request.  With
        ``parallel=True`` (the default) distinct chase groups fan out to
        the service's *warm* :class:`~repro.service.pool.WorkerPool` —
        after the first batch, later batches reuse the running workers,
        groups already covered by the shared store never leave the
        parent process, and pairs whose verdict the service has already
        decided are answered from the result cache without dispatch.
        """
        pairs = list(pairs)
        effective = self._effective_budget(budget)
        schema_t = tuple(schema) if schema is not None else None
        keys = [
            self._request_key(
                q1, q2, level_bound, schema_t, False, anytime, effective
            )
            for q1, q2 in pairs
        ]
        results: list[Optional[ContainmentResult]] = [
            self._recall(key) for key in keys
        ]
        cold = [i for i, cached in enumerate(results) if cached is None]
        with self.queue.admit(op="check_all"):
            self.stats.batches += 1
            with self.obs.tracer.span(
                "service.check_all", pairs=len(pairs), cached=len(pairs) - len(cold)
            ):
                if cold:
                    decided = self.checker.check_all(
                        [pairs[i] for i in cold],
                        level_bound=level_bound,
                        schema=schema,
                        anytime=anytime,
                        budget=effective,
                        parallel=parallel,
                        pool=self.pool if parallel else None,
                    )
                    for i, result in zip(cold, decided):
                        results[i] = result
                        self._remember(keys[i], result)
        return results

    def chase_prefix(self, query: ConjunctiveQuery, level_bound: int):
        """Chase *query* to *level_bound* through the shared store."""
        with self.queue.admit(op="chase"):
            with self.obs.tracer.span(
                "service.chase", query=query.name, bound=level_bound
            ):
                return self.checker.chase_prefix(query, level_bound)

    # -- lifecycle -----------------------------------------------------------

    def healthcheck(self) -> bool:
        """Probe the warm pool; a failing pool is recycled. True = healthy."""
        return self.pool.healthcheck()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, let in-flight requests finish; keep the pool.

        The first half of :meth:`close`: new requests are rejected with
        reason ``"draining"`` immediately, requests already admitted run
        to completion.  Unlike :meth:`close` the warm pool stays up, so
        a drained service can still be inspected (``stats_dict``) before
        the final :meth:`close` joins the workers — the handshake the
        serve layer's ``drain`` op is built on.  Returns ``True`` when
        the queue emptied within *timeout* seconds.
        """
        return self.queue.drain(timeout=timeout)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: drain the queue, then join the workers.

        New requests are rejected (reason ``"draining"``) immediately;
        requests already admitted run to completion (up to *timeout*
        seconds, ``None`` = forever), after which the warm pool's worker
        processes are joined.  Returns ``True`` when the queue emptied in
        time.  Idempotent.
        """
        drained = self.queue.drain(timeout=timeout)
        self.pool.close(wait=True)
        # Flush in-memory chase runs to the snapshot tier and detach the
        # database (no-op for memory-only stores) — a restarted service
        # pointed at the same path comes back warm.
        self.store.close()
        self._closed = True
        return drained

    def __enter__(self) -> "ContainmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- helpers -------------------------------------------------------------

    def _effective_budget(
        self, request_budget: Optional[ExecutionBudget]
    ) -> Optional[ExecutionBudget]:
        """Service envelope ∧ request budget (elementwise-min inheritance)."""
        if self.budget is None:
            return request_budget
        return self.budget.merged(request_budget)

    def _request_key(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        level_bound: Optional[int],
        schema_t: Optional[tuple[Atom, ...]],
        explain: bool,
        anytime: Optional[bool],
        budget: Optional[ExecutionBudget],
    ) -> tuple:
        """The request's coalescing identity.

        Two requests with equal keys are the same question asked the same
        way — canonical query keys (names and variable spellings don't
        matter), resolved schedule, bound, schema and effective budget.
        """
        return (
            q1.canonical_key(),
            q2.canonical_key(),
            level_bound,
            schema_t,
            explain,
            self.checker.anytime if anytime is None else anytime,
            budget,
        )

    def _recall(self, key: tuple) -> Optional[ContainmentResult]:
        """A previously decided verdict for *key*, or ``None``."""
        with self._inflight_lock:
            result = self._results.get(key)
            if result is None:
                return None
            self._results.move_to_end(key)
        self.stats.result_hits += 1
        self._count("service.result_hits")
        return result

    def _remember(self, key: tuple, result: ContainmentResult) -> None:
        """Cache a decided verdict (UNKNOWN means "ran out of budget this
        time" and is deliberately never cached)."""
        if self._result_capacity <= 0 or result.unknown:
            return
        with self._inflight_lock:
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self._result_capacity:
                self._results.popitem(last=False)

    def _run_check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        level_bound: Optional[int],
        schema: Optional[tuple[Atom, ...]],
        explain: bool,
        anytime: Optional[bool],
        budget: Optional[ExecutionBudget],
        scope: Optional[CancelScope],
    ) -> ContainmentResult:
        with self.queue.admit(op="check"):
            self.stats.checks += 1
            with self.obs.tracer.span(
                "service.check", q1=q1.name, q2=q2.name, coalesced=False
            ):
                return self.checker.check(
                    q1,
                    q2,
                    level_bound=level_bound,
                    schema=schema,
                    explain=explain,
                    anytime=anytime,
                    budget=budget,
                    scope=scope,
                )

    def _count(self, name: str, **labels: str) -> None:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter(name, **labels).inc()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ContainmentService({state}, queue={self.queue!r}, "
            f"pool={self.pool!r})"
        )
