"""repro.service — the long-lived containment service layer.

Three cooperating pieces, one per module:

* :mod:`~repro.service.pool` — :class:`WorkerPool`, the warm process
  pool whose workers persist across batches and are health-checked and
  recycled rather than torn down;
* :mod:`~repro.service.queue` — :class:`AdmissionQueue`, the bounded
  admission gate that rejects (never buffers) overload and drains
  cleanly on shutdown;
* :mod:`~repro.service.engine` — :class:`ContainmentService`, the
  orchestrator that admits, coalesces, budgets and schedules requests
  over the two above.

Most callers should not import from here directly: the stable public
surface is :class:`repro.api.Engine`, which owns one
:class:`ContainmentService` and adds configuration-at-construction and
context-manager lifetime on top.
"""

from __future__ import annotations

from .pool import PoolStats, WorkerPool
from .queue import AdmissionQueue, QueueStats

__all__ = [
    "WorkerPool",
    "PoolStats",
    "AdmissionQueue",
    "QueueStats",
    "ContainmentService",
    "ServiceStats",
]


def __getattr__(name: str):
    # ContainmentService sits *above* repro.containment in the layer
    # order (it drives a ContainmentChecker), while repro.containment
    # imports repro.service.pool; resolving the engine lazily keeps the
    # package importable from both directions.
    if name in ("ContainmentService", "ServiceStats"):
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
