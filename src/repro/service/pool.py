"""Warm worker pools: process workers that persist across batches.

Before the service layer, every ``ContainmentChecker.check_all(parallel=
True)`` built a fresh :class:`concurrent.futures.ProcessPoolExecutor`,
paid worker spawn for each batch, and tore the pool down again.
:class:`WorkerPool` extracts that lifecycle into a reusable object:

* **warm reuse** — the executor is created lazily on the first batch and
  then *kept*; later batches submit to already-running workers, so the
  per-call startup cost drops to zero after warm-up;
* **health-checked recycling** — a pool observed broken (crashed worker
  pipe) or wedged (a worker that ignored its own deadline) is abandoned
  with :meth:`recycle` and a fresh executor replaces it on the next
  submit, so one bad batch never poisons the service;
* **graceful close** — :meth:`close` drains the executor (or abandons it
  when ``wait=False``), after which the pool refuses new submissions.

The module is also the canonical home of the pool tuning constants and
the picklable batch worker that :mod:`repro.containment.bounded` used to
define; the old names remain importable there for compatibility.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..obs import OBS_OFF, Observability

__all__ = [
    "WorkerPool",
    "PoolStats",
    "check_group_worker",
    "check_group_attached",
    "POOL_MAX_RETRIES",
    "POOL_RETRY_BACKOFF",
    "POOL_TIMEOUT_GRACE",
    "POOL_HEALTHCHECK_TIMEOUT",
]

#: Per-group worker resubmissions in a parallel batch before the group
#: falls back to in-parent sequential execution.
POOL_MAX_RETRIES = 1

#: Backoff before a pool retry, in seconds (scaled by the attempt count).
POOL_RETRY_BACKOFF = 0.05

#: Grace added to a worker's wall-clock allowance before the parent calls
#: the worker wedged: process spawn and result pickling ride on top of
#: the pairs' own deadline-bounded work.
POOL_TIMEOUT_GRACE = 5.0

#: How long :meth:`WorkerPool.healthcheck` waits for the ping round-trip
#: before declaring the pool unhealthy and recycling it.
POOL_HEALTHCHECK_TIMEOUT = 10.0


def check_group_worker(payload: tuple) -> list:
    """Decide one chase group in a worker process.

    Module-level (picklable) entry point of the parallel batch pipeline.
    The worker owns a private checker/store — chase work is shared within
    the group it processes, and the parent's store is untouched.

    Deadline enforcement is **worker-side**: the shipped
    :class:`~repro.governance.ExecutionBudget` (if any) governs every
    check run here, so a budget-stopped pair comes back as an UNKNOWN
    result instead of wedging the pool; the parent's per-future timeout
    is only the second line of defence.  A shipped fault plan rebuilds a
    private :class:`~repro.governance.FaultInjector` in this process.
    """
    # Imported lazily: this module sits below repro.containment in the
    # layer order, and the worker process resolves the import on first
    # task execution anyway.
    from ..containment.bounded import ContainmentChecker

    dependencies, reorder_join, max_steps, anytime, budget, fault_plan, kernel, items = (
        payload
    )
    checker = ContainmentChecker(
        dependencies,
        reorder_join=reorder_join,
        max_steps=max_steps,
        anytime=anytime,
        budget=budget,
        faults=fault_plan,
        kernel=kernel,
    )
    return [
        checker.check(q1, q2, level_bound=bound) for q1, q2, bound in items
    ]


#: Per-process cache of attached checkers, keyed by the attach descriptor
#: head.  A pool worker builds its checker (and opens the snapshot
#: database) once per pool lifetime, then serves every later group from
#: the same warm store — this retained chase state, plus never pickling a
#: ChaseRun across the pipe, is what makes parallel ``check_all`` pay.
_ATTACHED: dict = {}


def check_group_attached(payload: tuple) -> list:
    """Decide one chase group by attaching to a shared snapshot database.

    The zero-pickle sibling of :func:`check_group_worker`: instead of a
    private throwaway checker per task, the payload carries the *path* of
    the parent's snapshot database (:mod:`repro.store`) and the worker
    attaches **read-only** — hydrating exactly the keys and level prefixes
    its groups need, never receiving pickled chase state.  The attached
    checker is cached in ``_ATTACHED`` per process, so repeated batches
    reuse both the SQLite connection and every chase hydrated or computed
    so far (a warm in-memory LRU above the shared disk tier).

    Budgets govern worker-side exactly as in :func:`check_group_worker`.
    Fault injection is intentionally *not* supported on this path — fault
    plans ship through the legacy pickled-payload worker, keeping the
    attached cache deterministic.
    """
    from ..containment.bounded import ContainmentChecker
    from ..containment.store import ChaseStore

    db_path, dependencies, reorder_join, max_steps, anytime, budget, kernel, items = (
        payload
    )
    cache_key = (db_path, tuple(dependencies), reorder_join, max_steps, kernel)
    checker = _ATTACHED.get(cache_key)
    if checker is None:
        store = ChaseStore(
            dependencies,
            reorder_join=reorder_join,
            max_steps=max_steps,
            persist=db_path,
            read_only=True,
        )
        checker = ContainmentChecker(
            dependencies,
            reorder_join=reorder_join,
            max_steps=max_steps,
            store=store,
            anytime=anytime,
            kernel=kernel,
        )
        _ATTACHED[cache_key] = checker
    return [
        checker.check(q1, q2, level_bound=bound, anytime=anytime, budget=budget)
        for q1, q2, bound in items
    ]


def _pool_ping() -> int:
    """Health-check probe: prove a worker is alive by returning its pid."""
    return os.getpid()


@dataclass
class PoolStats:
    """Lifecycle counters of one :class:`WorkerPool`."""

    #: Executors created over the pool's lifetime (1 after warm-up; each
    #: :meth:`WorkerPool.recycle` adds one more on the next submit).
    pools_started: int = 0
    #: Executors abandoned by :meth:`WorkerPool.recycle`.
    recycles: int = 0
    #: Tasks handed to :meth:`WorkerPool.submit`.
    tasks_submitted: int = 0
    #: Health-check probes run (successful or not).
    healthchecks: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, JSON-friendly)."""
        return {
            "pools_started": self.pools_started,
            "recycles": self.recycles,
            "tasks_submitted": self.tasks_submitted,
            "healthchecks": self.healthchecks,
        }


class WorkerPool:
    """A warm, recyclable process pool shared across batches.

    Thread-safe: any number of service threads may submit concurrently;
    executor creation, recycling and shutdown are serialised by one lock.

    Parameters
    ----------
    max_workers:
        Forwarded to :class:`~concurrent.futures.ProcessPoolExecutor`;
        ``None`` lets the executor pick (CPU count).
    obs:
        Observability sink — pool starts, recycles and submissions are
        mirrored as ``service.pool_*`` metrics.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        obs: Optional[Observability] = None,
    ):
        self.max_workers = max_workers
        self.obs = obs if obs is not None else OBS_OFF
        self.stats = PoolStats()
        self._lock = threading.RLock()
        self._executor = None
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def warm(self) -> bool:
        """Whether a live executor (with already-spawned workers) exists."""
        with self._lock:
            return self._executor is not None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def acquire(self):
        """The live executor, creating one if needed — ``None`` on failure.

        Failure to create a process pool (restricted platforms, resource
        exhaustion) is reported as ``None`` rather than raised, mirroring
        the batch pipeline's graceful sequential fallback.
        """
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers
                    )
                except (
                    ImportError,
                    NotImplementedError,
                    OSError,
                    ValueError,
                    PermissionError,
                ):
                    return None
                self.stats.pools_started += 1
                self._count("service.pool_starts")
            return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any):
        """Submit a task to the warm pool (creating it on first use).

        Raises ``RuntimeError`` when the pool is closed or cannot be
        created — callers that want the graceful path use
        :meth:`acquire` and submit to the executor themselves.
        """
        executor = self.acquire()
        if executor is None:
            raise RuntimeError(
                "worker pool is closed" if self._closed
                else "worker pool could not be created"
            )
        self.stats.tasks_submitted += 1
        return executor.submit(fn, *args)

    def recycle(self, reason: str = "unhealthy") -> None:
        """Abandon the current executor; the next submit builds a fresh one.

        The old executor is shut down without waiting (``cancel_futures=
        True``) — a wedged worker would make a blocking join hang forever,
        so the interpreter reaps the processes instead.  Safe to call
        when no executor exists (no-op).
        """
        with self._lock:
            executor, self._executor = self._executor, None
            if executor is None:
                return
            self.stats.recycles += 1
            self._count("service.pool_recycles", reason=reason)
        executor.shutdown(wait=False, cancel_futures=True)

    def healthcheck(self, timeout: float = POOL_HEALTHCHECK_TIMEOUT) -> bool:
        """Probe the pool with a round-trip ping; recycle it on failure.

        Returns ``True`` when a worker answered within *timeout* seconds.
        A pool that cannot be created at all reports ``False`` without
        counting a recycle (there is nothing to recycle).
        """
        self.stats.healthchecks += 1
        executor = self.acquire()
        if executor is None:
            return False
        try:
            pid = executor.submit(_pool_ping).result(timeout=timeout)
            return isinstance(pid, int)
        except Exception:
            self.recycle(reason="healthcheck-failed")
            return False

    def close(self, wait: bool = True) -> None:
        """Shut the pool down; subsequent submits are refused.

        ``wait=True`` (the default) joins the workers — the graceful
        drain; ``wait=False`` abandons them (the wedged-shutdown path).
        Idempotent.
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _count(self, name: str, **labels: str) -> None:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter(name, **labels).inc()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self.warm else "cold")
        return (
            f"WorkerPool({state}, max_workers={self.max_workers}, "
            f"starts={self.stats.pools_started}, recycles={self.stats.recycles})"
        )
