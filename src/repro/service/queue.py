"""Admission control: bounded request queue with explicit rejection.

A production containment service must not melt under a burst — unbounded
queues turn overload into latency collapse.  :class:`AdmissionQueue`
implements the service layer's admission discipline:

* at most ``max_active`` requests execute at once (the concurrency
  gate); excess admitted requests wait their turn;
* at most ``max_pending`` requests may be *waiting*; a request arriving
  beyond that is rejected immediately with
  :class:`~repro.core.errors.AdmissionRejected` — explicit back-pressure
  instead of silent buffering;
* :meth:`close` flips the queue into **drain** mode: new arrivals (and
  parked waiters) are rejected, while already-running requests finish;
  :meth:`drain` blocks until the queue is empty, giving
  ``Engine.close()`` its clean-shutdown guarantee.

Queue depth and active count are mirrored to ``service.queue_depth`` /
``service.active`` gauges and rejection reasons to the
``service.rejections`` counter when an observability sink is attached.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.errors import AdmissionRejected
from ..obs import OBS_OFF, Observability

__all__ = ["AdmissionQueue", "QueueStats"]


@dataclass
class QueueStats:
    """Admission counters of one :class:`AdmissionQueue`."""

    admitted: int = 0
    rejected: int = 0
    #: High-water mark of simultaneously waiting requests.
    peak_pending: int = 0
    #: High-water mark of simultaneously executing requests.
    peak_active: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, JSON-friendly)."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_pending": self.peak_pending,
            "peak_active": self.peak_active,
        }


class AdmissionQueue:
    """Bounded concurrency gate with reject-over-buffer semantics.

    Parameters
    ----------
    max_active:
        Requests allowed to execute simultaneously.
    max_pending:
        Requests allowed to *wait* for an execution slot; an arrival
        finding the waiting room full is rejected, never parked.
    obs:
        Observability sink for the queue-depth/active gauges and the
        rejection counter.
    """

    def __init__(
        self,
        *,
        max_active: int = 8,
        max_pending: int = 64,
        obs: Optional[Observability] = None,
    ):
        if max_active < 1:
            raise ValueError(f"max_active must be positive, got {max_active}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.max_active = max_active
        self.max_pending = max_pending
        self.obs = obs if obs is not None else OBS_OFF
        self.stats = QueueStats()
        self._cond = threading.Condition()
        self._active = 0
        self._pending = 0
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def active(self) -> int:
        """Requests currently executing."""
        return self._active

    @property
    def depth(self) -> int:
        """Requests currently waiting for a slot (the queue depth)."""
        return self._pending

    @property
    def closed(self) -> bool:
        return self._closed

    # -- admission -----------------------------------------------------------

    @contextmanager
    def admit(self, op: str = "request") -> Iterator[None]:
        """Hold one execution slot for the duration of the ``with`` body.

        Raises :class:`~repro.core.errors.AdmissionRejected` (reason
        ``"draining"`` or ``"queue-full"``) instead of blocking when the
        queue is closed or the waiting room is full; otherwise blocks
        until a concurrency slot frees up.  *op* labels the rejection
        metric.
        """
        with self._cond:
            if self._closed:
                self._reject(op, "draining")
            if self._active >= self.max_active:
                if self._pending >= self.max_pending:
                    self._reject(op, "queue-full")
                self._pending += 1
                self.stats.peak_pending = max(self.stats.peak_pending, self._pending)
                self._gauge("service.queue_depth", self._pending)
                try:
                    while self._active >= self.max_active and not self._closed:
                        self._cond.wait()
                finally:
                    self._pending -= 1
                    self._gauge("service.queue_depth", self._pending)
                if self._closed:
                    self._reject(op, "draining")
            self._active += 1
            self.stats.admitted += 1
            self.stats.peak_active = max(self.stats.peak_active, self._active)
            self._gauge("service.active", self._active)
        try:
            yield
        finally:
            with self._cond:
                self._active -= 1
                self._gauge("service.active", self._active)
                self._cond.notify_all()

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Stop admitting: reject new arrivals and wake parked waiters.

        Requests already executing are unaffected — pair with
        :meth:`drain` to wait for them.  Idempotent.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Close, then wait until no request is executing or waiting.

        Returns ``True`` when the queue emptied within *timeout* seconds
        (``None`` waits forever) — the graceful-shutdown handshake of
        ``Engine.close()``.
        """
        self.close()
        with self._cond:
            return self._cond.wait_for(
                lambda: self._active == 0 and self._pending == 0, timeout=timeout
            )

    # -- helpers -------------------------------------------------------------

    def _reject(self, op: str, reason: str) -> None:
        self.stats.rejected += 1
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter("service.rejections", op=op, reason=reason).inc()
        raise AdmissionRejected(
            f"{op} rejected: {reason} "
            f"(active={self._active}/{self.max_active}, "
            f"pending={self._pending}/{self.max_pending})",
            reason=reason,
        )

    def _gauge(self, name: str, value: int) -> None:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.gauge(name).set(value)

    def __repr__(self) -> str:
        state = "draining" if self._closed else "open"
        return (
            f"AdmissionQueue({state}, active={self._active}/{self.max_active}, "
            f"pending={self._pending}/{self.max_pending})"
        )
