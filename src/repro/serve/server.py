"""Sharded containment serving: one handler, stdio and TCP transports.

:class:`ContainmentServer` owns **N engine shards** — independent
:class:`repro.api.Engine` instances — and routes every query-keyed op to
the shard owning the query's canonical key
(:class:`~repro.serve.sharding.ShardRouter`), so each shard's
:class:`~repro.containment.store.ChaseStore` and decided-result LRU stay
hot for exactly its slice of the key space.  Admission is layered::

    line in
      │
      ▼
    1. DECODE     newline-delimited JSON (protocol.decode_line);
      │           malformed lines answer {"ok": false, reason:
      │           "bad-request"} and the connection survives.
      ▼
    2. TENANT     resolve the tenant (per line, sticky per connection),
      │           charge its token bucket — an empty bucket answers
      │           reason "quota-exhausted" *immediately*.
      ▼
    3. OVERLOAD   (TCP) a server-wide in-flight cap derived from the
      │           shards' admission limits; beyond it the line answers
      │           reason "queue-full" without touching a worker thread.
      ▼
    4. ROUTE      consistent hash of q1.canonical_key() picks the shard;
      │           check_all splits its pairs shard-by-shard.
      ▼
    5. EXECUTE    the shard Engine's service pipeline (admit → coalesce
                  → govern → decide); its own AdmissionRejected reasons
                  ("queue-full", "draining") surface as structured
                  errors on the line that caused them.

``drain`` flips the server into rejection mode (reason ``"draining"``),
lets every in-flight request finish, then answers ``{"drained": true}``
— after which the transport shuts down cleanly.  Overload and shutdown
are therefore always *answers*, never dropped connections.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, TextIO

from ..api import Engine
from ..core.errors import AdmissionRejected, ReproError
from ..governance import ExecutionBudget
from ..obs import OBS_OFF, Observability
from ..store import StoreConfig, resolve_store_config
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    REASON_BAD_REQUEST,
    REASON_INTERNAL,
    REASON_UNKNOWN_OP,
    UnknownOperation,
    budget_from_request,
    chase_payload,
    check_payload,
    decode_line,
    error_response,
    parse_rule,
)
from .sharding import ShardRouter
from .tenancy import TenantRegistry

__all__ = ["ContainmentServer", "ServerStats", "ConnectionState", "DEFAULT_TENANT"]

#: Tenant charged when a connection never names one.
DEFAULT_TENANT = "default"

#: Ops that do real engine work and are therefore metered per tenant.
_WORK_OPS = frozenset({"check", "explain", "check_all", "chase"})

#: Default level bound of the ``chase`` op when the request names none.
_CHASE_DEFAULT_BOUND = 12


@dataclass
class ServerStats:
    """Front-door counters of one :class:`ContainmentServer`."""

    #: TCP connections accepted over the server's lifetime.
    connections: int = 0
    #: Request lines decoded (including ones later rejected).
    requests: int = 0
    #: Lines answered with a structured rejection, by reason.
    rejections_by_reason: dict = field(default_factory=dict)

    @property
    def rejections(self) -> int:
        """Total rejected lines across every reason."""
        return sum(self.rejections_by_reason.values())

    def as_dict(self) -> dict:
        """JSON-friendly snapshot for the ``stats`` op."""
        return {
            "connections": self.connections,
            "requests": self.requests,
            "rejections": self.rejections,
            "rejections_by_reason": dict(self.rejections_by_reason),
        }


@dataclass
class ConnectionState:
    """Per-connection mutable state: the sticky tenant id."""

    tenant: Optional[str] = None


class ContainmentServer:
    """N engine shards behind one newline-delimited-JSON front door.

    Parameters
    ----------
    shards:
        Engine shard count (>= 1).  Requests route by consistent hash of
        the query's canonical key; ``shards=1`` reproduces the old
        single-engine ``flq serve`` semantics exactly.
    tenants:
        The :class:`~repro.serve.tenancy.TenantRegistry` holding quota
        policies; ``None`` serves everything unmetered under one
        ``"default"`` tenant.
    budget:
        Service-wide :class:`~repro.governance.ExecutionBudget` envelope
        applied inside every shard; tenant and per-request budgets merge
        into it elementwise-min.
    store_config:
        One :class:`~repro.store.StoreConfig` shared by every shard.  A
        config with a ``path`` points all shards at **one** snapshot
        database: each shard hydrates only the keys it is routed (their
        in-memory LRUs stay disjoint), and a killed, restarted or
        *resharded* fleet reattaches to the same file and answers repeat
        requests from the persisted store without re-chasing.
    max_active, max_pending, max_workers, kernel, obs:
        Per-shard :class:`~repro.api.Engine` configuration (each shard
        gets its own store and admission queue of this size).
    store_capacity, result_cache:
        **Deprecated** — pre-``StoreConfig`` forms of the two cache
        sizes; still honoured with a ``DeprecationWarning``.
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        tenants: Optional[TenantRegistry] = None,
        budget: Optional[ExecutionBudget] = None,
        max_active: int = 8,
        max_pending: int = 64,
        max_workers: Optional[int] = None,
        store_config: Optional[StoreConfig] = None,
        store_capacity: Optional[int] = None,
        result_cache: Optional[int] = None,
        kernel: str = "auto",
        obs: Optional[Observability] = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.obs = obs if obs is not None else OBS_OFF
        self.router = ShardRouter(shards)
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.store_config = resolve_store_config(
            store_config,
            store_capacity=store_capacity,
            result_cache=result_cache,
            owner="ContainmentServer",
        )
        self.engines = [
            Engine(
                budget=budget,
                max_active=max_active,
                max_pending=max_pending,
                max_workers=max_workers,
                store_config=self.store_config,
                kernel=kernel,
                obs=obs,
            )
            for _ in range(shards)
        ]
        self.stats = ServerStats()
        #: Server-wide in-flight cap for the TCP transport: every shard
        #: can have its full admission queue busy, plus one slot of slack
        #: so rejection comes from the front door, not thread starvation.
        self.inflight_cap = shards * (max_active + max_pending)
        self._draining = False
        self._drained = threading.Event()
        self._lock = threading.Lock()
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of engine shards."""
        return len(self.engines)

    @property
    def draining(self) -> bool:
        """True once a ``drain`` began; work ops are rejected from then on."""
        return self._draining

    # -- the synchronous request path ----------------------------------------

    def handle_line(self, line: str, conn: ConnectionState) -> Optional[dict]:
        """Serve one raw request line; returns the response object.

        Blank lines return ``None`` (no response is written).  Every
        other outcome — including malformed JSON, unknown ops, quota and
        overload rejections, and internal errors — returns a response
        dict, so a connected client always hears back.
        """
        line = line.strip()
        if not line:
            return None
        request_id = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            self._count_request()
            response = self.handle_request(request, conn)
        except Exception as exc:  # noqa: BLE001 - per-line error reporting
            response = self._response_for_exception(exc)
        if request_id is not None:
            response["id"] = request_id
        return response

    def handle_request(self, request: dict, conn: ConnectionState) -> dict:
        """Serve one decoded request object (admission + execution)."""
        op, tenant = self.admit(request, conn)
        return self.execute(request, op, tenant)

    def admit(self, request: dict, conn: ConnectionState) -> tuple[str, str]:
        """Stations 2–3 of the pipeline: op check, drain gate, quota.

        Cheap by construction (a dict lookup, a flag, a token-bucket
        subtraction) so the TCP transport can run it on the event loop —
        an over-quota or draining-time line is answered without ever
        occupying a worker thread.  Returns ``(op, tenant)``; raises
        :class:`~repro.core.errors.AdmissionRejected` or ``ReproError``.
        """
        op = request.get("op", "check")
        if op not in OPS:
            raise UnknownOperation(
                f"unknown op {op!r} (expected one of {', '.join(OPS)})"
            )
        tenant = request.get("tenant")
        if tenant is not None:
            tenant = str(tenant)
            conn.tenant = tenant
        else:
            tenant = conn.tenant or DEFAULT_TENANT
        if op in _WORK_OPS:
            if self._draining:
                raise AdmissionRejected(
                    f"{op} rejected: server is draining", reason="draining"
                )
            tokens = 1
            if op == "check_all":
                pairs = request.get("pairs")
                tokens = max(1, len(pairs)) if isinstance(pairs, list) else 1
            self.tenants.admit(tenant, tokens=tokens)
        return op, tenant

    def execute(self, request: dict, op: str, tenant: str) -> dict:
        """Stations 4–5: route to a shard and run the op's engine work."""
        if op == "ping":
            return {"ok": True, "op": "ping", "protocol": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats_dict()}
        if op == "shard_stats":
            return {"ok": True, "op": "shard_stats", "shards": self.shard_stats()}
        if op == "drain":
            return self._execute_drain()
        budget = self._effective_budget(request, tenant)
        if op in ("check", "explain"):
            return self._execute_check(request, op, tenant, budget)
        if op == "check_all":
            return self._execute_check_all(request, tenant, budget)
        assert op == "chase"
        return self._execute_chase(request, tenant, budget)

    # -- op implementations --------------------------------------------------

    def _effective_budget(
        self, request: dict, tenant: str
    ) -> Optional[ExecutionBudget]:
        """Tenant envelope ∧ request budget (the shard engine then merges
        its own service envelope on top — elementwise-min all the way)."""
        request_budget = budget_from_request(request)
        tenant_budget = self.tenants.budget_for(tenant)
        if tenant_budget is None:
            return request_budget
        return tenant_budget.merged(request_budget)

    def _execute_check(
        self,
        request: dict,
        op: str,
        tenant: str,
        budget: Optional[ExecutionBudget],
    ) -> dict:
        if "q1" not in request or "q2" not in request:
            raise ReproError(f"{op} request needs 'q1' and 'q2' rule strings")
        q1 = parse_rule(str(request["q1"]), "q1")
        q2 = parse_rule(str(request["q2"]), "q2")
        explain = op == "explain" or bool(request.get("explain", False))
        shard = self.router.route(q1)
        result = self.engines[shard].check(
            q1,
            q2,
            level_bound=request.get("level_bound"),
            anytime=request.get("anytime"),
            explain=explain,
            budget=budget,
        )
        response = {"ok": True, "op": op, "shard": shard, "tenant": tenant}
        response.update(
            check_payload(result, q1, q2, include_provenance=explain)
        )
        return response

    def _execute_check_all(
        self, request: dict, tenant: str, budget: Optional[ExecutionBudget]
    ) -> dict:
        pairs_raw = request.get("pairs")
        if not isinstance(pairs_raw, list) or not pairs_raw:
            raise ReproError(
                "check_all request needs a non-empty 'pairs' list of "
                "{'q1': ..., 'q2': ...} objects"
            )
        pairs = []
        for i, item in enumerate(pairs_raw):
            if not isinstance(item, dict) or "q1" not in item or "q2" not in item:
                raise ReproError(f"pairs[{i}] needs 'q1' and 'q2' rule strings")
            pairs.append(
                (
                    parse_rule(str(item["q1"]), f"q1_{i}"),
                    parse_rule(str(item["q2"]), f"q2_{i}"),
                )
            )
        level_bound = request.get("level_bound")
        anytime = request.get("anytime")
        # Split the batch shard-by-shard (q1's key decides, as for check)
        # so every sub-batch lands on the store that already knows its
        # chase groups; results reassemble in request order.
        by_shard: dict[int, list[int]] = {}
        shard_of: list[int] = []
        for i, (q1, _) in enumerate(pairs):
            shard = self.router.route(q1)
            shard_of.append(shard)
            by_shard.setdefault(shard, []).append(i)
        results: list[Optional[dict]] = [None] * len(pairs)
        for shard, indexes in by_shard.items():
            decided = self.engines[shard].check_all(
                [pairs[i] for i in indexes],
                level_bound=level_bound,
                anytime=anytime,
                budget=budget,
            )
            for i, result in zip(indexes, decided):
                q1, q2 = pairs[i]
                payload = check_payload(result, q1, q2)
                payload["shard"] = shard
                results[i] = payload
        return {
            "ok": True,
            "op": "check_all",
            "tenant": tenant,
            "pairs": len(pairs),
            "results": results,
        }

    def _execute_chase(
        self, request: dict, tenant: str, budget: Optional[ExecutionBudget]
    ) -> dict:
        if "query" not in request:
            raise ReproError("chase request needs a 'query' rule string")
        query = parse_rule(str(request["query"]), "query")
        level_bound = int(request.get("level_bound", _CHASE_DEFAULT_BOUND))
        shard = self.router.route(query)
        # The chase op rides the shard's store directly; budgets govern
        # check/explain/check_all, while a chase prefix request is always
        # bounded by its level_bound.
        chase_result = self.engines[shard].chase(query, level_bound)
        response = {"ok": True, "op": "chase", "shard": shard, "tenant": tenant}
        response.update(chase_payload(chase_result, query))
        return response

    def _execute_drain(self) -> dict:
        """Graceful drain: reject new admits, finish in-flight, report.

        Idempotent: the first ``drain`` does the work, a concurrent
        second one waits for it, and both answer ``{"drained": true}``
        only once every in-flight request has completed.
        """
        with self._lock:
            already = self._draining
            self._draining = True
        if not already:
            for engine in self.engines:
                engine.drain()
            self._drained.set()
        else:
            self._drained.wait()
        return {
            "ok": True,
            "op": "drain",
            "drained": True,
            "shards": self.shards,
        }

    # -- introspection -------------------------------------------------------

    def stats_dict(self) -> dict:
        """Aggregated counters: every shard summed, plus the front door.

        The per-layer sections (``service``/``queue``/``pool``/``store``/
        ``kernel``) keep the exact keys a single-engine ``stats`` op
        reported, with values summed across shards; ``serve`` and
        ``tenants`` are new in protocol v2.
        """
        aggregated: dict[str, dict] = {}
        for engine in self.engines:
            for section, counters in engine.stats().items():
                bucket = aggregated.setdefault(section, {})
                for key, value in counters.items():
                    if isinstance(value, (int, float)):
                        bucket[key] = bucket.get(key, 0) + value
        aggregated["serve"] = dict(
            self.stats.as_dict(),
            shards=self.shards,
            draining=self._draining,
            routed=list(self.router.routed),
        )
        aggregated["tenants"] = self.tenants.stats()
        return aggregated

    def shard_stats(self) -> list[dict]:
        """Per-shard detail: routing count, hit gauges, full layer stats."""
        rows = []
        for shard, engine in enumerate(self.engines):
            stats = engine.stats()
            store = stats.get("store", {})
            lookups = (
                store.get("hits", 0)
                + store.get("misses", 0)
                + store.get("extensions", 0)
            )
            reuses = store.get("hits", 0) + store.get("extensions", 0)
            service = stats.get("service", {})
            requests = (
                service.get("checks", 0)
                + service.get("result_hits", 0)
                + service.get("coalesced", 0)
            )
            warm_hits = service.get("result_hits", 0) + service.get(
                "coalesced", 0
            )
            rows.append(
                {
                    "shard": shard,
                    "routed": self.router.routed[shard],
                    "store_hit_rate": (reuses / lookups) if lookups else None,
                    "result_hit_rate": (warm_hits / requests)
                    if requests
                    else None,
                    "stats": stats,
                }
            )
        return rows

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: Optional[float] = None) -> None:
        """Close every shard engine (drains first if not already drained)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        for engine in self.engines:
            engine.close(timeout=timeout)

    def __enter__(self) -> "ContainmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- stdio transport -----------------------------------------------------

    def serve_stdio(
        self, stdin: Optional[TextIO] = None, stdout: Optional[TextIO] = None
    ) -> int:
        """The synchronous newline-JSON loop (the classic ``flq serve``).

        One request per *stdin* line, one response per *stdout* line;
        EOF — or a successful ``drain`` op — ends the session with
        status 0.  A single implicit connection carries the sticky
        tenant id.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        conn = ConnectionState()
        for line in stdin:
            response = self.handle_line(line, conn)
            if response is None:
                continue
            stdout.write(json.dumps(response) + "\n")
            stdout.flush()
            if response.get("op") == "drain" and response.get("ok"):
                break
        return 0

    # -- TCP transport -------------------------------------------------------

    async def serve_tcp(self, host: str, port: int, *, ready=None) -> None:
        """Serve newline-JSON over TCP until a ``drain`` op (or cancel).

        Listens on ``host:port`` (port ``0`` = ephemeral), then calls
        *ready* with the bound ``(host, port)`` — the CLI prints the
        ready line from it so clients can discover the port.  Each
        connection may pipeline requests; lines execute concurrently on
        worker threads and responses interleave, correlated by ``id``.
        A successful ``drain`` finishes in-flight lines, closes the
        listener and every connection, and returns.
        """
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        inflight = 0
        writers: set[asyncio.StreamWriter] = set()
        conn_tasks: set[asyncio.Task] = set()
        # A dedicated executor sized to the admission cap: every line the
        # front door admits gets a real thread, so blocking in a shard's
        # AdmissionQueue never starves an unrelated connection.
        executor = ThreadPoolExecutor(
            max_workers=max(4, self.inflight_cap),
            thread_name_prefix="flq-serve",
        )

        def _work(request: dict, op: str, tenant: str) -> dict:
            try:
                return self.execute(request, op, tenant)
            except Exception as exc:  # noqa: BLE001 - mapped per line
                return self._response_for_exception(exc)

        async def serve_line(line: str, conn: ConnectionState) -> Optional[dict]:
            nonlocal inflight
            request_id = None
            try:
                request = decode_line(line)
                request_id = request.get("id")
                self._count_request()
                op, tenant = self.admit(request, conn)
                if op in _WORK_OPS:
                    # Front-door overload gate: reject beyond the cap
                    # instead of queueing lines into the thread pool.
                    if inflight >= self.inflight_cap:
                        raise AdmissionRejected(
                            f"{op} rejected: server over capacity "
                            f"(inflight={inflight}/{self.inflight_cap})",
                            reason="queue-full",
                        )
                    inflight += 1
                    self._gauge("serve.inflight", inflight)
                    try:
                        response = await loop.run_in_executor(
                            executor, _work, request, op, tenant
                        )
                    finally:
                        inflight -= 1
                        self._gauge("serve.inflight", inflight)
                elif op == "drain":
                    # Drain blocks until in-flight work finishes; run it
                    # off-loop (and outside the cap) so rejections keep
                    # flowing to other clients while it waits.
                    response = await loop.run_in_executor(
                        None, _work, request, op, tenant
                    )
                else:
                    response = _work(request, op, tenant)
            except Exception as exc:  # noqa: BLE001 - mapped per line
                response = self._response_for_exception(exc)
            if request_id is not None:
                response["id"] = request_id
            return response

        async def handle_connection(reader, writer):
            self.stats.connections += 1
            self._counter("serve.connections")
            writers.add(writer)
            conn = ConnectionState()
            write_lock = asyncio.Lock()
            line_tasks: set[asyncio.Task] = set()

            async def pump(raw: bytes) -> None:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    return
                response = await serve_line(line, conn)
                if response is None:
                    return
                data = (json.dumps(response) + "\n").encode("utf-8")
                async with write_lock:
                    if writer.is_closing():
                        return
                    writer.write(data)
                    try:
                        await writer.drain()
                    except ConnectionError:
                        pass
                if response.get("op") == "drain" and response.get("ok"):
                    stop.set()

            stop_waiter = asyncio.ensure_future(stop.wait())
            try:
                while not stop.is_set():
                    read = asyncio.ensure_future(reader.readline())
                    await asyncio.wait(
                        {read, stop_waiter},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if not read.done():
                        # Stopped mid-read: no more requests from here.
                        read.cancel()
                        await asyncio.gather(read, return_exceptions=True)
                        break
                    raw = read.result()
                    if not raw:
                        break
                    task = asyncio.ensure_future(pump(raw))
                    line_tasks.add(task)
                    task.add_done_callback(line_tasks.discard)
            except ConnectionError:
                pass
            finally:
                stop_waiter.cancel()
                # Let every pump flush its response (in-flight work keeps
                # its answer through a drain) before the writer closes.
                if line_tasks:
                    await asyncio.gather(*line_tasks, return_exceptions=True)
                writers.discard(writer)
                writer.close()

        def on_connection(reader, writer):
            task = asyncio.ensure_future(handle_connection(reader, writer))
            conn_tasks.add(task)
            task.add_done_callback(conn_tasks.discard)

        server = await asyncio.start_server(on_connection, host, port)
        bound = server.sockets[0].getsockname()
        if ready is not None:
            ready(bound[0], bound[1])
        try:
            await stop.wait()
        finally:
            # Stop (set on drain, or here on cancellation) tells every
            # connection handler to flush its in-flight responses and
            # close itself; only then do we tear the rest down.
            stop.set()
            server.close()
            await server.wait_closed()
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            for writer in list(writers):
                writer.close()
            executor.shutdown(wait=True)

    # -- helpers -------------------------------------------------------------

    def _response_for_exception(self, exc: Exception) -> dict:
        """Map an exception to the structured error envelope (and count)."""
        if isinstance(exc, AdmissionRejected):
            return self._rejection(str(exc), exc.reason)
        if isinstance(exc, UnknownOperation):
            return error_response(str(exc), reason=REASON_UNKNOWN_OP)
        if isinstance(exc, ReproError):
            return error_response(str(exc), reason=REASON_BAD_REQUEST)
        if isinstance(exc, (ValueError, TypeError, KeyError)):
            return error_response(str(exc), reason=REASON_BAD_REQUEST)
        return error_response(
            f"{type(exc).__name__}: {exc}", reason=REASON_INTERNAL
        )

    def _rejection(self, message: str, reason: str) -> dict:
        with self._lock:
            by_reason = self.stats.rejections_by_reason
            by_reason[reason] = by_reason.get(reason, 0) + 1
        self._counter("serve.rejections", reason=reason)
        return error_response(message, reason=reason)

    def _count_request(self) -> None:
        with self._lock:
            self.stats.requests += 1
        self._counter("serve.requests")

    def _counter(self, name: str, **labels: str) -> None:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter(name, **labels).inc()

    def _gauge(self, name: str, value: int) -> None:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.gauge(name).set(value)

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else ("draining" if self._draining else "open")
        )
        return f"ContainmentServer({state}, shards={self.shards})"
