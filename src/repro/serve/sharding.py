"""Consistent-hash shard routing over canonical query keys.

The serve layer runs **N engine shards** — independent
:class:`repro.api.Engine` instances, each with its own
:class:`~repro.containment.store.ChaseStore` and decided-result LRU —
and routes every request whose work is keyed by a query (``check``,
``explain``, ``chase``; ``check_all`` pair-by-pair) to the shard owning
that query's :meth:`~repro.core.query.ConjunctiveQuery.canonical_key`.
Routing by the *canonical* key means rename-apart variants of the same
query land on the same shard and therefore hit the same warm chase
prefix, exactly as they share one entry inside a single store.

Two properties matter and both are tested:

* **Determinism across restarts.**  Python's builtin ``hash`` of
  strings is salted per process (``PYTHONHASHSEED``), so the router
  hashes a stable byte serialisation of the canonical key with
  :func:`hashlib.blake2b` instead.  The same key maps to the same shard
  in every process, forever — a replayed workload re-warms the same
  shards.
* **Minimal movement under resharding.**  Shards are placed on a
  consistent-hash ring with :data:`VNODES` virtual nodes each; going
  from N to N+1 shards moves roughly ``1/(N+1)`` of the key space
  instead of reshuffling everything.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence

from ..core.query import ConjunctiveQuery

__all__ = ["ShardRouter", "stable_key_digest", "VNODES"]

#: Virtual nodes per shard on the consistent-hash ring.  128 keeps the
#: load spread within a few percent of uniform for single-digit shard
#: counts while the ring stays tiny (N x 128 ints).
VNODES = 128


def stable_key_digest(key: object) -> int:
    """A process-independent 64-bit digest of a canonical query key.

    Canonical keys are nested tuples of strings and ints whose ``repr``
    is deterministic, so hashing the repr's UTF-8 bytes with blake2b
    gives a digest that survives restarts and ``PYTHONHASHSEED``
    changes — the property builtin ``hash`` deliberately lacks.
    """
    raw = repr(key).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(raw, digest_size=8).digest(), "big"
    )


class ShardRouter:
    """Deterministic consistent-hash ring mapping queries to shard ids.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).  Shard ids are ``0 .. shards-1``.
    vnodes:
        Virtual nodes per shard; more nodes = smoother balance.
    """

    def __init__(self, shards: int, *, vnodes: int = VNODES):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(vnodes):
                point = stable_key_digest(("shard", shard, replica))
                points.append((point, shard))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owner = [s for _, s in points]
        #: Requests routed per shard since construction (JSON-friendly).
        self.routed = [0] * shards

    def shard_of_digest(self, digest: int) -> int:
        """The shard owning *digest* on the ring (clockwise successor)."""
        if self.shards == 1:
            return 0
        i = bisect.bisect_right(self._ring, digest)
        if i == len(self._ring):
            i = 0
        return self._owner[i]

    def shard_of_key(self, key: object) -> int:
        """The shard owning a canonical key (no routing counter bump)."""
        return self.shard_of_digest(stable_key_digest(key))

    def route(self, query: Optional[ConjunctiveQuery]) -> int:
        """The shard for *query*, counting the routing decision.

        ``None`` (an op with no query affinity, e.g. a bare ``stats``)
        goes to shard 0.
        """
        shard = 0 if query is None else self.shard_of_key(query.canonical_key())
        self.routed[shard] += 1
        return shard

    def spread(self, keys: Sequence[object]) -> list[int]:
        """Keys-per-shard histogram for *keys* (balance diagnostics)."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard_of_key(key)] += 1
        return counts

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self.shards}, vnodes={self.vnodes})"
