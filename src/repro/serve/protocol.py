"""The ``flq serve`` wire protocol: framing, envelopes, error reasons.

One protocol, two transports.  Both the legacy stdio mode and the
asyncio TCP mode (:mod:`repro.serve.server`) speak **newline-delimited
JSON**: one request object per line in, one response object per line
out.  Responses echo the request's ``id`` (when present) so clients may
pipeline; on the TCP transport responses can interleave across
concurrently executing requests and ``id`` is the correlation key.

This module owns everything both transports share — request field
parsing, the response shapes, and the structured error/rejection
vocabulary — so the protocol cannot drift between them.  The normative
human-readable reference (with doc-tested examples) is
``docs/protocol.md``.

Error envelope::

    {"id": ..., "ok": false, "error": "<message>", "reason": "<code>"}

``reason`` is machine-readable: ``bad-request`` (malformed JSON or
fields), ``unknown-op``, ``queue-full`` / ``draining`` (the service
layer's :class:`~repro.core.errors.AdmissionRejected` reasons passed
through), ``quota-exhausted`` (tenant token bucket empty) or
``internal``.  Overload is therefore always an *answer*, never a
dropped connection or a client-side timeout.
"""

from __future__ import annotations

import json
from typing import Optional

from ..containment.result import ContainmentResult
from ..core.errors import ReproError
from ..core.query import ConjunctiveQuery
from ..flogic.encoding import encode_query, encode_rule
from ..flogic.parser import parse_program
from ..governance import ExecutionBudget

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "REASON_BAD_REQUEST",
    "REASON_UNKNOWN_OP",
    "REASON_INTERNAL",
    "UnknownOperation",
    "parse_rule",
    "budget_from_request",
    "error_response",
    "check_payload",
    "chase_payload",
    "decode_line",
]

#: Bumped when a response shape or op changes incompatibly; reported by
#: ``ping`` and in the TCP server's ready line.
PROTOCOL_VERSION = 2

#: Every op both transports understand.
OPS = (
    "ping",
    "check",
    "explain",
    "check_all",
    "chase",
    "stats",
    "shard_stats",
    "drain",
)

#: The request line was not valid JSON / not an object / missing fields.
REASON_BAD_REQUEST = "bad-request"
#: The ``op`` field names no known operation.
REASON_UNKNOWN_OP = "unknown-op"
#: The server failed in an unanticipated way; the connection survives.
REASON_INTERNAL = "internal"


class UnknownOperation(ReproError):
    """The request's ``op`` names no operation this protocol version has.

    Mapped to reason ``"unknown-op"`` so clients can distinguish a typo'd
    op from other malformed-request errors.
    """


def parse_rule(text: str, default_name: str) -> ConjunctiveQuery:
    """One conjunctive query from one F-logic rule/query string."""
    program = parse_program(text)
    rules = list(program.rules())
    if rules:
        return encode_rule(rules[0])
    asks = list(program.queries())
    if asks:
        return encode_query(asks[0], name=default_name)
    raise ReproError(f"no rule or query in {text!r}")


def budget_from_request(request: dict) -> Optional[ExecutionBudget]:
    """The request's budget fields as an :class:`ExecutionBudget`.

    Recognised keys: ``deadline`` (seconds), ``max_facts``,
    ``max_memory_mb``, ``max_steps``; absent keys stay unlimited and a
    request with none of them carries no budget at all (``None``).
    """
    if not any(
        k in request for k in ("deadline", "max_facts", "max_memory_mb", "max_steps")
    ):
        return None
    memory_mb = request.get("max_memory_mb")
    return ExecutionBudget(
        deadline_seconds=request.get("deadline"),
        max_facts=request.get("max_facts"),
        max_memory_bytes=(
            int(memory_mb * 1024 * 1024) if memory_mb is not None else None
        ),
        max_steps=request.get("max_steps"),
    )


def decode_line(line: str) -> dict:
    """One request object from one wire line (raises ``ReproError``)."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ReproError("request must be a JSON object")
    return request


def error_response(
    message: str, *, reason: str = REASON_BAD_REQUEST, request_id=None
) -> dict:
    """The structured error/rejection envelope (see module docstring)."""
    response = {"ok": False, "error": message, "reason": reason}
    if request_id is not None:
        response["id"] = request_id
    return response


def check_payload(
    result: ContainmentResult,
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    include_provenance: bool = False,
) -> dict:
    """The response body shared by ``check``, ``explain`` and each
    ``check_all`` element: verdict, reason, timing, witness fields.
    """
    payload = {
        "q1": q1.name,
        "q2": q2.name,
        "decision": result.decision.name,
        "contained": None if result.unknown else result.contained,
        "reason": result.reason.value,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.witness_level is not None:
        payload["witness_level"] = result.witness_level
    if result.levels_chased is not None:
        payload["levels_chased"] = result.levels_chased
    if include_provenance and result.provenance is not None:
        payload["provenance"] = result.provenance.pretty()
    return payload


def chase_payload(chase_result, query: ConjunctiveQuery) -> dict:
    """The ``chase`` op's response body: status and size of the prefix."""
    return {
        "query": query.name,
        "failed": chase_result.failed,
        "saturated": chase_result.saturated,
        "level_reached": chase_result.level_reached,
        "facts": chase_result.size(),
        "steps": chase_result.steps,
    }
