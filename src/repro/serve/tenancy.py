"""Per-tenant admission: token-bucket quotas and budget envelopes.

Multi-tenant serving needs two things the single-process service layer
does not provide on its own:

* **rate isolation** — one chatty tenant must not starve the others.
  Each tenant gets a :class:`TokenBucket` (``rate`` requests/second
  sustained, ``burst`` above it); a request arriving on an empty bucket
  is rejected *immediately* with the structured reason
  ``"quota-exhausted"`` — never parked, never timed out.  Quota checks
  run in the server's event loop (a subtraction and a clock read), so
  an over-quota tenant costs the service almost nothing.
* **resource isolation** — a tenant can carry its own
  :class:`~repro.governance.ExecutionBudget` envelope.  It merges into
  the service envelope and the per-request budget elementwise-min (the
  same inheritance rule the service layer already applies), so a tenant
  can be capped at, say, a 2-second deadline no matter what its
  requests ask for.

Rejections reuse :class:`~repro.core.errors.AdmissionRejected` (via the
:class:`QuotaExceeded` subclass) so the protocol layer maps queue
overload and quota overload through one code path, distinguished only
by the machine-readable ``reason``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.errors import AdmissionRejected
from ..governance import ExecutionBudget

__all__ = [
    "QuotaExceeded",
    "TokenBucket",
    "TenantPolicy",
    "TenantRegistry",
    "REASON_QUOTA",
]

#: Machine-readable rejection reason for an exhausted tenant quota.
REASON_QUOTA = "quota-exhausted"


class QuotaExceeded(AdmissionRejected):
    """A tenant's token bucket is empty.

    Subclasses :class:`~repro.core.errors.AdmissionRejected` so callers
    that already handle service backpressure handle quota backpressure
    for free; ``reason`` is always ``"quota-exhausted"`` and ``tenant``
    names the offender.
    """

    def __init__(self, message: str, *, tenant: str):
        super().__init__(message, reason=REASON_QUOTA)
        #: The tenant whose bucket was empty.
        self.tenant = tenant


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` is non-blocking by design — admission control must
    answer *now* (admit or reject), not queue behind a full bucket.
    Thread-safe; time is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available right now; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after a refill to *now*)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst})"


@dataclass(frozen=True)
class TenantPolicy:
    """Declarative per-tenant admission policy.

    ``rate``/``burst`` feed the tenant's :class:`TokenBucket`
    (``None`` rate = unmetered).  ``budget`` is the tenant's resource
    envelope, merged elementwise-min into every request the tenant
    sends.
    """

    rate: Optional[float] = None
    burst: float = 16.0
    budget: Optional[ExecutionBudget] = None

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantPolicy":
        """A policy from its JSON spelling (the ``--tenants`` file).

        Recognised keys: ``rate``, ``burst``, and the budget fields
        ``deadline``, ``max_facts``, ``max_memory_mb``, ``max_steps``.
        """
        budget = None
        if any(
            k in raw for k in ("deadline", "max_facts", "max_memory_mb", "max_steps")
        ):
            memory_mb = raw.get("max_memory_mb")
            budget = ExecutionBudget(
                deadline_seconds=raw.get("deadline"),
                max_facts=raw.get("max_facts"),
                max_memory_bytes=(
                    int(memory_mb * 1024 * 1024) if memory_mb is not None else None
                ),
                max_steps=raw.get("max_steps"),
            )
        return cls(
            rate=raw.get("rate"),
            burst=float(raw.get("burst", 16.0)),
            budget=budget,
        )


@dataclass
class TenantState:
    """Mutable per-tenant runtime state: bucket plus counters."""

    policy: TenantPolicy
    bucket: Optional[TokenBucket]
    admitted: int = 0
    rejected: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly snapshot for the ``stats`` op."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rate": self.policy.rate,
            "burst": self.policy.burst,
            "metered": self.bucket is not None,
        }


class TenantRegistry:
    """All tenants the server knows, plus the default policy.

    A request names its tenant per line (or inherits the connection's
    last-named one); unknown tenants are materialised lazily under
    *default_policy*, so anonymous traffic is still metered — one
    shared ``"default"`` tenant.
    """

    def __init__(
        self,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        *,
        default_policy: Optional[TenantPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.default_policy = default_policy or TenantPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        for name, policy in (policies or {}).items():
            self._tenants[name] = self._materialise(policy)

    def _materialise(self, policy: TenantPolicy) -> TenantState:
        bucket = None
        if policy.rate is not None:
            bucket = TokenBucket(policy.rate, policy.burst, clock=self._clock)
        return TenantState(policy=policy, bucket=bucket)

    def state(self, tenant: str) -> TenantState:
        """The (lazily created) runtime state of *tenant*."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = self._materialise(
                    self.default_policy
                )
            return state

    def admit(self, tenant: str, *, tokens: float = 1.0) -> TenantState:
        """Charge *tokens* requests to *tenant*'s bucket or reject.

        ``check_all`` charges one token per pair, so a batch is quota-
        equivalent to its pairs sent individually (a batch larger than
        the tenant's ``burst`` can therefore never be admitted).
        Returns the tenant state on success; raises
        :class:`QuotaExceeded` (reason ``"quota-exhausted"``) the moment
        the bucket is short — the caller turns that into a structured
        protocol error, so an over-quota client always gets an answer.
        """
        state = self.state(tenant)
        if state.bucket is not None and not state.bucket.try_acquire(tokens):
            state.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} exceeded its rate quota "
                f"(rate={state.policy.rate}/s, burst={state.policy.burst})",
                tenant=tenant,
            )
        state.admitted += 1
        return state

    def budget_for(self, tenant: str) -> Optional[ExecutionBudget]:
        """The tenant's budget envelope, or ``None`` when unbounded."""
        return self.state(tenant).policy.budget

    def stats(self) -> dict:
        """Per-tenant admission counters keyed by tenant name."""
        with self._lock:
            return {name: st.as_dict() for name, st in self._tenants.items()}

    def __repr__(self) -> str:
        with self._lock:
            return f"TenantRegistry(tenants={sorted(self._tenants)})"
