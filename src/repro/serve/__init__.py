"""repro.serve — sharded network serving of the containment engine.

The front door that turns the warm :class:`repro.api.Engine` service
into something heavy concurrent traffic can actually hit:

* :class:`~repro.serve.server.ContainmentServer` — N engine shards
  behind one newline-delimited-JSON protocol, served either over
  stdin/stdout (the classic ``flq serve``) or as an asyncio TCP server
  (``flq serve --tcp HOST:PORT --shards N``);
* :class:`~repro.serve.sharding.ShardRouter` — deterministic
  consistent-hash routing on canonical query keys, so each shard's
  chase store and decided-result LRU stay warm for its key range across
  requests *and* restarts;
* :mod:`~repro.serve.tenancy` — per-tenant token-bucket quotas and
  budget envelopes, rejected-not-queued
  (:class:`~repro.serve.tenancy.QuotaExceeded`, reason
  ``"quota-exhausted"``).

The wire protocol is specified (and doc-tested) in ``docs/protocol.md``;
the deployment runbook is ``docs/operations.md``; the traffic-replay
guard lives in ``benchmarks/test_bench_serve.py`` → ``BENCH_serve.json``.
"""

from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    REASON_BAD_REQUEST,
    REASON_INTERNAL,
    REASON_UNKNOWN_OP,
    UnknownOperation,
    budget_from_request,
    decode_line,
    error_response,
)
from .server import (
    DEFAULT_TENANT,
    ConnectionState,
    ContainmentServer,
    ServerStats,
)
from .sharding import VNODES, ShardRouter, stable_key_digest
from .tenancy import (
    REASON_QUOTA,
    QuotaExceeded,
    TenantPolicy,
    TenantRegistry,
    TokenBucket,
)

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "REASON_BAD_REQUEST",
    "REASON_INTERNAL",
    "REASON_QUOTA",
    "REASON_UNKNOWN_OP",
    "VNODES",
    "ConnectionState",
    "ContainmentServer",
    "DEFAULT_TENANT",
    "QuotaExceeded",
    "ServerStats",
    "ShardRouter",
    "TenantPolicy",
    "TenantRegistry",
    "TokenBucket",
    "UnknownOperation",
    "budget_from_request",
    "decode_line",
    "error_response",
    "stable_key_digest",
]
