"""Random F-logic Lite ontologies (ground fact bases).

Generates the database-side workloads: a class DAG, attribute signatures
with mandatory/functional flags, objects with memberships and attribute
values.  Output is a list of ground P_FL atoms, directly loadable into a
:class:`~repro.flogic.kb.KnowledgeBase`, plus an F-logic source rendering
for the parser round-trip tests.

The generator is careful about consistency: functional attributes receive
at most one explicitly stored value per object, so the generated KB never
fails the chase (tests that want an inconsistent KB build one by hand).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.atoms import Atom, data, funct, mandatory, member, sub, type_
from ..core.terms import Constant
from ..flogic.encoding import decode_atom

__all__ = ["OntologyParams", "Ontology", "generate_ontology"]


@dataclass(frozen=True)
class OntologyParams:
    """Size and shape knobs of the random ontology."""

    n_classes: int = 8
    n_attributes: int = 6
    n_objects: int = 12
    subclass_density: float = 0.3
    signatures_per_class: int = 2
    mandatory_probability: float = 0.3
    functional_probability: float = 0.3
    values_per_object: int = 2
    memberships_per_object: int = 1


@dataclass
class Ontology:
    """A generated ontology: atoms plus handy views of its vocabulary."""

    atoms: list[Atom]
    classes: list[Constant]
    attributes: list[Constant]
    objects: list[Constant]
    seed: int

    def to_flogic(self) -> str:
        """F-logic source text (one statement per line)."""
        return "\n".join(f"{decode_atom(atom)}." for atom in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


def generate_ontology(
    seed: int = 0, params: Optional[OntologyParams] = None
) -> Ontology:
    """Build one random, consistent ontology."""
    params = params or OntologyParams()
    rng = random.Random(seed)
    classes = [Constant(f"class{i}") for i in range(1, params.n_classes + 1)]
    attributes = [Constant(f"attr{i}") for i in range(1, params.n_attributes + 1)]
    objects = [Constant(f"obj{i}") for i in range(1, params.n_objects + 1)]
    values = [Constant(f"val{i}") for i in range(1, params.n_objects * 2 + 1)]

    atoms: list[Atom] = []
    seen: set[Atom] = set()

    def emit(atom: Atom) -> None:
        if atom not in seen:
            seen.add(atom)
            atoms.append(atom)

    # Subclass DAG: edges only from lower to higher index, so acyclic.
    for i, child in enumerate(classes):
        for parent in classes[i + 1:]:
            if rng.random() < params.subclass_density:
                emit(sub(child, parent))

    # Signatures.  Functional and mandatory flags are attached to the
    # class; the type target is a random class.
    functional_attrs: set[tuple[Constant, Constant]] = set()
    for cls in classes:
        for _ in range(params.signatures_per_class):
            attr = rng.choice(attributes)
            target = rng.choice(classes)
            emit(type_(cls, attr, target))
            if rng.random() < params.mandatory_probability:
                emit(mandatory(attr, cls))
            if rng.random() < params.functional_probability:
                emit(funct(attr, cls))
                functional_attrs.add((attr, cls))

    # Objects: memberships and attribute values.
    for obj in objects:
        for _ in range(params.memberships_per_object):
            emit(member(obj, rng.choice(classes)))
        used_functional: set[Constant] = set()
        for _ in range(params.values_per_object):
            attr = rng.choice(attributes)
            # Never store two values for an attribute that is functional
            # anywhere — the chase would merge them (fine) or, with two
            # distinct constants, fail (not what a "consistent" generator
            # should produce).
            if any((attr, cls) in functional_attrs for cls in classes):
                if attr in used_functional:
                    continue
                used_functional.add(attr)
            emit(data(obj, attr, rng.choice(values)))

    return Ontology(
        atoms=atoms,
        classes=classes,
        attributes=attributes,
        objects=objects,
        seed=seed,
    )
