"""Random conjunctive meta-queries over P_FL.

The generator produces the workloads for experiments E5–E11: random query
bodies with controllable size, variable sharing, constant density and —
crucially — controllable *mandatory-type cycles*, the single feature that
makes the Sigma_FL chase infinite (Section 4's analysis).

Determinism: every generator takes an explicit seed; two runs with the
same parameters produce identical queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.atoms import (
    DATA,
    FUNCT,
    MANDATORY,
    MEMBER,
    P_FL_ARITIES,
    SUB,
    TYPE,
    Atom,
    mandatory,
    type_,
)
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable

__all__ = ["QueryGenParams", "QueryGenerator", "random_query", "specialize"]


@dataclass(frozen=True)
class QueryGenParams:
    """Knobs of the random query generator.

    ``cycle_length`` > 0 plants a mandatory-type cycle of that many
    classes (paper Section 4's infinite-chase pattern) in the body before
    filling the rest with random atoms.
    """

    n_atoms: int = 5
    n_variables: int = 6
    n_constants: int = 2
    constant_probability: float = 0.15
    head_arity: int = 2
    cycle_length: int = 0
    predicate_weights: dict[str, float] = field(
        default_factory=lambda: {
            MEMBER: 1.0,
            SUB: 1.0,
            DATA: 1.0,
            TYPE: 1.5,
            MANDATORY: 0.7,
            FUNCT: 0.5,
        }
    )


class QueryGenerator:
    """Seeded generator of random P_FL conjunctive queries."""

    def __init__(self, seed: int = 0, params: QueryGenParams = QueryGenParams()):
        self.params = params
        self._rng = random.Random(seed)
        self._counter = 0

    # -- terms ------------------------------------------------------------------

    def _variables(self) -> list[Variable]:
        return [Variable(f"X{i}") for i in range(1, self.params.n_variables + 1)]

    def _constants(self) -> list[Constant]:
        return [Constant(f"c{i}") for i in range(1, self.params.n_constants + 1)]

    def _pick_term(self, variables: Sequence[Variable], constants: Sequence[Constant]) -> Term:
        if constants and self._rng.random() < self.params.constant_probability:
            return self._rng.choice(list(constants))
        return self._rng.choice(list(variables))

    # -- atoms ------------------------------------------------------------------

    def _random_atom(
        self, variables: Sequence[Variable], constants: Sequence[Constant]
    ) -> Atom:
        weights = self.params.predicate_weights
        predicates = list(weights)
        predicate = self._rng.choices(
            predicates, weights=[weights[p] for p in predicates]
        )[0]
        arity = P_FL_ARITIES[predicate]
        args = tuple(self._pick_term(variables, constants) for _ in range(arity))
        return Atom(predicate, args)

    def _cycle_atoms(self, variables: Sequence[Variable]) -> list[Atom]:
        """A mandatory-type cycle of ``cycle_length`` classes (Section 4)."""
        k = self.params.cycle_length
        classes = [Variable(f"CT{i}") for i in range(1, k + 1)]
        attrs = [Variable(f"CA{i}") for i in range(1, k + 1)]
        atoms: list[Atom] = []
        for i in range(k):
            nxt = classes[(i + 1) % k]
            atoms.append(mandatory(attrs[i], classes[i]))
            atoms.append(type_(classes[i], attrs[i], nxt))
        return atoms

    # -- queries ------------------------------------------------------------------

    def query(self, name: Optional[str] = None) -> ConjunctiveQuery:
        """One random query with the generator's parameters."""
        self._counter += 1
        name = name or f"g{self._counter}"
        variables = self._variables()
        constants = self._constants()
        body: list[Atom] = []
        if self.params.cycle_length > 0:
            body.extend(self._cycle_atoms(variables))
        while len(body) < max(self.params.n_atoms, 1):
            body.append(self._random_atom(variables, constants))
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        arity = min(self.params.head_arity, len(body_vars))
        head = tuple(self._rng.sample(body_vars, arity)) if arity else ()
        return ConjunctiveQuery(name, head, tuple(body))

    def queries(self, count: int) -> list[ConjunctiveQuery]:
        return [self.query() for _ in range(count)]

    def containment_pair(
        self, *, related_probability: float = 0.6
    ) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
        """A pair (q1, q2) for containment experiments.

        With *related_probability* the pair is built so containment is
        plausible (q1 specialises q2); otherwise the queries are
        independent, giving a mix of positive and negative instances.
        """
        q2 = self.query()
        if self._rng.random() < related_probability:
            q1 = specialize(q2, rng=self._rng)
            return q1, q2
        q1 = self.query()
        if q1.arity != q2.arity:
            arity = min(q1.arity, q2.arity)
            q1 = q1.with_head(q1.head[:arity])
            q2 = q2.with_head(q2.head[:arity])
        return q1, q2


def specialize(
    query: ConjunctiveQuery, *, rng: random.Random, extra_atoms: int = 2
) -> ConjunctiveQuery:
    """A query contained in *query* over all databases.

    Built by (possibly) identifying variables and appending fresh atoms —
    both operations shrink the answer set, so classic containment (and a
    fortiori Sigma_FL containment) holds by construction.  Used to salt
    experiment corpora with known-positive instances.
    """
    variables = sorted(query.variables(), key=lambda v: v.name)
    mapping: dict[Variable, Term] = {}
    if len(variables) >= 2 and rng.random() < 0.5:
        merged, target = rng.sample(variables, 2)
        if not any(
            isinstance(t, Variable) and t == merged for t in query.head
        ) or not any(isinstance(t, Variable) and t == target for t in query.head):
            # Avoid head-variable merges that would change the head shape
            # in ways the caller cannot predict; body merges suffice.
            if merged not in query.head_variables():
                mapping[merged] = target
    from ..core.substitution import Substitution

    specialised = query.apply(Substitution(mapping)) if mapping else query
    gen = QueryGenerator(
        seed=rng.randrange(1 << 30),
        params=QueryGenParams(
            n_atoms=extra_atoms,
            n_variables=max(2, len(variables) // 2),
            head_arity=0,
        ),
    )
    filler = gen.query()
    body = specialised.body + filler.body
    return ConjunctiveQuery(f"{query.name}_spec", specialised.head, body)


def random_query(
    seed: int = 0,
    *,
    n_atoms: int = 5,
    n_variables: int = 6,
    head_arity: int = 2,
    cycle_length: int = 0,
) -> ConjunctiveQuery:
    """One-shot convenience wrapper around :class:`QueryGenerator`."""
    params = QueryGenParams(
        n_atoms=n_atoms,
        n_variables=n_variables,
        head_arity=head_arity,
        cycle_length=cycle_length,
    )
    return QueryGenerator(seed, params).query()
