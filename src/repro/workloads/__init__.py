"""Workloads: paper-example corpus and random query/ontology generators."""

from .corpus import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    INTRO_JOINABLE_Q,
    INTRO_JOINABLE_QQ,
    INTRO_MANDATORY_Q,
    INTRO_MANDATORY_QQ,
    PAPER_CONTAINMENT_PAIRS,
    PAPER_QUERIES,
)
from .ontology_gen import Ontology, OntologyParams, generate_ontology
from .query_gen import QueryGenParams, QueryGenerator, random_query, specialize

__all__ = [
    "INTRO_JOINABLE_Q",
    "INTRO_JOINABLE_QQ",
    "INTRO_MANDATORY_Q",
    "INTRO_MANDATORY_QQ",
    "EXAMPLE1_QUERY",
    "EXAMPLE2_QUERY",
    "PAPER_CONTAINMENT_PAIRS",
    "PAPER_QUERIES",
    "QueryGenerator",
    "QueryGenParams",
    "random_query",
    "specialize",
    "Ontology",
    "OntologyParams",
    "generate_ontology",
]
