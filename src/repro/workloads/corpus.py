"""The paper's worked examples as ready-made query objects.

Every query that appears in the paper is reconstructed here with the
paper's own variable names, so tests and experiments can refer to them by
name.  One caveat is recorded where it matters:

* ``INTRO_MANDATORY_QQ`` — the VLDB 2006 text as provided renders the
  second rule of the mandatory-attribute example as an empty box (a
  typesetting casualty).  We reconstruct the natural superquery the
  narrative implies — "some member of ``Class`` has a value for ``Att``,
  and ``Att`` has type ``Type`` in ``Class``" — which is exactly the
  containment that exercises rho_10 (inheritance of mandatory to members)
  followed by rho_5 (value invention).  The containment q ⊆ qq holds, the
  reverse fails, and the classic test misses it, matching the paper's
  discussion.
"""

from __future__ import annotations

from ..core.atoms import data, funct, mandatory, member, sub, type_
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable

__all__ = [
    "INTRO_JOINABLE_Q",
    "INTRO_JOINABLE_QQ",
    "INTRO_MANDATORY_Q",
    "INTRO_MANDATORY_QQ",
    "EXAMPLE1_QUERY",
    "EXAMPLE2_QUERY",
    "PAPER_CONTAINMENT_PAIRS",
    "PAPER_QUERIES",
]


def _v(name: str) -> Variable:
    return Variable(name)


# -- Section 1, first example: joinable attribute pairs -------------------------
#
#   q(A,B)  :- T1[A*=>T2], T2::T3, T3[B*=>_].
#   qq(A,B) :- T1[A*=>T2], T2[B*=>_].
#
# q ⊆ qq holds because rho_7 lets T2 inherit B's signature from T3.

INTRO_JOINABLE_Q = ConjunctiveQuery(
    "q_joinable",
    (_v("A"), _v("B")),
    (
        type_(_v("T1"), _v("A"), _v("T2")),
        sub(_v("T2"), _v("T3")),
        type_(_v("T3"), _v("B"), _v("W1")),
    ),
)

INTRO_JOINABLE_QQ = ConjunctiveQuery(
    "qq_joinable",
    (_v("A"), _v("B")),
    (
        type_(_v("T1"), _v("A"), _v("T2")),
        type_(_v("T2"), _v("B"), _v("W2")),
    ),
)


# -- Section 1, second example: mandatory attributes of inhabited classes -------
#
#   q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.
#
# The paper's qq is lost to typesetting; see the module docstring for the
# reconstruction rationale.

INTRO_MANDATORY_Q = ConjunctiveQuery(
    "q_mandatory",
    (_v("Att"), _v("Class"), _v("Type")),
    (
        mandatory(_v("Att"), _v("Class")),
        type_(_v("Class"), _v("Att"), _v("Type")),
        member(_v("M1"), _v("Class")),
    ),
)

INTRO_MANDATORY_QQ = ConjunctiveQuery(
    "qq_mandatory",
    (_v("Att"), _v("Class"), _v("Type")),
    (
        member(_v("O"), _v("Class")),
        data(_v("O"), _v("Att"), _v("W")),
        type_(_v("Class"), _v("Att"), _v("Type")),
    ),
)


# -- Example 1: the EGD rewrites the head ----------------------------------------
#
#   q(V1,V2) :- data(O,A,V1), data(O,A,V2), funct(A,C), member(O,C)
#
# Chasing derives funct(A,O) by rho_12, and rho_4 then merges V2 into V1,
# turning the head into q(V1,V1).

EXAMPLE1_QUERY = ConjunctiveQuery(
    "q_example1",
    (_v("V1"), _v("V2")),
    (
        data(_v("O"), _v("A"), _v("V1")),
        data(_v("O"), _v("A"), _v("V2")),
        funct(_v("A"), _v("C")),
        member(_v("O"), _v("C")),
    ),
)


# -- Example 2 / Figure 1: the infinite chase --------------------------------------
#
#   q() :- mandatory(A,T), type(T,A,T), sub(T,U)
#
# A one-attribute mandatory-type cycle: the chase alternates
# rho_5-rho_1-rho_6-rho_10 forever, with a rho_3 branch member(v_i, U).

EXAMPLE2_QUERY = ConjunctiveQuery(
    "q_example2",
    (),
    (
        mandatory(_v("A"), _v("T")),
        type_(_v("T"), _v("A"), _v("T")),
        sub(_v("T"), _v("U")),
    ),
)


#: (q1, q2, expected verdict of q1 ⊆_Sigma q2, expected classic verdict)
PAPER_CONTAINMENT_PAIRS = (
    (INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ, True, False),
    (INTRO_JOINABLE_QQ, INTRO_JOINABLE_Q, False, False),
    (INTRO_MANDATORY_Q, INTRO_MANDATORY_QQ, True, False),
    (INTRO_MANDATORY_QQ, INTRO_MANDATORY_Q, False, False),
)

#: Every named paper query, for corpus-wide experiments.
PAPER_QUERIES = (
    INTRO_JOINABLE_Q,
    INTRO_JOINABLE_QQ,
    INTRO_MANDATORY_Q,
    INTRO_MANDATORY_QQ,
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
)
