"""Analysis tools: cycle detection, termination prediction, chase statistics."""

from .cycles import (
    MandatoryCycle,
    TerminationReport,
    find_mandatory_cycles,
    has_mandatory_cycle,
    predict_chase_termination,
    probe_termination,
)
from .stats import (
    ChaseStats,
    LocalityViolation,
    check_locality,
    collect_chase_stats,
)

__all__ = [
    "MandatoryCycle",
    "find_mandatory_cycles",
    "has_mandatory_cycle",
    "TerminationReport",
    "predict_chase_termination",
    "probe_termination",
    "ChaseStats",
    "collect_chase_stats",
    "LocalityViolation",
    "check_locality",
]
