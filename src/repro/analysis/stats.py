"""Descriptive statistics over chase runs and chase graphs.

Used by the growth experiment (E11) and the locality experiment (E5) to
turn chase instances into the numbers the tables report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from ..chase.engine import ChaseResult
from ..chase.graph import ChaseGraph

__all__ = ["ChaseStats", "collect_chase_stats", "LocalityViolation", "check_locality"]


@dataclass
class ChaseStats:
    """Per-level and per-rule breakdown of one chase run."""

    total_conjuncts: int
    max_level: int
    conjuncts_per_level: dict[int, int]
    conjuncts_per_rule: dict[str, int]
    conjuncts_per_predicate: dict[str, int]
    saturated: bool
    failed: bool
    steps: int

    def growth_per_level(self) -> list[tuple[int, int]]:
        """(level, cumulative conjunct count) pairs — the E11 series."""
        out = []
        running = 0
        for level in range(self.max_level + 1):
            running += self.conjuncts_per_level.get(level, 0)
            out.append((level, running))
        return out

    def __str__(self) -> str:
        lines = [
            f"conjuncts: {self.total_conjuncts}   levels: {self.max_level}   "
            f"steps: {self.steps}   "
            f"{'saturated' if self.saturated else 'truncated'}"
        ]
        per_level = ", ".join(
            f"L{lvl}:{n}" for lvl, n in sorted(self.conjuncts_per_level.items())
        )
        lines.append(f"per level: {per_level}")
        per_rule = ", ".join(
            f"{r}:{n}" for r, n in sorted(self.conjuncts_per_rule.items())
        )
        lines.append(f"per rule:  {per_rule}")
        return "\n".join(lines)


def collect_chase_stats(result: ChaseResult) -> ChaseStats:
    """Summarise a chase result (the chase must not have failed)."""
    if result.failed or result.instance is None:
        return ChaseStats(
            total_conjuncts=0,
            max_level=0,
            conjuncts_per_level={},
            conjuncts_per_rule={},
            conjuncts_per_predicate={},
            saturated=True,
            failed=True,
            steps=result.steps,
        )
    instance = result.instance
    per_level: Counter[int] = Counter()
    per_rule: Counter[str] = Counter()
    per_pred: Counter[str] = Counter()
    for atom in instance:
        per_level[instance.level_of(atom)] += 1
        per_rule[instance.rule_of(atom)] += 1
        per_pred[atom.predicate] += 1
    return ChaseStats(
        total_conjuncts=len(instance),
        max_level=instance.max_level(),
        conjuncts_per_level=dict(per_level),
        conjuncts_per_rule=dict(per_rule),
        conjuncts_per_predicate=dict(per_pred),
        saturated=result.saturated,
        failed=False,
        steps=result.steps,
    )


@dataclass(frozen=True)
class LocalityViolation:
    """One counterexample candidate to Lemma 5 (should never exist)."""

    arc: object
    source_level: int
    target_level: int

    def __str__(self) -> str:
        return (
            f"secondary arc from level {self.source_level} into level "
            f"{self.target_level}: {self.arc}"
        )


def check_locality(graph: ChaseGraph) -> list[LocalityViolation]:
    """Validate Lemma 5 on one chase graph.

    Lemma 5 (for the paper's sequential chase order): every *secondary*
    arc into a conjunct at level >= 1 starts at level 0 or exactly two
    levels below its target.  Our engine applies rules in fair (BFS)
    rounds, which can generate a conjunct through a *shorter* derivation
    than the one the paper's figures draw; the alternative derivation then
    shows up as a **cross-arc between same-level conjuncts** (e.g. the
    rho_3 derivation of ``member(v1, U)`` in Figure 1 when rho_1 got there
    first).  Those arcs connect conjuncts of the same chain segment and
    preserve the isolation property the lemma is used for, so the checker
    accepts source levels in {0, target-2} plus same-level *cross*-arcs;
    anything else — in particular an arc from a deep conjunct of a
    different chain — is a violation.
    """
    violations: list[LocalityViolation] = []
    for arc in graph.secondary_arcs():
        if arc.target_level < 1:
            continue
        if arc.source_level == 0:
            continue
        if arc.source_level == arc.target_level - 2:
            continue
        if arc.cross and arc.source_level == arc.target_level:
            continue
        violations.append(
            LocalityViolation(
                arc=arc,
                source_level=arc.source_level,
                target_level=arc.target_level,
            )
        )
    return violations
