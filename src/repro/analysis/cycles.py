"""Mandatory-type cycle detection — the paper's infinite-chase criterion.

Section 4 identifies the *only* source of chase non-termination for
Sigma_FL: a cycle of mandatory attributes ``A_1 .. A_k`` over classes
``T_1 .. T_k`` with

    mandatory(A_i, T_i)  and  type(T_i, A_i, T_{i+1})   (indices mod k)

present among the conjuncts.  When such a cycle exists at level 0 of the
chase (i.e. in ``chase_{Sigma^-}(q)``) and the cycle's entry point has no
stored ``data`` value, the rho_5–rho_1–rho_6–rho_10 loop runs forever.

:func:`find_mandatory_cycles` searches the conjunct set directly;
:func:`predict_chase_termination` applies it to the Sigma^- saturation of
a query, giving a *complete* termination test for Sigma_FL (validated
empirically by the E11 experiment and the test suite).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..chase.engine import ChaseConfig, ChaseEngine
from ..core.atoms import MANDATORY, TYPE, Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Term
from ..dependencies.sigma_fl import SIGMA_FL_MINUS

__all__ = [
    "MandatoryCycle",
    "find_mandatory_cycles",
    "has_mandatory_cycle",
    "TerminationReport",
    "predict_chase_termination",
    "probe_termination",
]


@dataclass(frozen=True)
class MandatoryCycle:
    """One cycle: classes ``T_1..T_k`` and attributes ``A_1..A_k``.

    ``classes[i]`` carries ``attributes[i]`` (mandatory) typed into
    ``classes[(i+1) % k]``.
    """

    classes: tuple[Term, ...]
    attributes: tuple[Term, ...]

    def __len__(self) -> int:
        return len(self.classes)

    def __str__(self) -> str:
        hops = []
        k = len(self.classes)
        for i in range(k):
            hops.append(
                f"{self.classes[i]} -[{self.attributes[i]}]-> {self.classes[(i + 1) % k]}"
            )
        return " ; ".join(hops)


def _mandatory_edges(atoms: Iterable[Atom]) -> dict[Term, list[tuple[Term, Term]]]:
    """Edges ``T1 -> (A, T2)`` where mandatory(A,T1) and type(T1,A,T2) hold."""
    mandatory_pairs: set[tuple[Term, Term]] = set()  # (attr, host)
    type_triples: list[tuple[Term, Term, Term]] = []
    for atom in atoms:
        if atom.predicate == MANDATORY:
            mandatory_pairs.add((atom.args[0], atom.args[1]))
        elif atom.predicate == TYPE:
            type_triples.append((atom.args[0], atom.args[1], atom.args[2]))
    edges: dict[Term, list[tuple[Term, Term]]] = defaultdict(list)
    for host, attr, target in type_triples:
        if (attr, host) in mandatory_pairs:
            edges[host].append((attr, target))
    return edges


def find_mandatory_cycles(
    atoms: Iterable[Atom], *, max_cycles: Optional[int] = None
) -> list[MandatoryCycle]:
    """All simple mandatory-type cycles among *atoms*.

    Enumerated with a DFS over the edge relation of :func:`_mandatory_edges`;
    each simple cycle is reported once, rooted at its lexicographically
    smallest class term.
    """
    edges = _mandatory_edges(atoms)
    cycles: list[MandatoryCycle] = []
    seen_signatures: set[tuple] = set()

    def dfs(start: Term, node: Term, path: list[tuple[Term, Term, Term]]):
        if max_cycles is not None and len(cycles) >= max_cycles:
            return
        for attr, target in edges.get(node, ()):  # noqa: B007 - explicit pairs
            if target == start and path is not None:
                cycle_hosts = tuple(h for h, _, _ in path) + (node,)
                cycle_attrs = tuple(a for _, a, _ in path) + (attr,)
                # Canonicalise rotation so each cycle is reported once.
                names = [str(h) for h in cycle_hosts]
                pivot = names.index(min(names))
                hosts = cycle_hosts[pivot:] + cycle_hosts[:pivot]
                attrs = cycle_attrs[pivot:] + cycle_attrs[:pivot]
                signature = (hosts, attrs)
                if signature not in seen_signatures:
                    seen_signatures.add(signature)
                    cycles.append(MandatoryCycle(hosts, attrs))
            elif target not in {h for h, _, _ in path} and target != node:
                dfs(start, target, path + [(node, attr, target)])

    for start in sorted(edges, key=str):
        dfs(start, start, [])
    return cycles


def has_mandatory_cycle(atoms: Iterable[Atom]) -> bool:
    """True when at least one mandatory-type cycle exists among *atoms*."""
    return bool(find_mandatory_cycles(atoms, max_cycles=1))


@dataclass
class TerminationReport:
    """Verdict of the chase-termination predictor for one query.

    ``guaranteed_terminating`` is *sound*: True means the full Sigma_FL
    chase certainly terminates (no mandatory-type cycle exists, so rho_5
    can fire at most once per mandatory fact).  False means a cycle
    exists, which makes the chase infinite in the common case — but a
    stored ``data`` atom can occasionally close the loop, so False is
    "not guaranteed", not "certainly infinite".  Use
    :func:`probe_termination` for an empirical answer on such queries.
    """

    query: ConjunctiveQuery
    guaranteed_terminating: bool
    cycles: list[MandatoryCycle]
    level0_size: int
    failed: bool = False

    def __str__(self) -> str:
        if self.failed:
            return f"{self.query.name}: chase fails (trivially terminates)"
        if self.guaranteed_terminating:
            return f"{self.query.name}: chase terminates (no mandatory-type cycle)"
        lines = [f"{self.query.name}: chase may be infinite; cycles:"]
        lines += [f"  {c}" for c in self.cycles]
        return "\n".join(lines)


def predict_chase_termination(query: ConjunctiveQuery) -> TerminationReport:
    """Statically analyse whether the full Sigma_FL chase of *query* terminates.

    Saturates with ``Sigma_FL - {rho5}`` first (always finite), then looks
    for mandatory-type cycles in the saturation — the paper's
    non-termination pattern.  A failing chase terminates by definition.
    """
    engine = ChaseEngine(SIGMA_FL_MINUS, ChaseConfig())
    result = engine.run(query)
    if result.failed:
        return TerminationReport(
            query=query,
            guaranteed_terminating=True,
            cycles=[],
            level0_size=0,
            failed=True,
        )
    atoms = result.atoms()
    cycles = find_mandatory_cycles(atoms)
    return TerminationReport(
        query=query,
        guaranteed_terminating=not cycles,
        cycles=cycles,
        level0_size=len(atoms),
    )


def probe_termination(query: ConjunctiveQuery, *, max_level: int = 24) -> bool:
    """Empirically check termination by chasing up to *max_level* levels.

    Returns True when the bounded chase saturates before the bound.  A
    False answer means the chase is still growing at ``max_level`` —
    conclusive evidence of non-termination for Sigma_FL's cyclic pattern,
    whose period is bounded by the cycle length.
    """
    from ..dependencies.sigma_fl import SIGMA_FL

    engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=max_level))
    result = engine.run(query)
    return result.failed or result.saturated
