"""Extensions beyond the paper's core results (its Section-5 directions).

* :mod:`weak_acyclicity` — chase-termination guarantee for *generic*
  dependency sets (and the checkable fact that Sigma_FL itself is not
  weakly acyclic, which is why the paper's bespoke bound is needed);
* :mod:`unions` — containment of unions of conjunctive meta-queries;
* :mod:`classify` — subsumption taxonomies of query sets (the
  Description-Logic classification use case the paper cites).
"""

from .classify import Taxonomy, are_equivalent, classify_queries
from .unions import UCQContainmentResult, UnionQuery, ucq_contained
from .weak_acyclicity import (
    DependencyGraph,
    WeakAcyclicityReport,
    analyse_weak_acyclicity,
    build_dependency_graph,
    is_weakly_acyclic,
)

__all__ = [
    "is_weakly_acyclic",
    "analyse_weak_acyclicity",
    "build_dependency_graph",
    "DependencyGraph",
    "WeakAcyclicityReport",
    "UnionQuery",
    "ucq_contained",
    "UCQContainmentResult",
    "classify_queries",
    "are_equivalent",
    "Taxonomy",
]
