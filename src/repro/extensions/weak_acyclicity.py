"""Weak acyclicity — chase termination for *generic* dependency sets.

The paper closes by asking for "a general class of queries [and
constraints] for which our proof techniques still apply" (Section 5).
The standard sufficient condition for chase termination over arbitrary
TGD sets is **weak acyclicity** (Fagin, Kolaitis, Miller, Popa — the
same [12] the paper's Theorem 4 leans on): build the *dependency graph*
over (predicate, position) pairs,

* a **regular edge** ``(R,i) -> (S,j)`` whenever some TGD propagates a
  universally quantified variable from body position ``(R,i)`` to head
  position ``(S,j)``;
* a **special edge** ``(R,i) -> (S,k)`` whenever a TGD with a
  universally quantified variable at body position ``(R,i)`` (exported
  to the head) *invents* an existential value at head position ``(S,k)``;

the set is weakly acyclic iff no cycle goes through a special edge, and
then every chase terminates in polynomially many steps.

Sigma_FL itself is **not** weakly acyclic — rho_5's invention at
``data[2]`` feeds rho_1 into ``member[0]``, which flows back through
rho_10/rho_6 into rho_5's trigger — which is exactly why the paper needs
its bespoke Theorem-12 bound.  This module makes that observation
checkable and gives users of the generic chase engine a termination
guarantee for their own dependency sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.terms import Variable
from ..dependencies.dependency import EGD, TGD, Dependency

__all__ = [
    "Position",
    "DependencyGraph",
    "build_dependency_graph",
    "is_weakly_acyclic",
    "WeakAcyclicityReport",
    "analyse_weak_acyclicity",
]

#: A (predicate, argument-index) pair.
Position = tuple[str, int]


@dataclass(frozen=True)
class DependencyGraph:
    """The position graph with regular and special edges."""

    positions: frozenset[Position]
    regular_edges: frozenset[tuple[Position, Position]]
    special_edges: frozenset[tuple[Position, Position]]

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` with a ``special`` flag."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for position in self.positions:
            graph.add_node(position)
        for src, dst in self.regular_edges:
            graph.add_edge(src, dst, special=False)
        for src, dst in self.special_edges:
            graph.add_edge(src, dst, special=True)
        return graph


def _variable_positions(atoms, var: Variable) -> list[Position]:
    out = []
    for atom in atoms:
        for i, term in enumerate(atom.args):
            if term == var:
                out.append((atom.predicate, i))
    return out


def build_dependency_graph(dependencies: Sequence[Dependency]) -> DependencyGraph:
    """The Fagin-et-al. position graph of a dependency set (EGDs ignored)."""
    positions: set[Position] = set()
    regular: set[tuple[Position, Position]] = set()
    special: set[tuple[Position, Position]] = set()
    for dep in dependencies:
        if isinstance(dep, EGD):
            continue
        assert isinstance(dep, TGD)
        head_atoms = (dep.head,)
        for atom in dep.body + head_atoms:
            for i in range(atom.arity):
                positions.add((atom.predicate, i))
        existential = set(dep.existential_vars)
        body_vars = {
            v for atom in dep.body for v in atom.variables()
        }
        for var in body_vars:
            body_positions = _variable_positions(dep.body, var)
            if var in dep.head.variables():
                for src in body_positions:
                    for dst in _variable_positions(head_atoms, var):
                        regular.add((src, dst))
            # Special edges only from variables exported to the head.
            if var in dep.frontier():
                for src in body_positions:
                    for evar in existential:
                        for dst in _variable_positions(head_atoms, evar):
                            special.add((src, dst))
    return DependencyGraph(
        positions=frozenset(positions),
        regular_edges=frozenset(regular),
        special_edges=frozenset(special),
    )


def _cycles_through_special(graph: DependencyGraph) -> list[list[Position]]:
    """Simple cycles of the position graph that use a special edge."""
    import networkx as nx

    nx_graph = nx.DiGraph()
    for src, dst in graph.regular_edges | graph.special_edges:
        nx_graph.add_edge(src, dst)
    special = graph.special_edges
    bad: list[list[Position]] = []
    for cycle in nx.simple_cycles(nx_graph):
        edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        if any(edge in special for edge in edges):
            bad.append(cycle)
    return bad


def is_weakly_acyclic(dependencies: Sequence[Dependency]) -> bool:
    """True iff no position-graph cycle goes through a special edge."""
    return not _cycles_through_special(build_dependency_graph(dependencies))


@dataclass
class WeakAcyclicityReport:
    """Full analysis output: verdict plus the offending cycles."""

    weakly_acyclic: bool
    graph: DependencyGraph
    offending_cycles: list[list[Position]]

    def __str__(self) -> str:
        if self.weakly_acyclic:
            return (
                "weakly acyclic: every chase with this dependency set "
                "terminates (polynomially many steps)"
            )
        lines = ["NOT weakly acyclic; cycles through value invention:"]
        for cycle in self.offending_cycles[:5]:
            pretty = " -> ".join(f"{p}[{i}]" for p, i in cycle)
            lines.append(f"  {pretty} -> (back to start)")
        if len(self.offending_cycles) > 5:
            lines.append(f"  ... and {len(self.offending_cycles) - 5} more")
        return "\n".join(lines)


def analyse_weak_acyclicity(
    dependencies: Sequence[Dependency],
) -> WeakAcyclicityReport:
    """Build the graph, find the special cycles, return the full report."""
    graph = build_dependency_graph(dependencies)
    offending = _cycles_through_special(graph)
    return WeakAcyclicityReport(
        weakly_acyclic=not offending,
        graph=graph,
        offending_cycles=offending,
    )
