"""Query classification: the Description-Logic-style taxonomy use case.

The paper's introduction cites *object classification* as a driving
application of containment.  Given a set of meta-queries (e.g. service
advertisements, view definitions, concept queries), classification
computes the subsumption partial order among them:

* **equivalence classes** — queries contained in each other;
* the **Hasse diagram** of direct subsumptions between classes (the
  transitive reduction of the containment order);
* top/bottom elements (most general / most specific queries).

Containment checks are pairwise Theorem-12 checks; one
:class:`~repro.containment.bounded.ContainmentChecker` is shared so each
query is chased once per distinct level bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..containment.bounded import ContainmentChecker
from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL

__all__ = ["Taxonomy", "classify_queries", "are_equivalent"]


def are_equivalent(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    checker: Optional[ContainmentChecker] = None,
) -> bool:
    """``q1 ≡_Sigma q2``: containment in both directions."""
    checker = checker or ContainmentChecker(dependencies)
    return bool(checker.check(q1, q2)) and bool(checker.check(q2, q1))


@dataclass
class Taxonomy:
    """The classification result.

    ``classes`` are equivalence classes (each a tuple of queries, most
    compact representative first); ``edges`` are direct subsumptions
    ``(sub_index, super_index)`` between class indexes, forming the Hasse
    diagram of the containment order.
    """

    queries: tuple[ConjunctiveQuery, ...]
    classes: list[tuple[ConjunctiveQuery, ...]] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)

    def representative(self, class_index: int) -> ConjunctiveQuery:
        return self.classes[class_index][0]

    def class_of(self, query: ConjunctiveQuery) -> int:
        for i, members in enumerate(self.classes):
            if query in members:
                return i
        raise KeyError(f"{query.name} was not classified")

    def subsumers(self, query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
        """Direct subsumers (more general queries, one Hasse step up)."""
        me = self.class_of(query)
        return [self.representative(sup) for sub, sup in self.edges if sub == me]

    def subsumees(self, query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
        """Direct subsumees (more specific queries, one Hasse step down)."""
        me = self.class_of(query)
        return [self.representative(sub) for sub, sup in self.edges if sup == me]

    def roots(self) -> list[ConjunctiveQuery]:
        """Most general classes (nothing subsumes them)."""
        have_super = {sub for sub, _ in self.edges}
        return [
            self.representative(i)
            for i in range(len(self.classes))
            if i not in have_super
        ]

    def to_networkx(self):
        """Hasse diagram as a ``networkx.DiGraph`` (edges point upward)."""
        import networkx as nx

        graph = nx.DiGraph()
        for i, members in enumerate(self.classes):
            graph.add_node(i, queries=[q.name for q in members])
        graph.add_edges_from(self.edges)
        return graph

    def pretty(self) -> str:
        lines = []
        for i, members in enumerate(self.classes):
            names = " ≡ ".join(q.name for q in members)
            supers = [
                self.representative(sup).name
                for sub, sup in self.edges
                if sub == i
            ]
            arrow = f"  ⊑  {', '.join(supers)}" if supers else "  (most general)"
            lines.append(f"[{i}] {names}{arrow}")
        return "\n".join(lines)


def classify_queries(
    queries: Sequence[ConjunctiveQuery],
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    checker: Optional[ContainmentChecker] = None,
) -> Taxonomy:
    """Compute the containment taxonomy of *queries*.

    All queries must share one arity.  Complexity is quadratic in the
    number of queries times the cost of one containment check.
    """
    queries = tuple(queries)
    if not queries:
        return Taxonomy(queries=queries)
    arity = queries[0].arity
    for query in queries:
        if query.arity != arity:
            raise QueryError(
                f"classification requires equal arity; {query.name} has "
                f"{query.arity}, expected {arity}"
            )
    checker = checker or ContainmentChecker(dependencies)

    n = len(queries)
    contains = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            contains[i][j] = i == j or bool(checker.check(queries[i], queries[j]))

    # Equivalence classes via mutual containment.
    assigned = [-1] * n
    classes: list[list[ConjunctiveQuery]] = []
    for i in range(n):
        if assigned[i] >= 0:
            continue
        members = [i]
        assigned[i] = len(classes)
        for j in range(i + 1, n):
            if assigned[j] < 0 and contains[i][j] and contains[j][i]:
                assigned[j] = len(classes)
                members.append(j)
        classes.append([queries[k] for k in members])

    # Strict order between classes, then its transitive reduction.
    m = len(classes)
    reps = [queries[assigned.index(i)] for i in range(m)]
    below = [[False] * m for _ in range(m)]
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            ia = queries.index(reps[a])
            ib = queries.index(reps[b])
            below[a][b] = contains[ia][ib] and not contains[ib][ia]
    edges = []
    for a in range(m):
        for b in range(m):
            if not below[a][b]:
                continue
            # Direct edge iff no class strictly between.
            if not any(below[a][c] and below[c][b] for c in range(m)):
                edges.append((a, b))

    return Taxonomy(
        queries=queries,
        classes=[tuple(members) for members in classes],
        edges=edges,
    )
