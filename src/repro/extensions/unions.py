"""Containment of unions of conjunctive meta-queries (UCQs).

The paper's Section 5 lists "more expressive query languages" as future
work; unions are the canonical first step.  The classical
Sagiv–Yannakakis argument lifts directly to the constrained setting
through the universal-model property of the chase:

    ∪_j q1_j  ⊆_Σ  ∪_i q2_i
        iff
    for every j there is an i with a homomorphism from body(q2_i) into
    chase_Σ(q1_j) mapping head(q2_i) onto head(chase(q1_j)).

(The forward direction is per-disjunct Theorem 4 applied to the chase of
``q1_j`` as the witness database; the backward direction composes
homomorphisms exactly as in the CQ case.  No cross-disjunct interaction
exists because a single answer tuple of the union comes from a single
disjunct.)  Each per-pair check uses the Theorem-12 level bound, so the
whole procedure stays decidable and in NP (the witness is one choice of
``i`` per ``j`` plus the homomorphisms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..containment.bounded import ContainmentChecker
from ..containment.result import ContainmentResult
from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL

__all__ = ["UnionQuery", "UCQContainmentResult", "ucq_contained"]


class UnionQuery:
    """A union of same-arity conjunctive queries."""

    __slots__ = ("name", "disjuncts")

    def __init__(self, name: str, disjuncts: Iterable[ConjunctiveQuery]):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise QueryError(f"union {name} needs at least one disjunct")
        arity = disjuncts[0].arity
        for disjunct in disjuncts:
            if disjunct.arity != arity:
                raise QueryError(
                    f"union {name}: disjunct {disjunct.name} has arity "
                    f"{disjunct.arity}, expected {arity}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "disjuncts", disjuncts)

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("UnionQuery is immutable")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __str__(self) -> str:
        return " UNION ".join(str(d) for d in self.disjuncts)

    @classmethod
    def wrap(cls, query) -> "UnionQuery":
        """Coerce a CQ (or pass through a UnionQuery) for mixed-call APIs."""
        if isinstance(query, UnionQuery):
            return query
        return cls(query.name, (query,))


@dataclass
class UCQContainmentResult:
    """The verdict plus the per-disjunct witness matrix."""

    u1: UnionQuery
    u2: UnionQuery
    contained: bool
    #: For each disjunct of u1 (by name): the u2 disjunct that covers it
    #: (with its ContainmentResult), or None when uncovered.
    coverage: dict[str, Optional[tuple[str, ContainmentResult]]] = field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return self.contained

    def uncovered(self) -> list[str]:
        return [name for name, cover in self.coverage.items() if cover is None]

    def explain(self) -> str:
        rel = "⊆" if self.contained else "⊄"
        lines = [f"{self.u1.name} {rel} {self.u2.name}:"]
        for name, cover in self.coverage.items():
            if cover is None:
                lines.append(f"  {name}: NOT covered by any disjunct")
            else:
                covering, _ = cover
                lines.append(f"  {name}: covered by {covering}")
        return "\n".join(lines)


def ucq_contained(
    u1,
    u2,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    checker: Optional[ContainmentChecker] = None,
) -> UCQContainmentResult:
    """Decide ``u1 ⊆_Sigma u2`` for unions of conjunctive queries.

    Accepts plain :class:`ConjunctiveQuery` objects on either side (they
    are treated as singleton unions), so this is a strict generalisation
    of :func:`repro.containment.is_contained`.
    """
    u1 = UnionQuery.wrap(u1)
    u2 = UnionQuery.wrap(u2)
    if u1.arity != u2.arity:
        raise QueryError(
            f"arity mismatch: {u1.name}/{u1.arity} vs {u2.name}/{u2.arity}"
        )
    checker = checker or ContainmentChecker(dependencies)
    # Batch the full disjunct x candidate cross product: every pair with the
    # same left disjunct shares one chase (check_all groups by q1 and chases
    # it once to the largest Theorem-12 bound any candidate needs).
    pairs = [(disjunct, candidate) for disjunct in u1 for candidate in u2]
    verdicts = iter(checker.check_all(pairs))
    coverage: dict[str, Optional[tuple[str, ContainmentResult]]] = {}
    contained = True
    for disjunct in u1:
        cover: Optional[tuple[str, ContainmentResult]] = None
        for candidate in u2:
            result = next(verdicts)
            if result.contained and cover is None:
                cover = (candidate.name, result)
        coverage[disjunct.name] = cover
        if cover is None:
            contained = False
    return UCQContainmentResult(u1=u1, u2=u2, contained=contained, coverage=coverage)
