"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping all error types in one module lets callers catch ``ReproError`` to
trap anything raised by this library while still being able to distinguish
the individual failure modes (arity clashes, parse errors, chase failure,
...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ArityError(ReproError):
    """An atom was built with the wrong number of arguments for its predicate."""


class SchemaError(ReproError):
    """A predicate name is unknown to the schema in use (e.g. not in P_FL)."""


class SubstitutionError(ReproError):
    """A substitution was asked to do something inconsistent.

    The typical case is binding one variable to two different terms.
    """


class UnificationError(ReproError):
    """Two atoms or terms do not unify."""


class QueryError(ReproError):
    """A conjunctive query is malformed.

    Examples: a head variable that never occurs in the body (unsafe query),
    or two queries of different arity being compared for containment.
    """


class AdmissionRejected(ReproError):
    """The containment service refused to admit a request.

    Raised by the service layer's admission controller when the bounded
    request queue is full or the service is draining toward shutdown.
    Rejection is explicit and immediate — a request is never silently
    dropped, and an admitted request is never evicted part-way.
    """

    def __init__(self, message: str, *, reason: str = "rejected"):
        super().__init__(message)
        #: Machine-readable cause: ``"queue-full"`` or ``"draining"``.
        self.reason = reason


class ChaseFailure(ReproError):
    """The chase failed: an EGD equated two distinct real constants.

    Per Definition 2(1)(a) of the paper the chase construction stops and
    *fails*; for containment purposes a failing chase of ``q1`` means ``q1``
    has no answers over any database satisfying Sigma_FL, hence it is
    vacuously contained in every query of the same arity.
    """


class ExecutionInterrupted(ReproError):
    """Base class: a run was stopped before completing its task.

    Raised by the :mod:`repro.governance` layer when an
    :class:`~repro.governance.ExecutionBudget` resource is exhausted or a
    :class:`~repro.governance.CancelScope` is cancelled, and by the chase
    engine's legacy ``max_steps`` valve.  Interruption is *not* a verdict:
    the :class:`~repro.containment.ContainmentChecker` converts it into a
    three-valued ``UNKNOWN`` result, and an interrupted
    :class:`~repro.chase.engine.ChaseRun` stays resumable — call
    ``extend_to`` again (with a fresh budget) to continue where it
    stopped.

    ``budget_report`` carries the structured
    :class:`~repro.governance.BudgetReport` snapshot taken at the moment
    of interruption (``None`` for legacy raises that predate governance).
    """

    def __init__(self, message: str, *, budget_report=None):
        self.budget_report = budget_report
        super().__init__(message)


class ChaseBudgetExceeded(ExecutionInterrupted):
    """A chase run exceeded an explicit resource budget (steps or levels).

    This is an error only when the caller asked for an *exhaustive* chase;
    level-bounded chases used by the Theorem-12 checker treat the budget as
    the intended stopping point and never raise this.
    """


class BudgetExceeded(ChaseBudgetExceeded):
    """An :class:`~repro.governance.ExecutionBudget` resource ran out.

    Subclasses :class:`ChaseBudgetExceeded` so callers that already trap
    the legacy step-valve error also trap governed exhaustion; the
    attached ``budget_report`` names the exhausted resource (deadline,
    facts, memory or steps) and the consumption at the stop point.
    """


class ExecutionCancelled(ExecutionInterrupted):
    """A :class:`~repro.governance.CancelScope` was cancelled cooperatively.

    The cancelled operation polled its scope at a safe checkpoint, so the
    interrupted state (e.g. a :class:`~repro.chase.engine.ChaseRun`) is
    consistent and resumable.
    """


class ParseError(ReproError):
    """The F-logic Lite parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EncodingError(ReproError):
    """An F-logic statement could not be encoded into P_FL (or back)."""
