"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping all error types in one module lets callers catch ``ReproError`` to
trap anything raised by this library while still being able to distinguish
the individual failure modes (arity clashes, parse errors, chase failure,
...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ArityError(ReproError):
    """An atom was built with the wrong number of arguments for its predicate."""


class SchemaError(ReproError):
    """A predicate name is unknown to the schema in use (e.g. not in P_FL)."""


class SubstitutionError(ReproError):
    """A substitution was asked to do something inconsistent.

    The typical case is binding one variable to two different terms.
    """


class UnificationError(ReproError):
    """Two atoms or terms do not unify."""


class QueryError(ReproError):
    """A conjunctive query is malformed.

    Examples: a head variable that never occurs in the body (unsafe query),
    or two queries of different arity being compared for containment.
    """


class ChaseFailure(ReproError):
    """The chase failed: an EGD equated two distinct real constants.

    Per Definition 2(1)(a) of the paper the chase construction stops and
    *fails*; for containment purposes a failing chase of ``q1`` means ``q1``
    has no answers over any database satisfying Sigma_FL, hence it is
    vacuously contained in every query of the same arity.
    """


class ChaseBudgetExceeded(ReproError):
    """A chase run exceeded an explicit resource budget (steps or levels).

    This is an error only when the caller asked for an *exhaustive* chase;
    level-bounded chases used by the Theorem-12 checker treat the budget as
    the intended stopping point and never raise this.
    """


class ParseError(ReproError):
    """The F-logic Lite parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EncodingError(ReproError):
    """An F-logic statement could not be encoded into P_FL (or back)."""
