"""Atoms and the P_FL schema.

An :class:`Atom` is a predicate name applied to a tuple of terms.  Atoms
are the *conjuncts* of queries and, once ground (or treated as frozen), the
*tuples* of chase instances — the paper uses the two words interchangeably
and so do we.

The module also defines ``P_FL``, the six-predicate relational schema of
the low-level F-logic Lite encoding (paper, Section 2):

======================  =====================================================
``member(O, C)``        object *O* is a member of class *C*          (O : C)
``sub(C1, C2)``         class *C1* is a subclass of class *C2*      (C1 :: C2)
``data(O, A, V)``       attribute *A* has value *V* on object *O*  (O[A -> V])
``type(O, A, T)``       attribute *A* has type *T* for *O*        (O[A *=> T])
``mandatory(A, O)``     *A* is mandatory on *O*              (O[A {1:*} *=> _])
``funct(A, O)``         *A* is functional on *O*             (O[A {0:1} *=> _])
======================  =====================================================
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .errors import ArityError, SchemaError
from .terms import Constant, Null, Term, Variable

__all__ = [
    "Atom",
    "P_FL",
    "P_FL_ARITIES",
    "MEMBER",
    "SUB",
    "DATA",
    "TYPE",
    "MANDATORY",
    "FUNCT",
    "member",
    "sub",
    "data",
    "type_",
    "mandatory",
    "funct",
    "validate_pfl_atom",
]

MEMBER = "member"
SUB = "sub"
DATA = "data"
TYPE = "type"
MANDATORY = "mandatory"
FUNCT = "funct"

#: Arity of each predicate in the P_FL encoding.
P_FL_ARITIES: Mapping[str, int] = {
    MEMBER: 2,
    SUB: 2,
    DATA: 3,
    TYPE: 3,
    MANDATORY: 2,
    FUNCT: 2,
}

#: The predicate names of the F-logic Lite encoding.
P_FL = frozenset(P_FL_ARITIES)


class Atom:
    """An immutable, hashable atom ``pred(t1, ..., tn)``.

    ``Atom`` imposes no schema by itself — the same class carries P_FL
    conjuncts, Datalog facts and user-defined query heads.  Use
    :func:`validate_pfl_atom` to enforce the P_FL schema where required.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, args: Iterable[Term]):
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"atom argument is not a Term: {arg!r}")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((predicate, args)))

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        # Slots + guarded __setattr__ defeat default pickling; rebuild
        # through __init__ (the parallel batch pipeline pickles atoms).
        return (Atom, (self.predicate, self.args))

    # -- structure ---------------------------------------------------------

    @property
    def arity(self) -> int:
        """The number of argument positions."""
        return len(self.args)

    def __getitem__(self, i: int) -> Term:
        """The i-th component of the conjunct (paper notation ``c[i]``, 0-based)."""
        return self.args[i]

    def __iter__(self) -> Iterator[Term]:
        return iter(self.args)

    def variables(self) -> set[Variable]:
        """The set of variables occurring in this atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set[Constant]:
        """The set of real constants occurring in this atom."""
        return {t for t in self.args if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        """The set of labeled nulls occurring in this atom."""
        return {t for t in self.args if isinstance(t, Null)}

    def terms(self) -> tuple[Term, ...]:
        """The argument tuple (alias of :attr:`args`)."""
        return self.args

    @property
    def is_ground(self) -> bool:
        """True when no argument is a variable (nulls count as values)."""
        return not any(isinstance(t, Variable) for t in self.args)

    # -- equality / ordering ------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            self is other
            or (
                isinstance(other, Atom)
                and self._hash == other._hash
                and self.predicate == other.predicate
                and self.args == other.args
            )
        )

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"


def validate_pfl_atom(atom: Atom) -> Atom:
    """Check *atom* against the P_FL schema; return it unchanged if valid.

    Raises :class:`SchemaError` for an unknown predicate and
    :class:`ArityError` for a wrong argument count.
    """
    expected = P_FL_ARITIES.get(atom.predicate)
    if expected is None:
        raise SchemaError(
            f"predicate {atom.predicate!r} is not in P_FL "
            f"(expected one of {sorted(P_FL)})"
        )
    if atom.arity != expected:
        raise ArityError(
            f"{atom.predicate} expects {expected} arguments, got {atom.arity}: {atom}"
        )
    return atom


# -- convenience constructors ------------------------------------------------
#
# These accept Terms directly, or bare strings interpreted with the paper's
# capitalization convention (capitalized = variable, lowercase = constant).


def _coerce(term) -> Term:
    if isinstance(term, Term):
        return term
    if isinstance(term, str):
        from .terms import parse_term

        return parse_term(term)
    raise TypeError(f"cannot coerce {term!r} to a Term")


def member(o, c) -> Atom:
    """``member(O, C)`` — object *O* is a member of class *C* (``O : C``)."""
    return Atom(MEMBER, (_coerce(o), _coerce(c)))


def sub(c1, c2) -> Atom:
    """``sub(C1, C2)`` — *C1* is a subclass of *C2* (``C1 :: C2``)."""
    return Atom(SUB, (_coerce(c1), _coerce(c2)))


def data(o, a, v) -> Atom:
    """``data(O, A, V)`` — attribute *A* has value *V* on *O* (``O[A -> V]``)."""
    return Atom(DATA, (_coerce(o), _coerce(a), _coerce(v)))


def type_(o, a, t) -> Atom:
    """``type(O, A, T)`` — attribute *A* has type *T* for *O* (``O[A *=> T]``).

    Named with a trailing underscore to avoid shadowing the builtin.
    """
    return Atom(TYPE, (_coerce(o), _coerce(a), _coerce(t)))


def mandatory(a, o) -> Atom:
    """``mandatory(A, O)`` — *A* is mandatory on *O* (``O[A {1:*} *=> _]``)."""
    return Atom(MANDATORY, (_coerce(a), _coerce(o)))


def funct(a, o) -> Atom:
    """``funct(A, O)`` — *A* is functional on *O* (``O[A {0:1} *=> _]``)."""
    return Atom(FUNCT, (_coerce(a), _coerce(o)))
