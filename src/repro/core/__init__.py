"""Core kernel: terms, atoms, substitutions and conjunctive queries.

Everything else in :mod:`repro` is built on these four concepts.  The
module re-exports the public names so that ``from repro.core import ...``
is all most client code ever needs.
"""

from .atoms import (
    DATA,
    FUNCT,
    MANDATORY,
    MEMBER,
    P_FL,
    P_FL_ARITIES,
    SUB,
    TYPE,
    Atom,
    data,
    funct,
    mandatory,
    member,
    sub,
    type_,
    validate_pfl_atom,
)
from .errors import (
    AdmissionRejected,
    ArityError,
    BudgetExceeded,
    ChaseBudgetExceeded,
    ExecutionCancelled,
    ExecutionInterrupted,
    ChaseFailure,
    EncodingError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SubstitutionError,
    UnificationError,
)
from .query import ConjunctiveQuery, fresh_variable_namer
from .substitution import Substitution, match_atom, unify_atoms
from .terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    is_ground,
    parse_term,
    term_sort_key,
)

__all__ = [
    # terms
    "Term",
    "Constant",
    "Variable",
    "Null",
    "NullFactory",
    "term_sort_key",
    "is_ground",
    "parse_term",
    # atoms / schema
    "Atom",
    "P_FL",
    "P_FL_ARITIES",
    "MEMBER",
    "SUB",
    "DATA",
    "TYPE",
    "MANDATORY",
    "FUNCT",
    "member",
    "sub",
    "data",
    "type_",
    "mandatory",
    "funct",
    "validate_pfl_atom",
    # substitution
    "Substitution",
    "match_atom",
    "unify_atoms",
    # query
    "ConjunctiveQuery",
    "fresh_variable_namer",
    # errors
    "ReproError",
    "AdmissionRejected",
    "ArityError",
    "SchemaError",
    "SubstitutionError",
    "UnificationError",
    "QueryError",
    "ChaseFailure",
    "ChaseBudgetExceeded",
    "BudgetExceeded",
    "ExecutionCancelled",
    "ExecutionInterrupted",
    "ParseError",
    "EncodingError",
]
