"""Conjunctive queries.

A conjunctive query (CQ) is written, as in the paper,

    q(X, Y) :- data(O, A, X), type(O, A, Y).

with a *head* carrying the answer terms and a *body* that is a conjunction
of atoms.  ``|q|`` — the paper's size measure used in the Theorem-12 bound
``delta = 2 * |q1|`` — is the number of body conjuncts.

Queries here are schema-agnostic; :meth:`ConjunctiveQuery.validate_pfl`
checks a query against the P_FL meta-schema when F-logic semantics are
intended.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from .atoms import Atom, validate_pfl_atom
from .errors import QueryError
from .substitution import Substitution
from .terms import Constant, Null, Term, Variable

__all__ = ["ConjunctiveQuery", "fresh_variable_namer"]


def fresh_variable_namer(prefix: str = "R") -> Iterator[Variable]:
    """An endless supply of variables ``R1, R2, ...`` for renaming apart."""
    for i in itertools.count(1):
        yield Variable(f"{prefix}{i}")


class ConjunctiveQuery:
    """An immutable conjunctive query ``head :- body``.

    Parameters
    ----------
    name:
        The head predicate name (``q`` in the paper's examples).
    head:
        The answer tuple — a sequence of terms.  Head *variables* must be
        safe, i.e. occur in the body; head constants are allowed.
    body:
        The conjuncts.  Order is preserved (it matters for chase traces and
        for deterministic tests) but equality of queries is order-sensitive
        only on the head: two queries with permuted bodies are distinct
        objects yet semantically interchangeable everywhere in the library.
    """

    __slots__ = ("name", "head", "body", "_hash", "_canonical")

    def __init__(self, name: str, head: Sequence[Term], body: Iterable[Atom]):
        head = tuple(head)
        body = tuple(body)
        if not name:
            raise QueryError("query name must be non-empty")
        for term in head:
            if not isinstance(term, Term):
                raise QueryError(f"head term is not a Term: {term!r}")
        if not body:
            raise QueryError(f"query {name} has an empty body")
        body_vars = set()
        for atom in body:
            if not isinstance(atom, Atom):
                raise QueryError(f"body conjunct is not an Atom: {atom!r}")
            body_vars |= atom.variables()
        for term in head:
            if isinstance(term, Variable) and term not in body_vars:
                raise QueryError(
                    f"unsafe query {name}: head variable {term} does not occur in the body"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash((name, head, body)))
        object.__setattr__(self, "_canonical", None)

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("ConjunctiveQuery is immutable")

    def __reduce__(self):
        return (ConjunctiveQuery, (self.name, self.head, self.body))

    # -- basic structure ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of answer terms (queries compared for containment must agree)."""
        return len(self.head)

    @property
    def size(self) -> int:
        """``|q|`` — the number of body conjuncts (paper's size measure)."""
        return len(self.body)

    def __len__(self) -> int:
        return self.size

    def variables(self) -> set[Variable]:
        """All variables of the query (body variables; head vars are among them)."""
        out: set[Variable] = set()
        for atom in self.body:
            out |= atom.variables()
        for term in self.head:
            if isinstance(term, Variable):
                out.add(term)
        return out

    def constants(self) -> set[Constant]:
        """All real constants occurring in head or body."""
        out: set[Constant] = set()
        for atom in self.body:
            out |= atom.constants()
        for term in self.head:
            if isinstance(term, Constant):
                out.add(term)
        return out

    def head_variables(self) -> set[Variable]:
        """Variables that occur in the head (the distinguished ones)."""
        return {t for t in self.head if isinstance(t, Variable)}

    def existential_variables(self) -> set[Variable]:
        """Body variables that do not appear in the head."""
        return self.variables() - self.head_variables()

    def predicates(self) -> set[str]:
        """The predicate names used by the body conjuncts."""
        return {atom.predicate for atom in self.body}

    # -- schema -------------------------------------------------------------

    def validate_pfl(self) -> "ConjunctiveQuery":
        """Check every body conjunct against the P_FL schema; return self."""
        for atom in self.body:
            validate_pfl_atom(atom)
        return self

    # -- transformation -----------------------------------------------------

    def apply(self, sigma: Substitution) -> "ConjunctiveQuery":
        """The image of the whole query under *sigma* (head and body)."""
        return ConjunctiveQuery(
            self.name,
            tuple(sigma.apply_term(t) for t in self.head),
            sigma.apply_atoms(self.body),
        )

    def rename_apart(
        self, taken: Iterable[Variable], namer: Optional[Iterator[Variable]] = None
    ) -> tuple["ConjunctiveQuery", Substitution]:
        """Rename this query's variables away from *taken*.

        Returns the renamed query and the renaming substitution.  Used when
        two queries are put side by side (e.g. containment of a query in
        itself) so that shared variable names do not accidentally link them.
        """
        taken = set(taken)
        namer = namer or fresh_variable_namer()
        mapping: dict[Variable, Term] = {}
        mine = self.variables()
        for var in sorted(mine, key=lambda v: v.name):
            if var in taken:
                fresh = next(namer)
                while fresh in taken or fresh in mine or fresh in mapping.values():
                    fresh = next(namer)
                mapping[var] = fresh
        sigma = Substitution(mapping)
        return self.apply(sigma), sigma

    def with_body(self, body: Iterable[Atom]) -> "ConjunctiveQuery":
        """A copy of this query with a different body (same name and head)."""
        return ConjunctiveQuery(self.name, self.head, body)

    def with_head(self, head: Sequence[Term]) -> "ConjunctiveQuery":
        """A copy of this query with a different head tuple."""
        return ConjunctiveQuery(self.name, head, self.body)

    # -- canonical database --------------------------------------------------

    def canonical_atoms(self) -> tuple[Atom, ...]:
        """The body viewed as a database (the chase's starting instance).

        Per the paper's construction the query variables themselves act as
        values, so this is simply the body tuple.
        """
        return self.body

    # -- canonical form -------------------------------------------------------

    def canonical_key(self) -> tuple:
        """A hashable key invariant under variable renaming (alpha-equivalence).

        Two queries receive the same key exactly when one is the other with
        its variables bijectively renamed (possibly after reordering body
        conjuncts) — i.e. when they denote the *same* conjunction.  The key
        is what chase caches index on, so that ``q(X) :- member(X, C)`` and
        ``p(Y) :- member(Y, D)`` share one chase.

        Construction: body conjuncts are sorted by a variable-free
        signature (predicate plus the pattern of constants/nulls), then
        every variable is renamed to its first-occurrence ordinal over the
        head followed by the sorted body.  The query *name* is deliberately
        excluded — it never affects containment semantics.  The key is
        injective up to renaming: it spells out the full head pattern and
        every conjunct, so a collision implies alpha-equivalence.
        """
        cached = self._canonical
        if cached is not None:
            return cached

        def signature(atom: Atom) -> tuple:
            return (
                atom.predicate,
                tuple(
                    ("v",)
                    if isinstance(t, Variable)
                    else ("c", t.name)
                    if isinstance(t, Constant)
                    else ("n", t.index)
                    for t in atom.args
                ),
            )

        ordered = sorted(self.body, key=signature)
        mapping: dict[Variable, int] = {}

        def key_term(term: Term) -> tuple:
            if isinstance(term, Variable):
                ordinal = mapping.get(term)
                if ordinal is None:
                    ordinal = mapping[term] = len(mapping)
                return ("v", ordinal)
            if isinstance(term, Constant):
                return ("c", term.name)
            assert isinstance(term, Null)
            return ("n", term.index)

        head_key = tuple(key_term(t) for t in self.head)
        body_key = tuple(
            (atom.predicate, tuple(key_term(t) for t in atom.args))
            for atom in ordered
        )
        key = (head_key, body_key)
        object.__setattr__(self, "_canonical", key)
        return key

    @property
    def canonical_hash(self) -> int:
        """``hash(self.canonical_key())`` — equal for alpha-equivalent queries."""
        return hash(self.canonical_key())

    # -- equality / display ---------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self._hash == other._hash
            and self.name == other.name
            and self.head == other.head
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"

    def __str__(self) -> str:
        head_inner = ", ".join(str(t) for t in self.head)
        body_inner = ", ".join(str(a) for a in self.body)
        return f"{self.name}({head_inner}) :- {body_inner}."
