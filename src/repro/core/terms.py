"""Terms: constants, variables, and labeled nulls.

The paper's chase (Definition 2) equates values with a *lexicographic
order* in which

    real constants  <  fresh constants (labeled nulls)  <  variables,

fresh constants following "all other constants in the segment of the chase
constructed so far".  The total order implemented by :func:`term_sort_key`
realises exactly that convention: when the EGD rho_4 equates two terms the
chase keeps the smaller one, and a merge of two distinct real constants is
a chase failure.

Terms are immutable, hashable and interned, so identity comparisons are
cheap and instances can be freely shared between queries, chase instances
and substitutions.
"""

from __future__ import annotations

import itertools
import re
from typing import Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Null",
    "NullFactory",
    "TermArena",
    "term_sort_key",
    "is_ground",
]

_CONSTANT_RE = re.compile(r"^[a-z0-9_][A-Za-z0-9_.'-]*$|^\"")
_VARIABLE_RE = re.compile(r"^[A-Z_][A-Za-z0-9_]*$")


class Term:
    """Abstract base class of every term.

    Concrete subclasses: :class:`Constant`, :class:`Variable` and
    :class:`Null`.  The class itself is never instantiated.
    """

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        """Whether this term is a :class:`Constant`."""
        return isinstance(self, Constant)

    @property
    def is_variable(self) -> bool:
        """Whether this term is a :class:`Variable`."""
        return isinstance(self, Variable)

    @property
    def is_null(self) -> bool:
        """Whether this term is a labeled :class:`Null`."""
        return isinstance(self, Null)


class Constant(Term):
    """A real (named) constant such as ``john`` or ``person``.

    In F-logic constants name objects, classes *and* attributes alike —
    that uniformity is precisely what makes meta-queries possible.
    """

    __slots__ = ("name",)
    _interned: dict[str, "Constant"] = {}

    def __new__(cls, name: str) -> "Constant":
        cached = cls._interned.get(name)
        if cached is not None:
            return cached
        if not isinstance(name, str) or not name:
            raise ValueError(f"constant name must be a non-empty string, got {name!r}")
        obj = object.__new__(cls)
        object.__setattr__(obj, "name", name)
        cls._interned[name] = obj
        return obj

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Constant is immutable")

    def __reduce__(self):
        # Re-enter __new__ on unpickle so interning survives process
        # boundaries (the parallel batch pipeline ships terms to workers).
        return (Constant, (self.name,))

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("const", self.name))

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Constant) and other.name == self.name)


class Variable(Term):
    """A query variable such as ``X`` or ``Att``.

    During the chase the variables of the chased query behave as values of
    the canonical database; they sort *after* every constant and null so
    that EGD repair prefers to keep constants.
    """

    __slots__ = ("name",)
    _interned: dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        cached = cls._interned.get(name)
        if cached is not None:
            return cached
        if not isinstance(name, str) or not name:
            raise ValueError(f"variable name must be a non-empty string, got {name!r}")
        obj = object.__new__(cls)
        object.__setattr__(obj, "name", name)
        cls._interned[name] = obj
        return obj

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Variable is immutable")

    def __reduce__(self):
        return (Variable, (self.name,))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Variable) and other.name == self.name)


class Null(Term):
    """A fresh constant (labeled null) invented by the existential rule rho_5.

    Nulls carry a globally unique, monotonically increasing index; the
    index order *is* the paper's "lexicographically follows all other
    constants" order among fresh values.
    """

    __slots__ = ("index",)
    _interned: dict[int, "Null"] = {}

    def __new__(cls, index: int) -> "Null":
        cached = cls._interned.get(index)
        if cached is not None:
            return cached
        if not isinstance(index, int) or index < 0:
            raise ValueError(f"null index must be a non-negative int, got {index!r}")
        obj = object.__new__(cls)
        object.__setattr__(obj, "index", index)
        cls._interned[index] = obj
        return obj

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Null is immutable")

    def __reduce__(self):
        return (Null, (self.index,))

    @property
    def name(self) -> str:
        """Printable name of the null, ``_v<index>``."""
        return f"_v{self.index}"

    def __repr__(self) -> str:
        return f"Null({self.index})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("null", self.index))

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Null) and other.index == self.index)


class NullFactory:
    """Mints fresh :class:`Null` terms with chase-local indexes.

    Each chase run owns a factory, so null indexes are deterministic for a
    given query and rule application order — which makes chase traces
    reproducible and testable.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def fresh(self) -> Null:
        """Return the next fresh null."""
        return Null(next(self._counter))

    def peek(self) -> int:
        """Index the *next* call to :meth:`fresh` would use (for diagnostics)."""
        nxt = next(self._counter)
        self._counter = itertools.chain([nxt], self._counter)
        return nxt


class TermArena:
    """A dense intern table mapping terms to contiguous small ints.

    The dense homomorphism kernel (:mod:`repro.kernel`) stores facts
    columnarly and candidate sets as bitsets, which requires every value
    to be a machine integer rather than an interned *object*.  An arena
    assigns each distinct term the next free id (``0, 1, 2, ...``) on
    first sight and answers both directions in O(1):

    >>> arena = TermArena()
    >>> a = arena.intern(Constant("john"))
    >>> arena.term(a) is Constant("john")
    True
    >>> arena.intern(Constant("john")) == a   # stable on re-intern
    True

    Ids are arena-local: two arenas may assign the same term different
    ids, so ids must never leak across :class:`~repro.kernel.DenseIndex`
    boundaries.  The arena only ever grows — EGD merges retire *facts*,
    not symbols — which keeps every previously handed-out id valid for
    the lifetime of the arena.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self):
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def intern(self, term: Term) -> int:
        """The id of *term*, allocating the next free one on first sight."""
        ident = self._ids.get(term)
        if ident is None:
            ident = len(self._terms)
            self._ids[term] = ident
            self._terms.append(term)
        return ident

    def intern_many(self, terms) -> list[int]:
        """Intern a sequence of terms; returns their ids in order."""
        return [self.intern(t) for t in terms]

    def id_of(self, term: Term) -> Union[int, None]:
        """The id of *term* if already interned, else ``None`` (no allocation)."""
        return self._ids.get(term)

    def term(self, ident: int) -> Term:
        """The term carrying id *ident* (inverse of :meth:`intern`)."""
        return self._terms[ident]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def kind_counts(self) -> dict[str, int]:
        """How many interned symbols are constants / variables / nulls."""
        counts = {"constants": 0, "variables": 0, "nulls": 0}
        for term in self._terms:
            if isinstance(term, Constant):
                counts["constants"] += 1
            elif isinstance(term, Variable):
                counts["variables"] += 1
            else:
                counts["nulls"] += 1
        return counts

    def __repr__(self) -> str:
        return f"TermArena({len(self._terms)} symbols)"


# Kind ranks for the chase's lexicographic order (Definition 2):
# constants < nulls < variables.
_KIND_RANK = {Constant: 0, Null: 1, Variable: 2}


def term_sort_key(term: Term) -> tuple:
    """Sort key realizing the paper's lexicographic order on chase values.

    Real constants sort first (alphabetically), then nulls (by creation
    index, i.e. chase order), then variables (alphabetically).  EGD repair
    replaces the larger term by the smaller one everywhere.
    """
    if isinstance(term, Constant):
        return (0, term.name)
    if isinstance(term, Null):
        return (1, term.index)
    if isinstance(term, Variable):
        return (2, term.name)
    raise TypeError(f"not a term: {term!r}")


def is_ground(term: Term) -> bool:
    """True when *term* is a value (constant or null), not a variable."""
    return not isinstance(term, Variable)


def parse_term(token: str) -> Union[Constant, Variable]:
    """Interpret a bare token using the paper's capitalization convention.

    Capitalised identifiers (and ``_``-prefixed ones) are variables;
    everything else is a constant.  Quoted strings are constants verbatim.
    """
    if _VARIABLE_RE.match(token):
        return Variable(token)
    return Constant(token)
