"""Substitutions and homomorphism primitives.

A :class:`Substitution` is a finite map from variables to terms.  Applied
to an atom it rewrites every variable in its domain and leaves constants,
nulls and unmapped variables untouched.  A *homomorphism* in the paper's
sense (Definition 1) is a substitution that maps constants to themselves —
which is automatic here, since constants are never in the domain — plus a
target-specific condition (every image atom must be a tuple of the target
instance) checked by the homomorphism engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .atoms import Atom
from .errors import SubstitutionError, UnificationError
from .terms import Term, Variable

__all__ = ["Substitution", "unify_atoms", "match_atom"]


class Substitution:
    """An immutable variable-to-term mapping.

    All mutating-style operations (:meth:`bind`, :meth:`compose`) return a
    new substitution, which makes backtracking search trivially safe.
    """

    __slots__ = ("_map",)

    #: Shared empty substitution (substitutions are immutable, so this is safe).
    EMPTY: "Substitution"

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None):
        m = dict(mapping) if mapping else {}
        for key, value in m.items():
            if not isinstance(key, Variable):
                raise SubstitutionError(f"substitution key is not a Variable: {key!r}")
            if not isinstance(value, Term):
                raise SubstitutionError(f"substitution value is not a Term: {value!r}")
        object.__setattr__(self, "_map", m)

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Substitution is immutable")

    def __reduce__(self):
        return (Substitution, (self._map,))

    @classmethod
    def from_trusted(cls, mapping: dict) -> "Substitution":
        """Wrap an already-validated ``{Variable: Term}`` dict without checks.

        The dense kernel decodes solutions straight out of its term
        arena, so keys and values are Variables/Terms by construction;
        skipping per-entry validation matters when a search enumerates
        thousands of solutions.  The caller must hand over ownership of
        *mapping* (it is stored, not copied).
        """
        sub = object.__new__(cls)
        object.__setattr__(sub, "_map", mapping)
        return sub

    # -- mapping protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        """The image of *var*, or *default* when unbound."""
        return self._map.get(var, default)

    def items(self):
        """The ``(variable, term)`` pairs, dict-style."""
        return self._map.items()

    def domain(self) -> set[Variable]:
        """The set of variables this substitution binds."""
        return set(self._map)

    # -- construction -------------------------------------------------------

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution with ``var -> term`` added.

        Rebinding a variable to the same term is a no-op; rebinding it to a
        different term raises :class:`SubstitutionError` — callers that want
        unification semantics should check first.
        """
        existing = self._map.get(var)
        if existing is not None:
            if existing == term:
                return self
            raise SubstitutionError(
                f"variable {var} already bound to {existing}, cannot rebind to {term}"
            )
        new_map = dict(self._map)
        new_map[var] = term
        return Substitution(new_map)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``other ∘ self``: apply *self* first, then *other*.

        ``(other ∘ self)(x) = other(self(x))`` for every term ``x``.  Matches
        the paper's composition of homomorphisms (e.g. Theorem 12's
        ``lambda ∘ mu``).
        """
        new_map: dict[Variable, Term] = {}
        for var, term in self._map.items():
            new_map[var] = other.apply_term(term)
        for var, term in other._map.items():
            new_map.setdefault(var, term)
        return Substitution(new_map)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the restriction of this substitution to *variables*."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    # -- application --------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """The image of *term*: mapped if a bound variable, itself otherwise."""
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """The image of *atom* under this substitution."""
        if not self._map:
            return atom
        return Atom(atom.predicate, tuple(self.apply_term(t) for t in atom.args))

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """The image of a set/sequence of conjuncts (paper: ``mu(C)``)."""
        return tuple(self.apply_atom(a) for a in atoms)

    # -- equality -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v} -> {t}" for v, t in sorted(self._map.items(), key=lambda kv: kv[0].name))
        return f"{{{inner}}}"


Substitution.EMPTY = Substitution()


def match_atom(pattern: Atom, fact: Atom, base: Optional[Substitution] = None) -> Optional[Substitution]:
    """One-way matching: extend *base* so that ``sigma(pattern) == fact``.

    Variables may occur only in *pattern*; constants and nulls must match
    exactly.  Returns the extended substitution, or ``None`` when no match
    exists.  This is the workhorse of both the Datalog engine and the
    homomorphism search.
    """
    if pattern.predicate != fact.predicate or pattern.arity != fact.arity:
        return None
    sigma = base if base is not None else Substitution.EMPTY
    bindings: Optional[dict[Variable, Term]] = None
    for pat_term, fact_term in zip(pattern.args, fact.args):
        if isinstance(pat_term, Variable):
            bound = sigma.get(pat_term)
            if bound is None and bindings is not None:
                bound = bindings.get(pat_term)
            if bound is None:
                if bindings is None:
                    bindings = {}
                bindings[pat_term] = fact_term
            elif bound != fact_term:
                return None
        elif pat_term != fact_term:
            return None
    if not bindings:
        return sigma
    merged = dict(sigma._map)
    merged.update(bindings)
    return Substitution(merged)


def unify_atoms(left: Atom, right: Atom) -> Substitution:
    """Most general unifier of two atoms (two-way), or raise UnificationError.

    Used by the query-analysis tooling; the chase and containment engines
    only ever need one-way matching.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        raise UnificationError(f"predicates differ: {left} vs {right}")
    mapping: dict[Variable, Term] = {}

    def walk(term: Term) -> Term:
        while isinstance(term, Variable) and term in mapping:
            term = mapping[term]
        return term

    for a, b in zip(left.args, right.args):
        a, b = walk(a), walk(b)
        if a == b:
            continue
        if isinstance(a, Variable):
            mapping[a] = b
        elif isinstance(b, Variable):
            mapping[b] = a
        else:
            raise UnificationError(f"cannot unify {a} with {b} in {left} / {right}")

    # Flatten chains so the result is idempotent.
    flat = {v: walk(t) for v, t in mapping.items()}
    return Substitution(flat)
