"""Pretty-printing P_FL content back into F-logic Lite source.

:func:`decode_atom` (in :mod:`repro.flogic.encoding`) renders one atom;
this module produces *programs*: fact bases grouped into compact
molecules (one ``host[spec, spec, ...]`` per host where possible), and
conjunctive queries as rules in the paper's syntax.  Everything printed
here re-parses to the same P_FL content (tested by the round-trip
property suite).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..core.atoms import DATA, FUNCT, MANDATORY, MEMBER, SUB, TYPE, Atom
from ..core.errors import EncodingError
from ..core.query import ConjunctiveQuery
from ..core.terms import Term

__all__ = ["facts_to_flogic", "query_to_flogic", "program_to_flogic"]


def _spec(atom: Atom) -> tuple[Term, str]:
    """(host, rendered in-bracket spec) for a frame-style atom."""
    if atom.predicate == DATA:
        host, attr, value = atom.args
        return host, f"{attr}->{value}"
    if atom.predicate == TYPE:
        host, attr, target = atom.args
        return host, f"{attr}*=>{target}"
    if atom.predicate == MANDATORY:
        attr, host = atom.args
        return host, f"{attr} {{1:*}} *=> _"
    if atom.predicate == FUNCT:
        attr, host = atom.args
        return host, f"{attr} {{0:1}} *=> _"
    raise EncodingError(f"not a frame-style atom: {atom}")


def facts_to_flogic(atoms: Iterable[Atom], *, group: bool = True) -> str:
    """Render ground P_FL atoms as an F-logic fact program.

    With *group* (default), frame-style specs of one host are merged into
    a single molecule; membership and subclassing always print one per
    line.  Statement order is deterministic (sorted).
    """
    memberships: list[str] = []
    subclasses: list[str] = []
    frames: dict[Term, list[str]] = defaultdict(list)
    singletons: list[str] = []
    for atom in atoms:
        if atom.predicate == MEMBER:
            memberships.append(f"{atom.args[0]}:{atom.args[1]}.")
        elif atom.predicate == SUB:
            subclasses.append(f"{atom.args[0]}::{atom.args[1]}.")
        else:
            host, spec = _spec(atom)
            if group:
                frames[host].append(spec)
            else:
                singletons.append(f"{host}[{spec}].")
    lines = sorted(subclasses) + sorted(memberships)
    if group:
        for host in sorted(frames, key=str):
            specs = ", ".join(sorted(frames[host]))
            lines.append(f"{host}[{specs}].")
    else:
        lines.extend(sorted(singletons))
    return "\n".join(lines)


def _molecule(atom: Atom) -> str:
    """One body conjunct in F-logic notation (falls back to predicate form).

    Frame atoms whose terms include variables print in molecule syntax;
    membership and subclassing use ``:`` / ``::``.
    """
    if atom.predicate == MEMBER:
        return f"{atom.args[0]}:{atom.args[1]}"
    if atom.predicate == SUB:
        return f"{atom.args[0]}::{atom.args[1]}"
    host, spec = _spec(atom)
    return f"{host}[{spec}]"


def query_to_flogic(query: ConjunctiveQuery) -> str:
    """Render a P_FL conjunctive query as an F-logic rule.

    Example: ``q(A, B) :- T1[A*=>T2], T2::T3, T3[B*=>W1].``
    """
    head_inner = ", ".join(str(t) for t in query.head)
    body_inner = ", ".join(_molecule(a) for a in query.body)
    return f"{query.name}({head_inner}) :- {body_inner}."


def program_to_flogic(
    facts: Iterable[Atom] = (),
    queries: Iterable[ConjunctiveQuery] = (),
) -> str:
    """Render facts and rules together, facts first."""
    parts = []
    fact_text = facts_to_flogic(facts)
    if fact_text:
        parts.append(fact_text)
    for query in queries:
        parts.append(query_to_flogic(query))
    return "\n".join(parts)
