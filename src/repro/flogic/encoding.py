"""Encoding F-logic Lite syntax into the P_FL relational vocabulary.

The translation follows the paper's Section 2 table exactly:

==============================  ==========================================
F-logic statement               P_FL atoms
==============================  ==========================================
``o : c``                       ``member(o, c)``
``c1 :: c2``                    ``sub(c1, c2)``
``o[a -> v]``                   ``data(o, a, v)``
``o[a *=> t]``                  ``type(o, a, t)``
``o[a {1:*} *=> t]``            ``mandatory(a, o)`` and ``type(o, a, t)``
``o[a {1:*} *=> _]``            ``mandatory(a, o)``
``o[a {0:1} *=> t]``            ``funct(a, o)`` and ``type(o, a, t)``
``o[a {0:1} *=> _]``            ``funct(a, o)``
==============================  ==========================================

The inverse direction (:func:`decode_atom`) renders P_FL atoms back in
F-logic notation for display.
"""

from __future__ import annotations

import itertools
from ..core.atoms import (
    DATA,
    FUNCT,
    MANDATORY,
    MEMBER,
    SUB,
    TYPE,
    Atom,
    data,
    funct,
    mandatory,
    member,
    sub,
    type_,
    validate_pfl_atom,
)
from ..core.errors import EncodingError
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable
from .ast import (
    Cardinality,
    DataAtom,
    FLAtom,
    FLFact,
    FLProgram,
    FLQuery,
    FLRule,
    IsaAtom,
    PredicateAtom,
    SignatureAtom,
    SubclassAtom,
)

__all__ = [
    "encode_atom",
    "encode_fact",
    "encode_rule",
    "encode_query",
    "encode_program",
    "decode_atom",
]


def encode_atom(atom: FLAtom) -> tuple[Atom, ...]:
    """The P_FL atoms asserted by one F-logic AST atom."""
    if isinstance(atom, IsaAtom):
        return (member(atom.instance, atom.cls),)
    if isinstance(atom, SubclassAtom):
        return (sub(atom.child, atom.parent),)
    if isinstance(atom, DataAtom):
        return (data(atom.host, atom.attribute, atom.value),)
    if isinstance(atom, SignatureAtom):
        out: list[Atom] = []
        if atom.cardinality is Cardinality.MANDATORY:
            out.append(mandatory(atom.attribute, atom.host))
        elif atom.cardinality is Cardinality.FUNCTIONAL:
            out.append(funct(atom.attribute, atom.host))
        if atom.value_type is not None:
            out.append(type_(atom.host, atom.attribute, atom.value_type))
        if not out:
            raise EncodingError(
                f"signature {atom} asserts neither a type nor a cardinality"
            )
        return tuple(out)
    if isinstance(atom, PredicateAtom):
        return (validate_pfl_atom(Atom(atom.predicate, atom.args)),)
    raise EncodingError(f"cannot encode {atom!r}")


def encode_fact(fact: FLFact) -> tuple[Atom, ...]:
    """Encode a fact; the result must be ground."""
    atoms = encode_atom(fact.atom)
    for encoded in atoms:
        if not encoded.is_ground:
            raise EncodingError(f"fact {fact} contains variables: {encoded}")
    return atoms


def encode_rule(rule: FLRule) -> ConjunctiveQuery:
    """Encode ``q(X,..) :- body.`` as a conjunctive query over P_FL."""
    body: list[Atom] = []
    for fl_atom in rule.body:
        body.extend(encode_atom(fl_atom))
    return ConjunctiveQuery(rule.head.predicate, rule.head.args, body).validate_pfl()


def encode_query(query: FLQuery, name: str = "query") -> ConjunctiveQuery:
    """Encode ``?- body.`` with the named body variables as the answer tuple.

    Variables introduced by ``_`` (named ``_G<n>`` by the parser) stay
    existential, matching the Prolog convention the paper's examples use.
    """
    body: list[Atom] = []
    for fl_atom in query.body:
        body.extend(encode_atom(fl_atom))
    head: list[Variable] = []
    seen: set[Variable] = set()
    for atom in body:
        for term in atom.args:
            if (
                isinstance(term, Variable)
                and term not in seen
                and not term.name.startswith("_G")
            ):
                seen.add(term)
                head.append(term)
    return ConjunctiveQuery(name, tuple(head), body).validate_pfl()


def encode_program(
    program: FLProgram,
) -> tuple[tuple[Atom, ...], tuple[ConjunctiveQuery, ...], tuple[ConjunctiveQuery, ...]]:
    """Encode a whole program: (facts, named rules, ask-queries)."""
    facts: list[Atom] = []
    rules: list[ConjunctiveQuery] = []
    queries: list[ConjunctiveQuery] = []
    ask_counter = itertools.count(1)
    for statement in program.statements:
        if isinstance(statement, FLFact):
            facts.extend(encode_fact(statement))
        elif isinstance(statement, FLRule):
            rules.append(encode_rule(statement))
        elif isinstance(statement, FLQuery):
            queries.append(encode_query(statement, name=f"query{next(ask_counter)}"))
        else:  # pragma: no cover - exhaustive over FLStatement
            raise EncodingError(f"unknown statement {statement!r}")
    return tuple(facts), tuple(rules), tuple(queries)


def decode_atom(atom: Atom) -> str:
    """Render one P_FL atom in F-logic surface notation."""
    pred = atom.predicate
    if pred == MEMBER:
        o, c = atom.args
        return f"{o}:{c}"
    if pred == SUB:
        c1, c2 = atom.args
        return f"{c1}::{c2}"
    if pred == DATA:
        o, a, v = atom.args
        return f"{o}[{a}->{v}]"
    if pred == TYPE:
        o, a, t = atom.args
        return f"{o}[{a}*=>{t}]"
    if pred == MANDATORY:
        a, o = atom.args
        return f"{o}[{a} {{1:*}} *=> _]"
    if pred == FUNCT:
        a, o = atom.args
        return f"{o}[{a} {{0:1}} *=> _]"
    raise EncodingError(f"not a P_FL atom: {atom}")
