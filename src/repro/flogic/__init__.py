"""The F-logic Lite language front end: parser, encoder, knowledge base."""

from .ast import (
    Cardinality,
    DataAtom,
    FLAtom,
    FLFact,
    FLProgram,
    FLQuery,
    FLRule,
    FLStatement,
    IsaAtom,
    PredicateAtom,
    SignatureAtom,
    SubclassAtom,
)
from .encoding import (
    decode_atom,
    encode_atom,
    encode_fact,
    encode_program,
    encode_query,
    encode_rule,
)
from .kb import Answer, KnowledgeBase
from .lexer import Token, TokenType, tokenize
from .parser import Parser, parse_program, parse_statement
from .printer import facts_to_flogic, program_to_flogic, query_to_flogic

__all__ = [
    # lexer / parser
    "tokenize",
    "Token",
    "TokenType",
    "Parser",
    "parse_program",
    "parse_statement",
    # ast
    "Cardinality",
    "IsaAtom",
    "SubclassAtom",
    "DataAtom",
    "SignatureAtom",
    "PredicateAtom",
    "FLAtom",
    "FLFact",
    "FLRule",
    "FLQuery",
    "FLStatement",
    "FLProgram",
    # encoding
    "encode_atom",
    "encode_fact",
    "encode_rule",
    "encode_query",
    "encode_program",
    "decode_atom",
    # printer
    "facts_to_flogic",
    "query_to_flogic",
    "program_to_flogic",
    # kb
    "KnowledgeBase",
    "Answer",
]
