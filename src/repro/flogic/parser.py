"""Recursive-descent parser for F-logic Lite.

Grammar (terminals in quotes; ``*`` / ``+`` are repetition)::

    program    := statement*
    statement  := fact | rule | query
    fact       := molecule '.'
    rule       := predicate ':-' body '.'
    query      := '?-' body '.'
    body       := body_atom (',' body_atom)*
    body_atom  := predicate | molecule
    molecule   := term ( ':' term | '::' term | '[' spec (',' spec)* ']' )
    spec       := term '->' term
                | term card? '*=>' (term | '_')
    card       := '{' bound (':' | ',') bound '}'        # {0:1} or {1:*}
    predicate  := IDENT '(' (term (',' term)*)? ')'
    term       := IDENT | VARIABLE | NUMBER | STRING | '_'

The paper's ``_`` is context sensitive:

* as a plain term it becomes a fresh variable (each occurrence distinct);
* as the *type* of a signature that carries a cardinality it means "no
  type asserted" (``O[A {1:*} *=> _]`` encodes to ``mandatory(A, O)``
  alone, exactly as in the paper's encoding section);
* as the type of a cardinality-free signature in a rule/query body it is
  a fresh variable (``T3[B *=> _]`` from the paper's Section-1 example);
  in a fact that form is rejected — it would assert nothing.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.errors import ParseError
from ..core.terms import Constant, Term, Variable
from .ast import (
    Cardinality,
    DataAtom,
    FLAtom,
    FLFact,
    FLProgram,
    FLQuery,
    FLRule,
    FLStatement,
    IsaAtom,
    PredicateAtom,
    SignatureAtom,
    SubclassAtom,
)
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_program", "parse_statement", "Parser"]


class Parser:
    """One-pass recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self._tokens = list(tokenize(text))
        self._pos = 0
        self._anon_counter = itertools.count(1)

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {token_type.value!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._peek().type is token_type:
            return self._advance()
        return None

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- entry points -----------------------------------------------------------

    def parse_program(self) -> FLProgram:
        statements: list[FLStatement] = []
        while self._peek().type is not TokenType.EOF:
            statements.extend(self.parse_statements())
        return FLProgram(tuple(statements))

    def parse_statements(self) -> list[FLStatement]:
        """Parse one source statement.

        A multi-spec molecule fact such as ``john[age->33, dept->cs].``
        expands to one :class:`FLFact` per spec, hence the list return.
        Rules and queries always yield exactly one statement.
        """
        if self._accept(TokenType.QUERY):
            body = self._parse_body()
            self._expect(TokenType.DOT)
            return [FLQuery(tuple(body))]
        first = self._parse_head_or_molecule()
        if isinstance(first, PredicateAtom) and self._accept(TokenType.IMPLIES):
            body = self._parse_body()
            self._expect(TokenType.DOT)
            return [FLRule(first, tuple(body))]
        self._expect(TokenType.DOT)
        atoms = first if isinstance(first, list) else [first]
        return [FLFact(atom) for atom in atoms]

    # -- grammar productions -------------------------------------------------------

    def _parse_body(self) -> list[FLAtom]:
        atoms: list[FLAtom] = []
        while True:
            parsed = self._parse_body_atom()
            if isinstance(parsed, list):
                atoms.extend(parsed)
            else:
                atoms.append(parsed)
            if not self._accept(TokenType.COMMA):
                return atoms

    def _parse_body_atom(self):
        return self._parse_head_or_molecule(in_body=True)

    def _parse_head_or_molecule(self, in_body: bool = False):
        """A predicate atom, or a molecule (possibly several atoms)."""
        token = self._peek()
        if token.type is TokenType.IDENT and self._peek(1).type is TokenType.LPAREN:
            return self._parse_predicate()
        host = self._parse_term(in_body=in_body)
        if self._accept(TokenType.DOUBLE_COLON):
            parent = self._parse_term(in_body=in_body)
            return SubclassAtom(host, parent)
        if self._accept(TokenType.COLON):
            cls = self._parse_term(in_body=in_body)
            return IsaAtom(host, cls)
        if self._accept(TokenType.LBRACKET):
            specs = [self._parse_spec(host, in_body)]
            while self._accept(TokenType.COMMA):
                specs.append(self._parse_spec(host, in_body))
            self._expect(TokenType.RBRACKET)
            return specs if len(specs) > 1 else specs[0]
        raise self._error(
            f"expected ':', '::' or '[' after term {host}, found {self._peek().text!r}"
        )

    def _parse_predicate(self) -> PredicateAtom:
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LPAREN)
        args: list[Term] = []
        if self._peek().type is not TokenType.RPAREN:
            args.append(self._parse_term(in_body=True))
            while self._accept(TokenType.COMMA):
                args.append(self._parse_term(in_body=True))
        self._expect(TokenType.RPAREN)
        return PredicateAtom(name, tuple(args))

    def _parse_spec(self, host: Term, in_body: bool) -> FLAtom:
        attribute = self._parse_term(in_body=in_body)
        cardinality = self._parse_cardinality()
        if cardinality is None and self._accept(TokenType.ARROW):
            value = self._parse_term(in_body=in_body)
            return DataAtom(host, attribute, value)
        if self._accept(TokenType.INHERITABLE_ARROW):
            return self._parse_signature_target(host, attribute, cardinality, in_body)
        if self._peek().type is TokenType.PLAIN_ARROW:
            raise self._error(
                "non-inheritable signatures (=>) are outside F-logic Lite; "
                "use *=> instead"
            )
        raise self._error(
            f"expected '->' or '*=>' in molecule spec, found {self._peek().text!r}"
        )

    def _parse_signature_target(
        self,
        host: Term,
        attribute: Term,
        cardinality: Optional[Cardinality],
        in_body: bool,
    ) -> SignatureAtom:
        if self._accept(TokenType.ANON):
            if cardinality is not None:
                # O[A {1:*} *=> _]: cardinality only, no type atom.
                return SignatureAtom(host, attribute, None, cardinality)
            if in_body:
                # T3[B *=> _]: "B has *some* type" — a fresh variable.
                return SignatureAtom(host, attribute, self._fresh_variable(), None)
            raise self._error(
                "a signature fact with type _ and no cardinality asserts "
                "nothing; give a type or a cardinality"
            )
        value_type = self._parse_term(in_body=in_body)
        return SignatureAtom(host, attribute, value_type, cardinality)

    def _parse_cardinality(self) -> Optional[Cardinality]:
        if not self._accept(TokenType.LBRACE):
            return None
        low = self._parse_bound()
        if not (self._accept(TokenType.COLON) or self._accept(TokenType.COMMA)):
            raise self._error("expected ':' or ',' inside cardinality braces")
        high = self._parse_bound()
        self._expect(TokenType.RBRACE)
        if (low, high) == ("1", "*"):
            return Cardinality.MANDATORY
        if (low, high) == ("0", "1"):
            return Cardinality.FUNCTIONAL
        raise self._error(
            f"F-logic Lite admits only the cardinalities {{0:1}} and {{1:*}}, "
            f"got {{{low}:{high}}}"
        )

    def _parse_bound(self) -> str:
        if self._accept(TokenType.STAR):
            return "*"
        return self._expect(TokenType.NUMBER).text

    def _parse_term(self, in_body: bool) -> Term:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return Constant(token.text)
        if token.type is TokenType.NUMBER:
            self._advance()
            return Constant(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return Constant(token.text)
        if token.type is TokenType.VARIABLE:
            self._advance()
            if not in_body:
                raise ParseError(
                    f"variable {token.text} is not allowed in a fact",
                    token.line,
                    token.column,
                )
            return Variable(token.text)
        if token.type is TokenType.ANON:
            self._advance()
            if not in_body:
                raise ParseError(
                    "the anonymous term _ is not allowed in a fact",
                    token.line,
                    token.column,
                )
            return self._fresh_variable()
        raise self._error(f"expected a term, found {token.text!r}")

    def _fresh_variable(self) -> Variable:
        return Variable(f"_G{next(self._anon_counter)}")


def parse_program(text: str) -> FLProgram:
    """Parse a whole F-logic Lite program (facts, rules and queries)."""
    return Parser(text).parse_program()


def parse_statement(text: str) -> FLStatement:
    """Parse exactly one statement; trailing input is an error.

    A multi-spec molecule fact expands to several statements — use
    :func:`parse_program` for those.
    """
    parser = Parser(text)
    statements = parser.parse_statements()
    trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise ParseError(
            f"unexpected input after statement: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    if len(statements) != 1:
        raise ParseError(
            f"input expands to {len(statements)} statements; use parse_program"
        )
    return statements[0]
