"""F-logic Lite knowledge bases.

A :class:`KnowledgeBase` stores ground P_FL facts (loaded from F-logic
source text or added programmatically), materialises the consequences of
Sigma_FL, and answers conjunctive meta-queries over the materialised
instance.  This is the "database side" of the paper: the object
``q1(B) ⊆ q2(B)`` quantifies over exactly these databases — instances
closed under Sigma_FL — and the property-based tests use KBs to validate
containment verdicts against actual query evaluation.

Materialisation runs the chase on the fact base: the Datalog rules and
the functionality EGD always terminate, while the existential rule rho_5
may not (cyclic mandatory attributes), so value invention is bounded by
``max_invention_level``.  Answers that contain invented nulls are marked
and can be excluded (*certain answers*).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..chase.engine import ChaseConfig, ChaseEngine
from ..core.atoms import Atom, validate_pfl_atom
from ..core.errors import ChaseFailure, EncodingError, ReproError
from ..core.query import ConjunctiveQuery
from ..core.terms import Null, Term
from ..datalog.index import FactIndex
from ..dependencies.sigma_fl import SIGMA_FL
from ..homomorphism.search import all_homomorphisms
from .ast import FLAtom, FLFact, FLQuery, FLRule
from .encoding import encode_atom, encode_query, encode_rule
from .parser import parse_program

__all__ = ["Answer", "KnowledgeBase"]


class Answer(tuple):
    """One answer tuple; ``certain`` is False when it contains invented nulls."""

    __slots__ = ()

    @property
    def certain(self) -> bool:
        return not any(isinstance(t, Null) for t in self)

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self)
        marker = "" if self.certain else " (uncertain)"
        return f"({inner}){marker}"


class KnowledgeBase:
    """A mutable F-logic Lite fact base with Sigma_FL reasoning.

    Parameters
    ----------
    max_invention_level:
        Bound on the chase levels of value invention (rho_5) during
        materialisation.  Cyclic mandatory attributes make the full chase
        infinite; the default keeps one round of invented values, which is
        enough for certain-answer query evaluation in all acyclic cases
        and a sound under-approximation otherwise.
    """

    def __init__(self, *, max_invention_level: int = 4):
        self._base_facts: list[Atom] = []
        self._materialised: Optional[FactIndex] = None
        self._instance = None  # the ChaseInstance behind _materialised
        self._failed: Optional[str] = None
        self.max_invention_level = max_invention_level

    # -- loading ----------------------------------------------------------------

    def add(self, fact: Union[Atom, FLAtom, str]) -> "KnowledgeBase":
        """Add one fact: a P_FL atom, an AST atom, or F-logic source text."""
        if isinstance(fact, str):
            return self.load(fact)
        if isinstance(fact, Atom):
            atoms: Iterable[Atom] = (validate_pfl_atom(fact),)
        else:
            atoms = encode_atom(fact)
        for atom in atoms:
            if not atom.is_ground:
                raise EncodingError(f"KB facts must be ground: {atom}")
            self._base_facts.append(atom)
        self._invalidate()
        return self

    def load(self, text: str) -> "KnowledgeBase":
        """Parse and add every fact in *text* (rules/queries are rejected)."""
        program = parse_program(text)
        for statement in program.statements:
            if isinstance(statement, FLFact):
                for atom in encode_atom(statement.atom):
                    if not atom.is_ground:
                        raise EncodingError(f"KB facts must be ground: {atom}")
                    self._base_facts.append(atom)
            else:
                raise EncodingError(
                    f"only facts can be loaded into a KB, got: {statement}"
                )
        self._invalidate()
        return self

    def _invalidate(self) -> None:
        self._materialised = None
        self._instance = None
        self._failed = None

    # -- reasoning -----------------------------------------------------------------

    @property
    def base_facts(self) -> tuple[Atom, ...]:
        return tuple(self._base_facts)

    def schema_atoms(self) -> tuple[Atom, ...]:
        """The schema-level facts: subclassing, signatures, cardinalities.

        These are the atoms to pass as the ``schema`` of a *relative*
        containment check (``is_contained(q1, q2, schema=kb.schema_atoms())``):
        containment over every Sigma_FL database that shares this KB's
        schema, whatever its data.
        """
        schema_predicates = {"sub", "type", "mandatory", "funct"}
        return tuple(
            a for a in self._base_facts if a.predicate in schema_predicates
        )

    def __len__(self) -> int:
        return len(self._base_facts)

    def materialise(self) -> FactIndex:
        """The Sigma_FL closure of the fact base (cached until mutation).

        Raises :class:`ChaseFailure` when the facts violate functionality
        irreparably (two distinct constants for a functional attribute).
        """
        if self._failed is not None:
            raise ChaseFailure(self._failed)
        if self._materialised is not None:
            return self._materialised
        if not self._base_facts:
            self._materialised = FactIndex()
            return self._materialised
        pseudo_query = ConjunctiveQuery("kb", (), self._base_facts)
        engine = ChaseEngine(
            SIGMA_FL, ChaseConfig(max_level=self.max_invention_level)
        )
        result = engine.run(pseudo_query)
        if result.failed:
            self._failed = (
                "the knowledge base is inconsistent: a functional attribute "
                "has two distinct values"
            )
            raise ChaseFailure(self._failed)
        assert result.instance is not None
        self._instance = result.instance
        self._materialised = result.instance.index
        return self._materialised

    def is_consistent(self) -> bool:
        """True when materialisation succeeds (functionality repairable)."""
        try:
            self.materialise()
        except ChaseFailure:
            return False
        return True

    # -- query answering ---------------------------------------------------------------

    def ask(
        self,
        query: Union[ConjunctiveQuery, FLRule, FLQuery, str],
        *,
        certain_only: bool = False,
    ) -> list[Answer]:
        """Answers of a conjunctive meta-query over the materialised KB.

        Accepts a :class:`ConjunctiveQuery` over P_FL, a parsed rule/query,
        or F-logic source text (``?- body.`` or ``q(X) :- body.``).
        Answers are deduplicated and sorted for deterministic output.
        """
        cq = self._coerce_query(query)
        index = self.materialise()
        answers: set[tuple[Term, ...]] = set()
        for sigma in all_homomorphisms(cq, index):
            answers.add(tuple(sigma.apply_term(t) for t in cq.head))
        out = [Answer(t) for t in answers]
        if certain_only:
            out = [a for a in out if a.certain]
        out.sort(key=lambda a: tuple(str(t) for t in a))
        return out

    def holds(self, query: Union[ConjunctiveQuery, FLRule, FLQuery, str]) -> bool:
        """Boolean query: does the (possibly 0-ary) query have an answer?"""
        return bool(self.ask(query))

    def explain(self, fact: Union[Atom, str]):
        """The derivation tree of an entailed fact.

        *fact* is a ground P_FL atom or F-logic fact text (e.g.
        ``"john:person."``).  Returns a
        :class:`~repro.chase.instance.Derivation` whose leaves are base
        facts and whose inner nodes name the Sigma_FL rule applied.
        Raises :class:`ReproError` when the fact is not entailed.
        """
        if isinstance(fact, str):
            from .parser import parse_statement

            statement = parse_statement(fact)
            if not isinstance(statement, FLFact):
                raise ReproError(f"not a fact: {fact!r}")
            atoms = encode_atom(statement.atom)
            if len(atoms) != 1:
                raise ReproError(
                    f"{fact!r} encodes to {len(atoms)} atoms; explain one at a time"
                )
            atom = atoms[0]
        else:
            atom = validate_pfl_atom(fact)
        index = self.materialise()
        if atom not in index:
            raise ReproError(f"{atom} is not entailed by the knowledge base")
        assert self._instance is not None
        return self._instance.derivation_of(atom)

    @staticmethod
    def _coerce_query(
        query: Union[ConjunctiveQuery, FLRule, FLQuery, str]
    ) -> ConjunctiveQuery:
        if isinstance(query, ConjunctiveQuery):
            return query.validate_pfl()
        if isinstance(query, FLRule):
            return encode_rule(query)
        if isinstance(query, FLQuery):
            return encode_query(query)
        if isinstance(query, str):
            from .parser import parse_statement

            statement = parse_statement(query)
            if isinstance(statement, FLRule):
                return encode_rule(statement)
            if isinstance(statement, FLQuery):
                return encode_query(statement)
            raise ReproError(f"not a query: {query!r}")
        raise TypeError(f"cannot interpret {query!r} as a query")

    # -- serialisation ---------------------------------------------------------------

    def to_flogic(self, *, materialised: bool = False) -> str:
        """Render the KB as F-logic Lite source.

        With ``materialised=True`` the Sigma_FL closure is rendered
        instead of the base facts; conjuncts on invented values are
        skipped (nulls have no surface syntax).
        """
        from .printer import facts_to_flogic

        if materialised:
            atoms = [a for a in self.materialise() if not a.nulls()]
        else:
            atoms = self._base_facts
        return facts_to_flogic(atoms)

    def save(self, path) -> None:
        """Write the base facts to *path* as parseable F-logic source."""
        from pathlib import Path

        Path(path).write_text(self.to_flogic() + "\n")

    @classmethod
    def from_file(cls, path, **kwargs) -> "KnowledgeBase":
        """Load a KB from an F-logic fact file."""
        from pathlib import Path

        kb = cls(**kwargs)
        kb.load(Path(path).read_text())
        return kb

    def __repr__(self) -> str:
        return f"KnowledgeBase({len(self._base_facts)} base facts)"
