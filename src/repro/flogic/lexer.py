"""Tokenizer for the F-logic Lite surface syntax.

The token language covers exactly what the paper uses:

* membership ``john:student``, subclassing ``freshman::student``;
* data molecules ``john[age->33]``;
* signatures ``person[age*=>number]`` with optional cardinalities
  ``{0:1}`` / ``{1:*}`` (the paper also writes ``{1,*}``; both separators
  are accepted);
* Datalog-style rules ``q(A,B) :- body.`` and queries ``?- body.``;
* ``%`` and ``//`` line comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..core.errors import ParseError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "identifier"          # lowercase-initial: constants, predicates
    VARIABLE = "variable"         # capitalized or _-initial
    ANON = "anonymous"            # a lone _
    NUMBER = "number"
    STRING = "string"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    DOT = "."
    COLON = ":"
    DOUBLE_COLON = "::"
    IMPLIES = ":-"
    QUERY = "?-"
    ARROW = "->"
    INHERITABLE_ARROW = "*=>"
    PLAIN_ARROW = "=>"
    STAR = "*"
    EOF = "end of input"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})"


_SIMPLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; terminates with a single EOF token.

    Raises :class:`ParseError` on any character that starts no token.
    """
    line = 1
    col = 1
    i = 0
    n = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line, col)

    while i < n:
        ch = text[i]
        # -- whitespace and comments -------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "%" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        # -- multi-character operators ------------------------------------
        if text.startswith("*=>", i):
            yield Token(TokenType.INHERITABLE_ARROW, "*=>", start_line, start_col)
            i += 3
            col += 3
            continue
        if text.startswith("=>", i):
            yield Token(TokenType.PLAIN_ARROW, "=>", start_line, start_col)
            i += 2
            col += 2
            continue
        if text.startswith("->", i):
            yield Token(TokenType.ARROW, "->", start_line, start_col)
            i += 2
            col += 2
            continue
        if text.startswith("::", i):
            yield Token(TokenType.DOUBLE_COLON, "::", start_line, start_col)
            i += 2
            col += 2
            continue
        if text.startswith(":-", i):
            yield Token(TokenType.IMPLIES, ":-", start_line, start_col)
            i += 2
            col += 2
            continue
        if text.startswith("?-", i):
            yield Token(TokenType.QUERY, "?-", start_line, start_col)
            i += 2
            col += 2
            continue
        if ch == ":":
            yield Token(TokenType.COLON, ":", start_line, start_col)
            i += 1
            col += 1
            continue
        if ch == "*":
            yield Token(TokenType.STAR, "*", start_line, start_col)
            i += 1
            col += 1
            continue
        # -- single-character punctuation ----------------------------------
        if ch in _SIMPLE:
            yield Token(_SIMPLE[ch], ch, start_line, start_col)
            i += 1
            col += 1
            continue
        # -- strings ---------------------------------------------------------
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise error("unterminated string literal")
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                    continue
                buf.append(text[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            value = "".join(buf)
            yield Token(TokenType.STRING, value, start_line, start_col)
            width = j + 1 - i
            i = j + 1
            col += width
            continue
        # -- numbers ----------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                # A dot only joins the number when followed by a digit —
                # otherwise it is the end-of-statement dot.
                if text[j] == "." and not (j + 1 < n and text[j + 1].isdigit()):
                    break
                j += 1
            lexeme = text[i:j]
            yield Token(TokenType.NUMBER, lexeme, start_line, start_col)
            col += j - i
            i = j
            continue
        # -- identifiers and variables ------------------------------------------
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            lexeme = text[i:j]
            if lexeme == "_":
                kind = TokenType.ANON
            elif lexeme[0].isupper() or lexeme[0] == "_":
                kind = TokenType.VARIABLE
            else:
                kind = TokenType.IDENT
            yield Token(kind, lexeme, start_line, start_col)
            col += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")
    yield Token(TokenType.EOF, "", line, col)
