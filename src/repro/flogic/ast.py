"""Abstract syntax of F-logic Lite.

The AST mirrors the paper's surface notation: ``o:c``, ``c::d``,
``o[a->v]`` and signature molecules with optional ``{0:1}`` / ``{1:*}``
cardinalities.  Raw P_FL predicates (``member(X, Y)``, ...) are also
representable, so rule bodies can mix both notations exactly as the
paper's low-level encoding section does.

Terms in the AST are the library's core terms (:class:`Constant`,
:class:`Variable`); the paper's ``_`` is expanded to a fresh variable by
the parser, so anonymity never reaches the AST.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from ..core.terms import Term

__all__ = [
    "Cardinality",
    "IsaAtom",
    "SubclassAtom",
    "DataAtom",
    "SignatureAtom",
    "PredicateAtom",
    "FLAtom",
    "FLRule",
    "FLFact",
    "FLQuery",
    "FLProgram",
    "FLStatement",
]


class Cardinality(enum.Enum):
    """The two cardinality annotations of F-logic Lite."""

    #: ``{1:*}`` — the attribute is mandatory (at least one value).
    MANDATORY = "1:*"
    #: ``{0:1}`` — the attribute is functional (at most one value).
    FUNCTIONAL = "0:1"

    def __str__(self) -> str:
        return "{" + self.value + "}"


@dataclass(frozen=True)
class IsaAtom:
    """``instance : cls`` — class membership."""

    instance: Term
    cls: Term

    def __str__(self) -> str:
        return f"{self.instance}:{self.cls}"


@dataclass(frozen=True)
class SubclassAtom:
    """``child :: parent`` — the subclass relation."""

    child: Term
    parent: Term

    def __str__(self) -> str:
        return f"{self.child}::{self.parent}"


@dataclass(frozen=True)
class DataAtom:
    """``host[attribute -> value]`` — an attribute value."""

    host: Term
    attribute: Term
    value: Term

    def __str__(self) -> str:
        return f"{self.host}[{self.attribute}->{self.value}]"


@dataclass(frozen=True)
class SignatureAtom:
    """``host[attribute {card} *=> type]`` — a signature.

    ``value_type`` is ``None`` when the source wrote ``_`` *in a fact
    position* (the paper's ``O[A {1:*} *=> _]``), meaning the statement
    only asserts the cardinality.  In query bodies the parser replaces
    ``_`` by a fresh variable instead, so ``None`` never means "match
    anything" — it means "no type atom is asserted".
    """

    host: Term
    attribute: Term
    value_type: Optional[Term]
    cardinality: Optional[Cardinality] = None

    def __str__(self) -> str:
        card = f" {self.cardinality} " if self.cardinality else ""
        target = self.value_type if self.value_type is not None else "_"
        return f"{self.host}[{self.attribute}{card}*=>{target}]"


@dataclass(frozen=True)
class PredicateAtom:
    """A raw predicate application, e.g. ``member(X, person)``.

    Used both for P_FL predicates written directly in rule bodies and for
    rule heads such as ``q(A, B)``.
    """

    predicate: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


FLAtom = Union[IsaAtom, SubclassAtom, DataAtom, SignatureAtom, PredicateAtom]


@dataclass(frozen=True)
class FLFact:
    """A statement asserted as true, e.g. ``john:student.``"""

    atom: FLAtom

    def __str__(self) -> str:
        return f"{self.atom}."


@dataclass(frozen=True)
class FLRule:
    """A conjunctive rule ``q(X, Y) :- body.``"""

    head: PredicateAtom
    body: tuple[FLAtom, ...]

    def __str__(self) -> str:
        body_inner = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body_inner}."


@dataclass(frozen=True)
class FLQuery:
    """An ask-style query ``?- body.``

    Its answer variables are the named variables of the body in order of
    first occurrence (the conventional Prolog-style presentation).
    """

    body: tuple[FLAtom, ...]

    def __str__(self) -> str:
        body_inner = ", ".join(str(a) for a in self.body)
        return f"?- {body_inner}."


FLStatement = Union[FLFact, FLRule, FLQuery]


@dataclass(frozen=True)
class FLProgram:
    """A parsed program: facts, rules and queries in source order."""

    statements: tuple[FLStatement, ...]

    def facts(self) -> tuple[FLFact, ...]:
        return tuple(s for s in self.statements if isinstance(s, FLFact))

    def rules(self) -> tuple[FLRule, ...]:
        return tuple(s for s in self.statements if isinstance(s, FLRule))

    def queries(self) -> tuple[FLQuery, ...]:
        return tuple(s for s in self.statements if isinstance(s, FLQuery))

    def __len__(self) -> int:
        return len(self.statements)

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)
