"""repro — a reproduction of *Containment of Conjunctive Object Meta-Queries*
(Andrea Calì and Michael Kifer, VLDB 2006).

The library implements, from scratch:

* the **P_FL encoding** of F-logic Lite and the twelve-rule constraint set
  **Sigma_FL** (:mod:`repro.dependencies`);
* a generic **Datalog engine** (:mod:`repro.datalog`);
* the **chase** of Definition 2 with level accounting, chase graphs,
  primary paths and the excision lemmas (:mod:`repro.chase`);
* **query containment** under Sigma_FL via the Theorem-12 bounded chase,
  plus the classic Chandra–Merlin baseline (:mod:`repro.containment`);
* an **F-logic Lite language front end** — parser, encoder, knowledge base
  (:mod:`repro.flogic`) — and an **RDF/SPARQL-style bridge**
  (:mod:`repro.rdf`);
* workload generators, analysis tools and the experiment harness used by
  ``benchmarks/`` (:mod:`repro.workloads`, :mod:`repro.analysis`,
  :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import Variable, type_, sub, ConjunctiveQuery, is_contained
>>> T1, T2, T3, A, B, X = (Variable(n) for n in "T1 T2 T3 A B X".split())
>>> q = ConjunctiveQuery("q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, X)))
>>> qq = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, X)))
>>> bool(is_contained(q, qq))          # the paper's Section-1 example
True
"""

from .chase import (
    ChaseConfig,
    ChaseEngine,
    ChaseGraph,
    ChaseInstance,
    ChaseResult,
    chase,
)
# Concrete submodule imports (not the repro.containment package surface,
# which is a deprecation shim since the repro.api redesign).
from .containment.bounded import ContainmentChecker, is_contained, theorem12_bound
from .containment.classic import contained_classic
from .containment.minimize import MinimizationResult, minimize_query
from .containment.result import ContainmentReason, ContainmentResult, Decision
from .containment.store import ChaseStore, StoreStats
from .core import (
    AdmissionRejected,
    Atom,
    BudgetExceeded,
    ChaseBudgetExceeded,
    ExecutionCancelled,
    ExecutionInterrupted,
    ChaseFailure,
    ConjunctiveQuery,
    Constant,
    Null,
    ParseError,
    QueryError,
    ReproError,
    Substitution,
    Term,
    Variable,
    data,
    funct,
    mandatory,
    member,
    sub,
    type_,
)
from .dependencies import SIGMA_FL, SIGMA_FL_MINUS, rule_by_label
from .governance import (
    BudgetReport,
    CancelScope,
    ExecutionBudget,
    Fault,
    FaultInjector,
    Governor,
)
from .obs import (
    ContainmentProvenance,
    MetricsRegistry,
    Observability,
    Tracer,
)

from .store import RunSnapshot, SnapshotStore, StoreConfig

# The stable facade (imported last: it builds on everything above).
from .api import Engine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Term",
    "Constant",
    "Variable",
    "Null",
    "Atom",
    "Substitution",
    "ConjunctiveQuery",
    "member",
    "sub",
    "data",
    "type_",
    "mandatory",
    "funct",
    # dependencies
    "SIGMA_FL",
    "SIGMA_FL_MINUS",
    "rule_by_label",
    # chase
    "chase",
    "ChaseEngine",
    "ChaseConfig",
    "ChaseResult",
    "ChaseInstance",
    "ChaseGraph",
    # containment
    "is_contained",
    "ContainmentChecker",
    "theorem12_bound",
    "contained_classic",
    "ContainmentResult",
    "ContainmentReason",
    "Decision",
    "ChaseStore",
    "StoreStats",
    "minimize_query",
    "MinimizationResult",
    # storage
    "StoreConfig",
    "SnapshotStore",
    "RunSnapshot",
    # facade
    "Engine",
    # governance
    "ExecutionBudget",
    "BudgetReport",
    "CancelScope",
    "Governor",
    "Fault",
    "FaultInjector",
    # observability
    "Observability",
    "Tracer",
    "MetricsRegistry",
    "ContainmentProvenance",
    # errors
    "ReproError",
    "QueryError",
    "ParseError",
    "AdmissionRejected",
    "ChaseFailure",
    "ChaseBudgetExceeded",
    "BudgetExceeded",
    "ExecutionCancelled",
    "ExecutionInterrupted",
]
