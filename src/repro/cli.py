"""Command-line interface.

Installed as ``flq`` (F-Logic Queries); also runnable as
``python -m repro``.  Subcommands:

``flq check FILE [--explain] [--no-anytime] [--pool warm|cold]
[--deadline S] [--max-facts N] [--max-memory-mb M] [--trace FILE]
[--metrics FILE]``
    FILE holds two or more rules; check containment of the first in each
    of the others (under Sigma_FL and classically).  ``--explain`` prints
    decision provenance; ``--no-anytime`` disables the interleaved
    chase/search schedule; ``--pool`` picks how multi-group batches are
    dispatched — ``warm`` (default) routes through the
    :class:`repro.api.Engine` service pool whose workers persist across
    batches, ``cold`` builds a throwaway pool per call (the legacy
    behaviour); the governance flags put the whole batch under an
    :class:`~repro.governance.ExecutionBudget` — budget-stopped pairs
    report UNKNOWN and the command exits 3; ``--trace``/``--metrics``
    export the span tree and the metrics registry.

``flq serve [--max-active N] [--max-pending N] [--deadline S] ...``
    Long-running service mode: one JSON request per stdin line, one JSON
    response per stdout line (see :func:`_cmd_serve`).  A malformed or
    failing request reports ``{"ok": false, "error": ...}`` on its own
    line and the service keeps serving; EOF drains and exits 0.  The
    governance flags set the *service envelope* — per-request budgets
    can only tighten it.

``flq chase FILE [--max-level N] [--graph] [--deadline S] [--max-facts N]
[--max-memory-mb M] [--trace FILE] [--metrics FILE]``
    Chase the first rule in FILE and print the instance (and graph).
    Under a budget an interrupted chase prints its budget report and
    exits 3 instead of hanging on cyclic inputs.

``flq ask KB_FILE QUERY``
    Load an F-logic fact base and answer a query string.

``flq experiment ID``
    Run one experiment (E1..E13) or ``all``.

``flq termination FILE``
    Predict chase termination for the first rule in FILE.

``flq minimize FILE``
    Drop Sigma_FL-redundant conjuncts from every rule in FILE.

``flq classify FILE``
    Compute the containment taxonomy of the rules in FILE.

``flq explain KB_FILE [FACT]``
    Print the Sigma_FL derivation tree of an entailed fact — or, when
    FACT is omitted, the containment provenance (witness chase levels,
    rule-firing sequence) of the first rule against the others.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis.cycles import predict_chase_termination
from .api import Engine
from .chase.engine import ChaseConfig, ChaseEngine, chase
from .chase.graph import ChaseGraph
from .containment.bounded import ContainmentChecker
from .containment.classic import contained_classic
from .core.errors import ExecutionInterrupted, ReproError
from .core.query import ConjunctiveQuery
from .flogic.encoding import encode_query, encode_rule
from .flogic.kb import KnowledgeBase
from .flogic.parser import parse_program
from .governance.budget import ExecutionBudget, Governor
from .obs import MetricsRegistry, Observability, Tracer

__all__ = ["main", "build_parser"]


def _load_queries(path: str) -> list[ConjunctiveQuery]:
    program = parse_program(Path(path).read_text())
    queries: list[ConjunctiveQuery] = []
    for rule in program.rules():
        queries.append(encode_rule(rule))
    for i, ask in enumerate(program.queries(), start=1):
        queries.append(encode_query(ask, name=f"query{i}"))
    if not queries:
        raise ReproError(f"{path} contains no rules or queries")
    return queries


def _make_obs(args: argparse.Namespace) -> Optional[Observability]:
    """An Observability sink when ``--trace``/``--metrics`` was given.

    Returns ``None`` (so downstream code keeps the zero-cost no-op
    default) when neither flag is present.
    """
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    if trace is None and metrics is None:
        return None
    return Observability(
        tracer=Tracer() if trace is not None else None,
        metrics=MetricsRegistry() if metrics is not None else None,
    )


def _export_obs(args: argparse.Namespace, obs: Optional[Observability]) -> None:
    """Write the trace / metrics files the flags asked for."""
    if obs is None:
        return
    trace = getattr(args, "trace", None)
    if trace is not None and obs.tracer.enabled:
        obs.tracer.write(trace)
        print(f"trace written to {trace}", file=sys.stderr)
    metrics = getattr(args, "metrics", None)
    if metrics is not None and obs.metrics is not None:
        obs.metrics.write_json(metrics)
        print(f"metrics written to {metrics}", file=sys.stderr)


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "wall-clock budget; work stopped by the deadline reports "
            "UNKNOWN (check) or a budget report (chase) and exits 3"
        ),
    )
    parser.add_argument(
        "--max-facts",
        type=int,
        metavar="N",
        default=None,
        help="stop when the chase instance exceeds N conjuncts",
    )
    parser.add_argument(
        "--max-memory-mb",
        type=float,
        metavar="MB",
        default=None,
        help=(
            "stop when the chase instance's approximate resident size "
            "(sys.getsizeof sampling) exceeds MB megabytes"
        ),
    )


def _budget_from_args(args: argparse.Namespace) -> Optional[ExecutionBudget]:
    """An :class:`ExecutionBudget` from the governance flags, or ``None``."""
    deadline = getattr(args, "deadline", None)
    max_facts = getattr(args, "max_facts", None)
    max_memory_mb = getattr(args, "max_memory_mb", None)
    if deadline is None and max_facts is None and max_memory_mb is None:
        return None
    return ExecutionBudget(
        deadline_seconds=deadline,
        max_facts=max_facts,
        max_memory_bytes=(
            int(max_memory_mb * 1024 * 1024) if max_memory_mb is not None else None
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export a span trace (JSON, or CSV when FILE ends in .csv)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="export counters/gauges/histograms as JSON",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    queries = _load_queries(args.file)
    if len(queries) < 2:
        print("need at least two rules to check containment", file=sys.stderr)
        return 2
    obs = _make_obs(args)
    budget = _budget_from_args(args)
    q1 = queries[0]
    pairs = [(q1, q2) for q2 in queries[1:]]
    # Batch pipeline: every verdict draws on one shared chase of q1.  The
    # default anytime schedule extends that chase only as far as each
    # witness needs; --no-anytime chases to the largest bound up front.
    with Engine(obs=obs, budget=budget) as engine:
        if args.pool == "warm":
            results = engine.check_all(
                pairs,
                level_bound=args.level_bound,
                anytime=not args.no_anytime,
            )
        else:
            # Legacy cold path: a throwaway pool per call, no service.
            results = engine.checker.check_all(
                pairs,
                level_bound=args.level_bound,
                anytime=not args.no_anytime,
                budget=budget,
                parallel=True,
            )
        status = 0
        for q2, result in zip(queries[1:], results):
            print(result.explain())
            if result.unknown:
                status = 3
                continue
            classic = contained_classic(q1, q2)
            print(f"  (classic, constraint-free verdict: {classic.contained})")
            if args.explain:
                provenance = result.explain_data()
                if provenance is not None:
                    for line in provenance.pretty().splitlines():
                        print(f"  {line}")
            if not result.contained and status == 0:
                status = 1
        if args.stats:
            print(f"chase store: {engine.checker.stats}")
            print(f"service: {engine.stats()}")
    _export_obs(args, obs)
    return status


def _parse_rule(text: str, default_name: str) -> ConjunctiveQuery:
    """One conjunctive query from one F-logic rule/query string."""
    program = parse_program(text)
    rules = list(program.rules())
    if rules:
        return encode_rule(rules[0])
    asks = list(program.queries())
    if asks:
        return encode_query(asks[0], name=default_name)
    raise ReproError(f"no rule or query in {text!r}")


def _serve_request(engine: Engine, request: dict) -> dict:
    """Serve one decoded ``serve`` request; always returns a response dict."""
    op = request.get("op", "check")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "stats":
        return {"ok": True, "op": "stats", "stats": engine.stats()}
    if op != "check":
        raise ReproError(f"unknown op {op!r} (expected check, stats or ping)")
    if "q1" not in request or "q2" not in request:
        raise ReproError("check request needs 'q1' and 'q2' rule strings")
    q1 = _parse_rule(str(request["q1"]), "q1")
    q2 = _parse_rule(str(request["q2"]), "q2")
    budget = None
    if any(k in request for k in ("deadline", "max_facts", "max_memory_mb")):
        memory_mb = request.get("max_memory_mb")
        budget = ExecutionBudget(
            deadline_seconds=request.get("deadline"),
            max_facts=request.get("max_facts"),
            max_memory_bytes=(
                int(memory_mb * 1024 * 1024) if memory_mb is not None else None
            ),
        )
    result = engine.check(
        q1,
        q2,
        level_bound=request.get("level_bound"),
        anytime=request.get("anytime"),
        explain=bool(request.get("explain", False)),
        budget=budget,
    )
    response = {
        "ok": True,
        "op": "check",
        "q1": q1.name,
        "q2": q2.name,
        "decision": result.decision.name,
        "contained": None if result.unknown else result.contained,
        "reason": result.reason.value,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.witness_level is not None:
        response["witness_level"] = result.witness_level
    if result.levels_chased is not None:
        response["levels_chased"] = result.levels_chased
    if request.get("explain") and result.provenance is not None:
        response["provenance"] = result.provenance.pretty()
    return response


def _cmd_serve(args: argparse.Namespace) -> int:
    """Line-oriented JSON service over stdin/stdout.

    Request per line: ``{"id": ..., "op": "check", "q1": "<rule>",
    "q2": "<rule>", "level_bound": N?, "anytime": bool?, "explain":
    bool?, "deadline": S?, "max_facts": N?, "max_memory_mb": M?}`` —
    ``op`` defaults to ``"check"``; ``"stats"`` and ``"ping"`` are also
    understood.  Response per line mirrors the request's ``id`` and is
    either ``{"id": ..., "ok": true, "decision": "TRUE|FALSE|UNKNOWN",
    "contained": bool|null, ...}`` or ``{"id": ..., "ok": false,
    "error": "..."}``.  Errors are **per line**: a bad request never
    stops the service.  EOF drains in-flight work and exits 0.
    """
    obs = _make_obs(args)
    budget = _budget_from_args(args)
    engine = Engine(
        obs=obs,
        budget=budget,
        max_active=args.max_active,
        max_pending=args.max_pending,
    )
    stdin = sys.stdin
    stdout = sys.stdout
    try:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            request_id = None
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ReproError("request must be a JSON object")
                request_id = request.get("id")
                response = _serve_request(engine, request)
            except Exception as exc:  # per-line error reporting, keep serving
                response = {"ok": False, "error": f"{exc}"}
            if request_id is not None:
                response["id"] = request_id
            stdout.write(json.dumps(response) + "\n")
            stdout.flush()
    finally:
        engine.close()
        _export_obs(args, obs)
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    query = _load_queries(args.file)[0]
    obs = _make_obs(args)
    budget = _budget_from_args(args)
    if budget is None:
        result = chase(
            query, max_level=args.max_level, track_graph=args.graph, obs=obs
        )
    else:
        engine = ChaseEngine(
            config=ChaseConfig(max_level=args.max_level, track_graph=args.graph),
            obs=obs if obs is not None else None,
        )
        run = engine.start(query)
        try:
            run.extend_to(args.max_level, governor=Governor(budget, obs=obs))
        except ExecutionInterrupted as exc:
            print(f"chase interrupted: {exc}", file=sys.stderr)
            print(repr(run.result()))
            _export_obs(args, obs)
            return 3
        result = run.result()
    _export_obs(args, obs)
    print(repr(result))
    if result.failed:
        print("chase FAILED: the query is unsatisfiable under Sigma_FL")
        return 1
    assert result.instance is not None
    print(result.instance.pretty())
    if args.graph:
        print()
        print(ChaseGraph.from_result(result).pretty_table())
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    kb = KnowledgeBase()
    kb.load(Path(args.kb).read_text())
    answers = kb.ask(args.query, certain_only=args.certain)
    if not answers:
        print("no answers")
        return 1
    for answer in answers:
        print(answer)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_all, run_experiment

    if args.id.lower() == "all":
        for report in run_all():
            print(report.render())
            print()
        return 0
    print(run_experiment(args.id).render())
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    query = _load_queries(args.file)[0]
    report = predict_chase_termination(query)
    print(report)
    return 0 if report.guaranteed_terminating else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    from .containment.minimize import minimize_query
    from .flogic.printer import query_to_flogic

    any_reduced = False
    for query in _load_queries(args.file):
        result = minimize_query(query)
        print(result)
        print("  ", query_to_flogic(result.minimized))
        any_reduced = any_reduced or result.reduced
    return 0 if any_reduced else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from .extensions.classify import classify_queries

    queries = _load_queries(args.file)
    taxonomy = classify_queries(queries)
    print(taxonomy.pretty())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.fact is None:
        # Containment-provenance mode: the file holds rules; explain why
        # the first is (not) contained in each of the others.
        queries = _load_queries(args.kb)
        if len(queries) < 2:
            print(
                "explain without a FACT needs a file with two or more rules",
                file=sys.stderr,
            )
            return 2
        checker = ContainmentChecker()
        q1 = queries[0]
        status = 0
        for q2 in queries[1:]:
            result = checker.check(q1, q2, explain=True)
            print(result.provenance.pretty())
            if not result.contained:
                status = 1
        return status
    kb = KnowledgeBase()
    kb.load(Path(args.kb).read_text())
    derivation = kb.explain(args.fact)
    print(derivation.pretty())
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    from .shell import run_shell

    kb = KnowledgeBase()
    if args.kb:
        kb.load(Path(args.kb).read_text())
    return run_shell(kb)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``flq`` argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="flq",
        description=(
            "F-logic Lite meta-query tools: containment (Cali & Kifer, "
            "VLDB 2006), chase inspection, and knowledge-base queries."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="containment of the first rule in the rest")
    p_check.add_argument("file", help="file with two or more rules")
    p_check.add_argument(
        "--level-bound",
        type=int,
        default=None,
        help="override the Theorem-12 chase level bound",
    )
    p_check.add_argument(
        "--no-anytime",
        action="store_true",
        help=(
            "disable the interleaved chase/search schedule: chase to the "
            "full bound first, then run one monolithic witness search"
        ),
    )
    p_check.add_argument(
        "--stats",
        action="store_true",
        help="print chase-store hit/miss/extend counters after the verdicts",
    )
    p_check.add_argument(
        "--pool",
        choices=("warm", "cold"),
        default="warm",
        help=(
            "batch dispatch mode: 'warm' reuses the service worker pool "
            "across batches, 'cold' builds a throwaway pool per call"
        ),
    )
    p_check.add_argument(
        "--explain",
        action="store_true",
        help="print decision provenance (witness levels, rule firings) per verdict",
    )
    _add_obs_flags(p_check)
    _add_budget_flags(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_chase = sub.add_parser("chase", help="chase a query and print the instance")
    p_chase.add_argument("file", help="file whose first rule is chased")
    p_chase.add_argument("--max-level", type=int, default=12)
    p_chase.add_argument("--graph", action="store_true", help="print the chase graph")
    _add_obs_flags(p_chase)
    _add_budget_flags(p_chase)
    p_chase.set_defaults(func=_cmd_chase)

    p_serve = sub.add_parser(
        "serve",
        help="line-oriented JSON containment service over stdin/stdout",
    )
    p_serve.add_argument(
        "--max-active",
        type=int,
        default=8,
        metavar="N",
        help="requests executing concurrently before new ones queue",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="queued requests before new ones are rejected",
    )
    _add_obs_flags(p_serve)
    _add_budget_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_ask = sub.add_parser("ask", help="answer a query over an F-logic fact base")
    p_ask.add_argument("kb", help="file of F-logic facts")
    p_ask.add_argument("query", help="query text, e.g. '?- X::person.'")
    p_ask.add_argument(
        "--certain", action="store_true", help="exclude answers with invented values"
    )
    p_ask.set_defaults(func=_cmd_ask)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (E1..E12) or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_term = sub.add_parser("termination", help="predict chase termination")
    p_term.add_argument("file", help="file whose first rule is analysed")
    p_term.set_defaults(func=_cmd_termination)

    p_min = sub.add_parser("minimize", help="drop Sigma_FL-redundant conjuncts")
    p_min.add_argument("file", help="file of rules to minimise")
    p_min.set_defaults(func=_cmd_minimize)

    p_cls = sub.add_parser("classify", help="containment taxonomy of rules")
    p_cls.add_argument("file", help="file of same-arity rules")
    p_cls.set_defaults(func=_cmd_classify)

    p_exp2 = sub.add_parser(
        "explain",
        help=(
            "derivation tree of an entailed fact, or (without FACT) "
            "containment provenance for the rules in the file"
        ),
    )
    p_exp2.add_argument("kb", help="file of F-logic facts (or rules, without FACT)")
    p_exp2.add_argument(
        "fact",
        nargs="?",
        default=None,
        help="fact text, e.g. 'john:person.'; omit for containment provenance",
    )
    p_exp2.set_defaults(func=_cmd_explain)

    p_shell = sub.add_parser("shell", help="interactive F-logic Lite shell")
    p_shell.add_argument(
        "kb", nargs="?", default=None, help="optional fact file to preload"
    )
    p_shell.set_defaults(func=_cmd_shell)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status (see module doc)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
