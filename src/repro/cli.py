"""Command-line interface.

Installed as ``flq`` (F-Logic Queries); also runnable as
``python -m repro``.  Subcommands:

``flq check FILE [--explain] [--no-anytime] [--pool warm|cold]
[--deadline S] [--max-facts N] [--max-memory-mb M] [--trace FILE]
[--metrics FILE]``
    FILE holds two or more rules; check containment of the first in each
    of the others (under Sigma_FL and classically).  ``--explain`` prints
    decision provenance; ``--no-anytime`` disables the interleaved
    chase/search schedule; ``--pool`` picks how multi-group batches are
    dispatched — ``warm`` (default) routes through the
    :class:`repro.api.Engine` service pool whose workers persist across
    batches, ``cold`` builds a throwaway pool per call (the legacy
    behaviour); the governance flags put the whole batch under an
    :class:`~repro.governance.ExecutionBudget` — budget-stopped pairs
    report UNKNOWN and the command exits 3; ``--trace``/``--metrics``
    export the span tree and the metrics registry.

``flq serve [--tcp HOST:PORT] [--shards N] [--tenant-rate R]
[--tenant-burst B] [--tenants FILE] [--max-active N] [--max-pending N]
[--store-capacity N] [--result-cache N] [--store-path PATH]
[--snapshot-policy P] [--deadline S] ...``
    Long-running service mode: one JSON request per line, one JSON
    response per line, over stdin/stdout by default or over asyncio TCP
    with ``--tcp`` (see :mod:`repro.serve` and ``docs/protocol.md``).
    Requests route across ``--shards`` engine shards by consistent hash
    of the query's canonical key; per-tenant token-bucket quotas and
    budget envelopes come from ``--tenant-rate``/``--tenants``.
    ``--store-path`` mounts a persistent chase-snapshot database
    (:mod:`repro.store`) under every shard — a killed and restarted
    server answers repeat requests from the persisted store without
    re-chasing.  A malformed or failing request reports ``{"ok": false,
    "error": ..., "reason": ...}`` on its own line and the service keeps
    serving; EOF or a ``drain`` op exits 0.  The governance flags set
    the *service envelope* — tenant and per-request budgets can only
    tighten it.

``flq store {inspect,vacuum,warm} PATH ...``
    Operate on a persistent chase-snapshot database (see
    ``docs/operations.md``): ``inspect`` prints the stored runs and
    aggregate sizes (``--json`` for machine-readable output), ``vacuum``
    compacts the file, and ``warm PATH FILE`` pre-chases every rule in
    FILE into the store so a fleet starts warm.

``flq chase FILE [--max-level N] [--graph] [--deadline S] [--max-facts N]
[--max-memory-mb M] [--trace FILE] [--metrics FILE]``
    Chase the first rule in FILE and print the instance (and graph).
    Under a budget an interrupted chase prints its budget report and
    exits 3 instead of hanging on cyclic inputs.

``flq ask KB_FILE QUERY``
    Load an F-logic fact base and answer a query string.

``flq experiment ID``
    Run one experiment (E1..E13) or ``all``.

``flq termination FILE``
    Predict chase termination for the first rule in FILE.

``flq minimize FILE``
    Drop Sigma_FL-redundant conjuncts from every rule in FILE.

``flq classify FILE``
    Compute the containment taxonomy of the rules in FILE.

``flq explain KB_FILE [FACT]``
    Print the Sigma_FL derivation tree of an entailed fact — or, when
    FACT is omitted, the containment provenance (witness chase levels,
    rule-firing sequence) of the first rule against the others.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis.cycles import predict_chase_termination
from .api import Engine
from .chase.engine import ChaseConfig, ChaseEngine, chase
from .chase.graph import ChaseGraph
from .containment.bounded import ContainmentChecker
from .containment.classic import contained_classic
from .core.errors import ExecutionInterrupted, ReproError
from .core.query import ConjunctiveQuery
from .flogic.encoding import encode_query, encode_rule
from .flogic.kb import KnowledgeBase
from .flogic.parser import parse_program
from .governance.budget import ExecutionBudget, Governor
from .obs import MetricsRegistry, Observability, Tracer

__all__ = ["main", "build_parser"]


def _load_queries(path: str) -> list[ConjunctiveQuery]:
    program = parse_program(Path(path).read_text())
    queries: list[ConjunctiveQuery] = []
    for rule in program.rules():
        queries.append(encode_rule(rule))
    for i, ask in enumerate(program.queries(), start=1):
        queries.append(encode_query(ask, name=f"query{i}"))
    if not queries:
        raise ReproError(f"{path} contains no rules or queries")
    return queries


def _make_obs(args: argparse.Namespace) -> Optional[Observability]:
    """An Observability sink when ``--trace``/``--metrics`` was given.

    Returns ``None`` (so downstream code keeps the zero-cost no-op
    default) when neither flag is present.
    """
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    if trace is None and metrics is None:
        return None
    return Observability(
        tracer=Tracer() if trace is not None else None,
        metrics=MetricsRegistry() if metrics is not None else None,
    )


def _export_obs(args: argparse.Namespace, obs: Optional[Observability]) -> None:
    """Write the trace / metrics files the flags asked for."""
    if obs is None:
        return
    trace = getattr(args, "trace", None)
    if trace is not None and obs.tracer.enabled:
        obs.tracer.write(trace)
        print(f"trace written to {trace}", file=sys.stderr)
    metrics = getattr(args, "metrics", None)
    if metrics is not None and obs.metrics is not None:
        obs.metrics.write_json(metrics)
        print(f"metrics written to {metrics}", file=sys.stderr)


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "wall-clock budget; work stopped by the deadline reports "
            "UNKNOWN (check) or a budget report (chase) and exits 3"
        ),
    )
    parser.add_argument(
        "--max-facts",
        type=int,
        metavar="N",
        default=None,
        help="stop when the chase instance exceeds N conjuncts",
    )
    parser.add_argument(
        "--max-memory-mb",
        type=float,
        metavar="MB",
        default=None,
        help=(
            "stop when the chase instance's approximate resident size "
            "(sys.getsizeof sampling) exceeds MB megabytes"
        ),
    )


def _budget_from_args(args: argparse.Namespace) -> Optional[ExecutionBudget]:
    """An :class:`ExecutionBudget` from the governance flags, or ``None``."""
    deadline = getattr(args, "deadline", None)
    max_facts = getattr(args, "max_facts", None)
    max_memory_mb = getattr(args, "max_memory_mb", None)
    if deadline is None and max_facts is None and max_memory_mb is None:
        return None
    return ExecutionBudget(
        deadline_seconds=deadline,
        max_facts=max_facts,
        max_memory_bytes=(
            int(max_memory_mb * 1024 * 1024) if max_memory_mb is not None else None
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export a span trace (JSON, or CSV when FILE ends in .csv)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="export counters/gauges/histograms as JSON",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    queries = _load_queries(args.file)
    if len(queries) < 2:
        print("need at least two rules to check containment", file=sys.stderr)
        return 2
    obs = _make_obs(args)
    budget = _budget_from_args(args)
    q1 = queries[0]
    pairs = [(q1, q2) for q2 in queries[1:]]
    # Batch pipeline: every verdict draws on one shared chase of q1.  The
    # default anytime schedule extends that chase only as far as each
    # witness needs; --no-anytime chases to the largest bound up front.
    with Engine(obs=obs, budget=budget) as engine:
        if args.pool == "warm":
            results = engine.check_all(
                pairs,
                level_bound=args.level_bound,
                anytime=not args.no_anytime,
            )
        else:
            # Legacy cold path: a throwaway pool per call, no service.
            results = engine.checker.check_all(
                pairs,
                level_bound=args.level_bound,
                anytime=not args.no_anytime,
                budget=budget,
                parallel=True,
            )
        status = 0
        for q2, result in zip(queries[1:], results):
            print(result.explain())
            if result.unknown:
                status = 3
                continue
            classic = contained_classic(q1, q2)
            print(f"  (classic, constraint-free verdict: {classic.contained})")
            if args.explain:
                provenance = result.explain_data()
                if provenance is not None:
                    for line in provenance.pretty().splitlines():
                        print(f"  {line}")
            if not result.contained and status == 0:
                status = 1
        if args.stats:
            print(f"chase store: {engine.checker.stats}")
            print(f"service: {engine.stats()}")
    _export_obs(args, obs)
    return status


def _parse_hostport(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; port 0 binds an ephemeral port."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ReproError(f"--tcp expects HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ReproError(f"--tcp port must be an integer, got {port!r}") from exc


def _tenant_registry(args: argparse.Namespace):
    """The :class:`~repro.serve.tenancy.TenantRegistry` the flags ask for.

    ``--tenants FILE`` loads per-tenant policies from JSON (the ``"*"``
    key sets the default policy); ``--tenant-rate``/``--tenant-burst``
    set the default policy inline.  With neither, traffic is unmetered.
    """
    from .serve.tenancy import TenantPolicy, TenantRegistry

    policies = {}
    default_policy = None
    if args.tenants is not None:
        raw = json.loads(Path(args.tenants).read_text())
        if not isinstance(raw, dict):
            raise ReproError("--tenants file must hold a JSON object")
        for name, spec in raw.items():
            policy = TenantPolicy.from_dict(spec)
            if name == "*":
                default_policy = policy
            else:
                policies[name] = policy
    if args.tenant_rate is not None:
        default_policy = TenantPolicy(
            rate=args.tenant_rate, burst=args.tenant_burst
        )
    return TenantRegistry(policies, default_policy=default_policy)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Newline-delimited JSON containment service (stdio or TCP).

    Without ``--tcp``: one request per stdin line, one response per
    stdout line; EOF (or a ``drain`` op) exits 0.  With ``--tcp
    HOST:PORT``: an asyncio server on that address (port 0 = ephemeral);
    the bound address is announced on stdout as one ``{"serving": ...}``
    line, and a ``drain`` op shuts the server down gracefully.  In both
    modes requests route across ``--shards`` engine shards by consistent
    hash of the query's canonical key, errors are **per line** (a bad
    request never stops the service), and the governance flags set the
    *service envelope* — tenant and per-request budgets only tighten it.
    The full wire protocol is documented in ``docs/protocol.md``.
    """
    from .serve.server import ContainmentServer
    from .store import StoreConfig

    obs = _make_obs(args)
    budget = _budget_from_args(args)
    # The flags build one StoreConfig directly (the redesigned storage
    # API) — no legacy kwargs, no deprecation warnings from the CLI.
    defaults = StoreConfig()
    store_config = StoreConfig(
        capacity=(
            args.store_capacity
            if args.store_capacity is not None
            else defaults.capacity
        ),
        path=args.store_path,
        snapshot_policy=args.snapshot_policy,
        result_cache=args.result_cache,
    )
    server = ContainmentServer(
        args.shards,
        tenants=_tenant_registry(args),
        obs=obs,
        budget=budget,
        max_active=args.max_active,
        max_pending=args.max_pending,
        store_config=store_config,
    )
    try:
        if args.tcp is None:
            return server.serve_stdio()
        import asyncio

        from .serve.protocol import PROTOCOL_VERSION

        host, port = _parse_hostport(args.tcp)

        def ready(bound_host: str, bound_port: int) -> None:
            sys.stdout.write(
                json.dumps(
                    {
                        "serving": {
                            "host": bound_host,
                            "port": bound_port,
                            "shards": server.shards,
                            "protocol": PROTOCOL_VERSION,
                        }
                    }
                )
                + "\n"
            )
            sys.stdout.flush()

        try:
            asyncio.run(server.serve_tcp(host, port, ready=ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0
    finally:
        server.close()
        _export_obs(args, obs)


def _cmd_store(args: argparse.Namespace) -> int:
    """Operate on a persistent chase-snapshot database (``repro.store``).

    ``inspect`` opens the database read-only and prints every stored run
    plus the aggregate counts; ``vacuum`` compacts the file and reports
    the reclaimed bytes; ``warm`` pre-chases rules into the store so a
    service fleet pointed at the same path starts warm.  The runbook
    lives in ``docs/operations.md``.
    """
    from .containment.store import ChaseStore
    from .store import SnapshotStore

    if args.store_command == "inspect":
        store = SnapshotStore(args.path, read_only=True)
        try:
            stats = store.stats()
            entries = store.entries()
        finally:
            store.close()
        if args.json:
            print(json.dumps({"stats": stats, "entries": entries}, indent=2))
            return 0
        print(
            f"{args.path}: {stats['runs']} runs, {stats['facts']} facts, "
            f"{stats['bytes']} bytes"
        )
        for entry in entries:
            state = "failed" if entry["failed"] else (
                "saturated" if entry["saturated"] else f"bound={entry['bound']}"
            )
            print(
                f"  {entry['key'][:12]}  {state:>12}  "
                f"levels<={entry['max_level']}  facts={entry['facts']}  "
                f"{entry['query']}"
            )
        return 0
    if args.store_command == "vacuum":
        store = SnapshotStore(args.path)
        try:
            before, after = store.vacuum()
        finally:
            store.close()
        print(f"{args.path}: {before} -> {after} bytes "
              f"({before - after} reclaimed)")
        return 0
    assert args.store_command == "warm"
    queries = _load_queries(args.file)
    store = ChaseStore(persist=args.path)
    try:
        for query in queries:
            with store.session(query, args.max_level) as (run, _):
                run.extend_to(args.max_level)
        store.flush()
        written = store.stats.snapshot_stores
    finally:
        store.close()
    print(
        f"{args.path}: warmed {len(queries)} queries "
        f"(max level {args.max_level}, {written} snapshots written)"
    )
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    query = _load_queries(args.file)[0]
    obs = _make_obs(args)
    budget = _budget_from_args(args)
    if budget is None:
        result = chase(
            query, max_level=args.max_level, track_graph=args.graph, obs=obs
        )
    else:
        engine = ChaseEngine(
            config=ChaseConfig(max_level=args.max_level, track_graph=args.graph),
            obs=obs if obs is not None else None,
        )
        run = engine.start(query)
        try:
            run.extend_to(args.max_level, governor=Governor(budget, obs=obs))
        except ExecutionInterrupted as exc:
            print(f"chase interrupted: {exc}", file=sys.stderr)
            print(repr(run.result()))
            _export_obs(args, obs)
            return 3
        result = run.result()
    _export_obs(args, obs)
    print(repr(result))
    if result.failed:
        print("chase FAILED: the query is unsatisfiable under Sigma_FL")
        return 1
    assert result.instance is not None
    print(result.instance.pretty())
    if args.graph:
        print()
        print(ChaseGraph.from_result(result).pretty_table())
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    kb = KnowledgeBase()
    kb.load(Path(args.kb).read_text())
    answers = kb.ask(args.query, certain_only=args.certain)
    if not answers:
        print("no answers")
        return 1
    for answer in answers:
        print(answer)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_all, run_experiment

    if args.id.lower() == "all":
        for report in run_all():
            print(report.render())
            print()
        return 0
    print(run_experiment(args.id).render())
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    query = _load_queries(args.file)[0]
    report = predict_chase_termination(query)
    print(report)
    return 0 if report.guaranteed_terminating else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    from .containment.minimize import minimize_query
    from .flogic.printer import query_to_flogic

    any_reduced = False
    for query in _load_queries(args.file):
        result = minimize_query(query)
        print(result)
        print("  ", query_to_flogic(result.minimized))
        any_reduced = any_reduced or result.reduced
    return 0 if any_reduced else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from .extensions.classify import classify_queries

    queries = _load_queries(args.file)
    taxonomy = classify_queries(queries)
    print(taxonomy.pretty())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.fact is None:
        # Containment-provenance mode: the file holds rules; explain why
        # the first is (not) contained in each of the others.
        queries = _load_queries(args.kb)
        if len(queries) < 2:
            print(
                "explain without a FACT needs a file with two or more rules",
                file=sys.stderr,
            )
            return 2
        checker = ContainmentChecker()
        q1 = queries[0]
        status = 0
        for q2 in queries[1:]:
            result = checker.check(q1, q2, explain=True)
            print(result.provenance.pretty())
            if not result.contained:
                status = 1
        return status
    kb = KnowledgeBase()
    kb.load(Path(args.kb).read_text())
    derivation = kb.explain(args.fact)
    print(derivation.pretty())
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    from .shell import run_shell

    kb = KnowledgeBase()
    if args.kb:
        kb.load(Path(args.kb).read_text())
    return run_shell(kb)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``flq`` argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="flq",
        description=(
            "F-logic Lite meta-query tools: containment (Cali & Kifer, "
            "VLDB 2006), chase inspection, and knowledge-base queries."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="containment of the first rule in the rest")
    p_check.add_argument("file", help="file with two or more rules")
    p_check.add_argument(
        "--level-bound",
        type=int,
        default=None,
        help="override the Theorem-12 chase level bound",
    )
    p_check.add_argument(
        "--no-anytime",
        action="store_true",
        help=(
            "disable the interleaved chase/search schedule: chase to the "
            "full bound first, then run one monolithic witness search"
        ),
    )
    p_check.add_argument(
        "--stats",
        action="store_true",
        help="print chase-store hit/miss/extend counters after the verdicts",
    )
    p_check.add_argument(
        "--pool",
        choices=("warm", "cold"),
        default="warm",
        help=(
            "batch dispatch mode: 'warm' reuses the service worker pool "
            "across batches, 'cold' builds a throwaway pool per call"
        ),
    )
    p_check.add_argument(
        "--explain",
        action="store_true",
        help="print decision provenance (witness levels, rule firings) per verdict",
    )
    _add_obs_flags(p_check)
    _add_budget_flags(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_chase = sub.add_parser("chase", help="chase a query and print the instance")
    p_chase.add_argument("file", help="file whose first rule is chased")
    p_chase.add_argument("--max-level", type=int, default=12)
    p_chase.add_argument("--graph", action="store_true", help="print the chase graph")
    _add_obs_flags(p_chase)
    _add_budget_flags(p_chase)
    p_chase.set_defaults(func=_cmd_chase)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "newline-delimited JSON containment service over stdin/stdout "
            "or TCP (--tcp), sharded and quota-governed"
        ),
    )
    p_serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve over asyncio TCP on this address instead of stdio "
            "(port 0 binds an ephemeral port; the bound address is "
            "announced as a {\"serving\": ...} line on stdout)"
        ),
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "engine shards; requests route by consistent hash of the "
            "query's canonical key so each shard's chase store and "
            "decided-result cache stay hot for its key range"
        ),
    )
    p_serve.add_argument(
        "--max-active",
        type=int,
        default=8,
        metavar="N",
        help="per-shard requests executing concurrently before new ones queue",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="per-shard queued requests before new ones are rejected",
    )
    p_serve.add_argument(
        "--store-capacity",
        type=int,
        default=None,
        metavar="N",
        help="per-shard chase-store LRU entries (default: store default)",
    )
    p_serve.add_argument(
        "--result-cache",
        type=int,
        default=4096,
        metavar="N",
        help="per-shard decided-verdict LRU entries (0 disables recall)",
    )
    p_serve.add_argument(
        "--store-path",
        metavar="PATH",
        default=None,
        help=(
            "persistent chase-snapshot database (a directory or .db "
            "file) shared by every shard; a restarted server answers "
            "repeat requests from it without re-chasing"
        ),
    )
    p_serve.add_argument(
        "--snapshot-policy",
        choices=("always", "evict", "manual"),
        default="always",
        help=(
            "when chase runs are written back to --store-path: on every "
            "session close (always), only on LRU eviction (evict), or "
            "only on explicit flush/shutdown (manual)"
        ),
    )
    p_serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "default tenant quota: R requests/second sustained "
            "(unmetered when omitted)"
        ),
    )
    p_serve.add_argument(
        "--tenant-burst",
        type=float,
        default=16.0,
        metavar="B",
        help="default tenant burst: tokens a tenant may bank above its rate",
    )
    p_serve.add_argument(
        "--tenants",
        metavar="FILE",
        default=None,
        help=(
            "JSON file of per-tenant policies {name: {rate, burst, "
            "deadline, max_facts, max_memory_mb, max_steps}}; the '*' "
            "key sets the default policy"
        ),
    )
    _add_obs_flags(p_serve)
    _add_budget_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_store = sub.add_parser(
        "store",
        help="inspect, compact or pre-warm a persistent chase-snapshot database",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_inspect = store_sub.add_parser(
        "inspect", help="list the stored runs and aggregate sizes"
    )
    p_store_inspect.add_argument("path", help="snapshot database (directory or .db file)")
    p_store_inspect.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_store_vacuum = store_sub.add_parser(
        "vacuum", help="compact the database file and report reclaimed bytes"
    )
    p_store_vacuum.add_argument("path", help="snapshot database (directory or .db file)")
    p_store_warm = store_sub.add_parser(
        "warm", help="pre-chase every rule in FILE into the store"
    )
    p_store_warm.add_argument("path", help="snapshot database (directory or .db file)")
    p_store_warm.add_argument("file", help="file of rules to chase")
    p_store_warm.add_argument(
        "--max-level",
        type=int,
        default=12,
        metavar="N",
        help="chase level each rule is materialised to (default 12)",
    )
    p_store.set_defaults(func=_cmd_store)

    p_ask = sub.add_parser("ask", help="answer a query over an F-logic fact base")
    p_ask.add_argument("kb", help="file of F-logic facts")
    p_ask.add_argument("query", help="query text, e.g. '?- X::person.'")
    p_ask.add_argument(
        "--certain", action="store_true", help="exclude answers with invented values"
    )
    p_ask.set_defaults(func=_cmd_ask)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (E1..E12) or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_term = sub.add_parser("termination", help="predict chase termination")
    p_term.add_argument("file", help="file whose first rule is analysed")
    p_term.set_defaults(func=_cmd_termination)

    p_min = sub.add_parser("minimize", help="drop Sigma_FL-redundant conjuncts")
    p_min.add_argument("file", help="file of rules to minimise")
    p_min.set_defaults(func=_cmd_minimize)

    p_cls = sub.add_parser("classify", help="containment taxonomy of rules")
    p_cls.add_argument("file", help="file of same-arity rules")
    p_cls.set_defaults(func=_cmd_classify)

    p_exp2 = sub.add_parser(
        "explain",
        help=(
            "derivation tree of an entailed fact, or (without FACT) "
            "containment provenance for the rules in the file"
        ),
    )
    p_exp2.add_argument("kb", help="file of F-logic facts (or rules, without FACT)")
    p_exp2.add_argument(
        "fact",
        nargs="?",
        default=None,
        help="fact text, e.g. 'john:person.'; omit for containment provenance",
    )
    p_exp2.set_defaults(func=_cmd_explain)

    p_shell = sub.add_parser("shell", help="interactive F-logic Lite shell")
    p_shell.add_argument(
        "kb", nargs="?", default=None, help="optional fact file to preload"
    )
    p_shell.set_defaults(func=_cmd_shell)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status (see module doc)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
