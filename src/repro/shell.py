"""An interactive F-logic Lite shell (``flq shell [KB_FILE]``).

A small read–eval–print loop over a :class:`KnowledgeBase`:

* ``john:student.`` — assert a fact (any F-logic Lite fact syntax);
* ``?- X::person.`` — ask a query and print its answers;
* ``q(X) :- X:person.`` — run a one-off rule-style query;
* dot-commands for everything else::

      .help                 this text
      .facts                list the base facts
      .schema               list the schema-level facts
      .consistent           check functionality consistency
      .explain FACT         derivation tree of an entailed fact
      .save PATH            write the base facts to a file
      .load PATH            load more facts from a file
      .quit                 leave

The shell is line-oriented and side-effect free until a statement parses
completely, so a typo never corrupts the KB.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, TextIO

from .core.errors import ReproError
from .flogic.ast import FLFact, FLQuery, FLRule
from .flogic.encoding import encode_atom
from .flogic.kb import KnowledgeBase
from .flogic.parser import parse_statement

__all__ = ["Shell", "run_shell"]

_PROMPT = "flq> "
_BANNER = (
    "F-logic Lite shell — facts end with '.', queries start with '?-', "
    "'.help' for commands."
)


class Shell:
    """The REPL engine, decoupled from stdin/stdout for testability."""

    def __init__(self, kb: Optional[KnowledgeBase] = None, *, out: Optional[TextIO] = None):
        import sys

        self.kb = kb if kb is not None else KnowledgeBase()
        self._out = out if out is not None else sys.stdout
        self._commands: dict[str, Callable[[str], bool]] = {
            ".help": self._cmd_help,
            ".facts": self._cmd_facts,
            ".schema": self._cmd_schema,
            ".consistent": self._cmd_consistent,
            ".explain": self._cmd_explain,
            ".save": self._cmd_save,
            ".load": self._cmd_load,
            ".quit": self._cmd_quit,
            ".exit": self._cmd_quit,
        }

    # -- plumbing ------------------------------------------------------------

    def _print(self, *parts) -> None:
        print(*parts, file=self._out)

    def handle(self, line: str) -> bool:
        """Process one input line; return False when the shell should exit."""
        line = line.strip()
        if not line or line.startswith("%") or line.startswith("//"):
            return True
        if line.startswith("."):
            name, _, argument = line.partition(" ")
            command = self._commands.get(name)
            if command is None:
                self._print(f"unknown command {name!r}; try .help")
                return True
            return command(argument.strip())
        try:
            return self._handle_statement(line)
        except ReproError as exc:
            self._print(f"error: {exc}")
            return True

    def _handle_statement(self, line: str) -> bool:
        statement = parse_statement(line)
        if isinstance(statement, FLFact):
            for atom in encode_atom(statement.atom):
                self.kb.add(atom)
            self._print("ok")
        elif isinstance(statement, (FLQuery, FLRule)):
            answers = self.kb.ask(statement)
            if not answers:
                self._print("no")
            elif len(answers) == 1 and len(answers[0]) == 0:
                self._print("yes")
            else:
                for answer in answers:
                    self._print("  ", answer)
        return True

    # -- dot commands -----------------------------------------------------------

    def _cmd_help(self, _: str) -> bool:
        self._print(__doc__.split("dot-commands for everything else::")[1].split("The shell")[0])
        return True

    def _cmd_facts(self, _: str) -> bool:
        if not self.kb.base_facts:
            self._print("(empty)")
        else:
            self._print(self.kb.to_flogic())
        return True

    def _cmd_schema(self, _: str) -> bool:
        from .flogic.printer import facts_to_flogic

        atoms = self.kb.schema_atoms()
        self._print(facts_to_flogic(atoms) if atoms else "(no schema facts)")
        return True

    def _cmd_consistent(self, _: str) -> bool:
        self._print("consistent" if self.kb.is_consistent() else "INCONSISTENT")
        return True

    def _cmd_explain(self, argument: str) -> bool:
        if not argument:
            self._print("usage: .explain FACT   (e.g. .explain john:person.)")
            return True
        try:
            self._print(self.kb.explain(argument).pretty())
        except ReproError as exc:
            self._print(f"error: {exc}")
        return True

    def _cmd_save(self, argument: str) -> bool:
        if not argument:
            self._print("usage: .save PATH")
            return True
        self.kb.save(argument)
        self._print(f"saved {len(self.kb)} facts to {argument}")
        return True

    def _cmd_load(self, argument: str) -> bool:
        if not argument:
            self._print("usage: .load PATH")
            return True
        try:
            self.kb.load(Path(argument).read_text())
            self._print(f"loaded; {len(self.kb)} facts total")
        except (OSError, ReproError) as exc:
            self._print(f"error: {exc}")
        return True

    def _cmd_quit(self, _: str) -> bool:
        return False


def run_shell(
    kb: Optional[KnowledgeBase] = None,
    *,
    input_stream: Optional[TextIO] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Run the REPL until EOF or ``.quit``; returns an exit code."""
    import sys

    input_stream = input_stream if input_stream is not None else sys.stdin
    shell = Shell(kb, out=out)
    shell._print(_BANNER)
    interactive = input_stream is sys.stdin and sys.stdin.isatty()
    for line in _lines(input_stream, shell, interactive):
        if not shell.handle(line):
            break
    return 0


def _lines(stream: TextIO, shell: Shell, interactive: bool):
    while True:
        if interactive:
            try:
                line = input(_PROMPT)
            except EOFError:
                return
        else:
            line = stream.readline()
            if not line:
                return
        yield line
