"""On-disk, level-segmented snapshot store for chase runs (SQLite, stdlib).

A :class:`SnapshotStore` is one SQLite database file holding, per snapshot
key (see :func:`repro.store.codec.key_digest`):

* a ``runs`` row — the run's scalar state (bound reached, failed/saturated
  flags, null counter, per-rule counters, the EGD-rewritten head);
* ``facts`` rows — every conjunct of the chased instance tagged with its
  **level** and deriving rule, so a reader can hydrate just the prefix up
  to a requested level without materializing deeper segments.

Durability model: writes run inside a single transaction per save using
SQLite's rollback journal, so a process killed mid-write leaves the previous
snapshot intact and the database readable (the journal rolls back on the
next open).  The rollback journal is chosen over WAL deliberately — WAL's
``-shm`` sidecar breaks truly read-only multi-process attach, which is
exactly how pool workers open the store.

Concurrency model: any number of processes may attach read-only
(``mode=ro`` URI); writers serialize through SQLite's file lock with a 30 s
busy timeout, which is how the :mod:`repro.serve` shards share one store
directory.  Within a process a store serializes its connection behind a
lock, matching the thread-safety contract of
:class:`~repro.containment.store.ChaseStore`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from ..core.atoms import Atom
from ..core.errors import ReproError
from ..core.terms import Term
from .codec import (
    FORMAT_VERSION,
    decode_atom,
    decode_terms,
    encode_atom,
    encode_terms,
)

__all__ = ["DB_FILENAME", "RunSnapshot", "SnapshotError", "SnapshotStore"]

#: File name used inside a store *directory* (a path ending in ``.db`` is
#: taken as the database file itself).
DB_FILENAME = "chase.db"

_BUSY_TIMEOUT_MS = 30_000


class SnapshotError(ReproError):
    """A snapshot database could not be opened or carries an alien format."""


@dataclass(frozen=True)
class RunSnapshot:
    """A pure-data image of one chase run, as stored on disk.

    ``facts`` is level-segmented: a tuple of ``(level, rule, atom)`` triples
    sorted by level.  ``partial`` marks a snapshot whose facts were
    truncated to a requested level on load — a partial image answers
    questions up to that level but must never be extended or persisted
    back (its dropped segments would be silently re-derived against a
    truncated prefix).
    """

    query: str
    bound: int
    failed: bool
    saturated: bool
    null_counter: int
    counters: dict = field(default_factory=dict)
    head: tuple[Term, ...] = ()
    facts: tuple[tuple[int, str, Atom], ...] = ()
    max_level: int = 0
    partial: bool = False


class SnapshotStore:
    """One SQLite snapshot database, read-write or read-only attached.

    Parameters
    ----------
    path:
        A directory (the database lives at ``<path>/chase.db``) or a path
        ending in ``.db``.  Read-write opens create missing directories and
        the schema; read-only opens require an existing file.
    read_only:
        Attach with SQLite's ``mode=ro`` — no locks are ever taken for
        writing, which is what makes pool-worker attach safe and cheap.
    """

    def __init__(self, path: Union[str, Path], *, read_only: bool = False):
        self.path = self.resolve_db_path(path)
        self.read_only = read_only
        self._lock = threading.Lock()
        if read_only:
            if not self.path.exists():
                raise SnapshotError(f"no snapshot database at {self.path}")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._connect()
            self._ensure_schema()
        except sqlite3.Error as exc:
            raise SnapshotError(f"cannot open snapshot store {self.path}: {exc}") from exc

    @staticmethod
    def resolve_db_path(path: Union[str, Path]) -> Path:
        """Map a store path (directory or ``.db`` file) to the database file."""
        p = Path(path)
        if p.suffix == ".db":
            return p
        return p / DB_FILENAME

    def _connect(self) -> sqlite3.Connection:
        if self.read_only:
            uri = f"file:{self.path}?mode=ro"
            conn = sqlite3.connect(uri, uri=True, timeout=30.0, check_same_thread=False)
        else:
            conn = sqlite3.connect(str(self.path), timeout=30.0, check_same_thread=False)
        conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        return conn

    def _ensure_schema(self) -> None:
        if self.read_only:
            version = self._format_version()
            if version is not None and version != FORMAT_VERSION:
                raise SnapshotError(
                    f"snapshot store {self.path} is format v{version}, "
                    f"this build reads v{FORMAT_VERSION}"
                )
            return
        with self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta(
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS runs(
                    key TEXT PRIMARY KEY,
                    query TEXT NOT NULL,
                    bound INTEGER NOT NULL,
                    failed INTEGER NOT NULL,
                    saturated INTEGER NOT NULL,
                    null_counter INTEGER NOT NULL,
                    counters TEXT NOT NULL,
                    head TEXT NOT NULL,
                    max_level INTEGER NOT NULL,
                    fact_count INTEGER NOT NULL,
                    updated REAL NOT NULL);
                CREATE TABLE IF NOT EXISTS facts(
                    run_key TEXT NOT NULL,
                    level INTEGER NOT NULL,
                    rule TEXT NOT NULL,
                    atom TEXT NOT NULL);
                CREATE INDEX IF NOT EXISTS facts_by_run_level
                    ON facts(run_key, level);
                """
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES('format_version', ?)",
                (str(FORMAT_VERSION),),
            )
        version = self._format_version()
        if version != FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot store {self.path} is format v{version}, "
                f"this build writes v{FORMAT_VERSION}"
            )

    def _format_version(self) -> Optional[int]:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='format_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # no meta table yet: empty/foreign file
        return int(row[0]) if row else None

    # -- writes --------------------------------------------------------------

    def save(self, key: str, snapshot: RunSnapshot) -> None:
        """Persist *snapshot* under *key*, atomically replacing any old image.

        One transaction covers the runs row and every facts row; a crash
        mid-save rolls back to the previous image on the next open.
        """
        if self.read_only:
            raise SnapshotError(f"snapshot store {self.path} is attached read-only")
        rows = [
            (key, level, rule, encode_atom(atom))
            for level, rule, atom in snapshot.facts
        ]
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM facts WHERE run_key=?", (key,))
            self._conn.executemany(
                "INSERT INTO facts(run_key, level, rule, atom) VALUES(?,?,?,?)",
                rows,
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO runs(key, query, bound, failed, saturated,"
                " null_counter, counters, head, max_level, fact_count, updated)"
                " VALUES(?,?,?,?,?,?,?,?,?,?,?)",
                (
                    key,
                    snapshot.query,
                    snapshot.bound,
                    int(snapshot.failed),
                    int(snapshot.saturated),
                    snapshot.null_counter,
                    json.dumps(snapshot.counters, separators=(",", ":")),
                    encode_terms(snapshot.head),
                    snapshot.max_level,
                    len(rows),
                    time.time(),
                ),
            )

    def delete(self, key: str) -> bool:
        """Drop one snapshot; True if a runs row existed."""
        if self.read_only:
            raise SnapshotError(f"snapshot store {self.path} is attached read-only")
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM facts WHERE run_key=?", (key,))
            cur = self._conn.execute("DELETE FROM runs WHERE key=?", (key,))
            return cur.rowcount > 0

    def vacuum(self) -> tuple[int, int]:
        """Compact the database file; returns ``(bytes_before, bytes_after)``."""
        if self.read_only:
            raise SnapshotError(f"snapshot store {self.path} is attached read-only")
        before = self.file_size()
        with self._lock:
            self._conn.execute("VACUUM")
        return before, self.file_size()

    # -- reads ---------------------------------------------------------------

    def load(self, key: str, max_level: Optional[int] = None) -> Optional[RunSnapshot]:
        """Hydrate the snapshot stored under *key*, or None.

        With *max_level* set, only fact segments at levels ``<= max_level``
        are materialized; the returned snapshot is then flagged ``partial``
        whenever deeper segments were left on disk.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT query, bound, failed, saturated, null_counter,"
                " counters, head, max_level FROM runs WHERE key=?",
                (key,),
            ).fetchone()
            if row is None:
                return None
            query, bound, failed, saturated, null_counter, counters, head, top = row
            if max_level is None or failed:
                fact_rows = self._conn.execute(
                    "SELECT level, rule, atom FROM facts WHERE run_key=?"
                    " ORDER BY level, atom",
                    (key,),
                ).fetchall()
                partial = False
            else:
                fact_rows = self._conn.execute(
                    "SELECT level, rule, atom FROM facts WHERE run_key=? AND level<=?"
                    " ORDER BY level, atom",
                    (key, max_level),
                ).fetchall()
                partial = top > max_level
        return RunSnapshot(
            query=query,
            bound=bound,
            failed=bool(failed),
            saturated=bool(saturated),
            null_counter=null_counter,
            counters=json.loads(counters),
            head=decode_terms(head),
            facts=tuple(
                (level, rule, decode_atom(atom)) for level, rule, atom in fact_rows
            ),
            max_level=top,
            partial=partial,
        )

    def peek(self, key: str) -> Optional[dict]:
        """The scalar state of a stored run without decoding its facts."""
        with self._lock:
            row = self._conn.execute(
                "SELECT query, bound, failed, saturated, max_level, fact_count,"
                " updated FROM runs WHERE key=?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        query, bound, failed, saturated, max_level, fact_count, updated = row
        return {
            "query": query,
            "bound": bound,
            "failed": bool(failed),
            "saturated": bool(saturated),
            "max_level": max_level,
            "facts": fact_count,
            "updated": updated,
        }

    def keys(self) -> list[str]:
        """Every snapshot key, in insertion-agnostic sorted order."""
        with self._lock:
            rows = self._conn.execute("SELECT key FROM runs ORDER BY key").fetchall()
        return [r[0] for r in rows]

    def entries(self) -> list[dict]:
        """One :meth:`peek`-shaped dict per stored run (for ``flq store inspect``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, query, bound, failed, saturated, max_level,"
                " fact_count, updated FROM runs ORDER BY key"
            ).fetchall()
        return [
            {
                "key": key,
                "query": query,
                "bound": bound,
                "failed": bool(failed),
                "saturated": bool(saturated),
                "max_level": max_level,
                "facts": fact_count,
                "updated": updated,
            }
            for key, query, bound, failed, saturated, max_level, fact_count, updated in rows
        ]

    def stats(self) -> dict:
        """Aggregate counts: stored runs, fact rows, and file size in bytes."""
        with self._lock:
            runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            facts = self._conn.execute("SELECT COUNT(*) FROM facts").fetchone()[0]
        return {"runs": runs, "facts": facts, "bytes": self.file_size()}

    def file_size(self) -> int:
        """Current size of the database file in bytes (0 if absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        mode = "ro" if self.read_only else "rw"
        return f"SnapshotStore({self.path}, {mode})"
