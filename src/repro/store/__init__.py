"""repro.store — the persistent, level-segmented chase snapshot tier.

The Theorem-12 chase is the expensive artifact this library keeps
recomputing; :mod:`repro.store` makes it durable and shareable.  A
:class:`SnapshotStore` is a stdlib-SQLite database of chase runs keyed by
query :meth:`~repro.core.query.ConjunctiveQuery.canonical_key` (digested
together with the dependency set), facts stored **level-segmented** so a
reader can hydrate exactly the prefix a request needs and
:meth:`~repro.chase.engine.ChaseRun.extend_to` can resume from any
persisted prefix.

Layers above build on this module:

* :class:`~repro.containment.store.ChaseStore` mounts a snapshot store as a
  persistent tier under its in-memory LRU (memory -> disk -> recompute);
* pool workers attach read-only and hydrate keys on demand instead of
  receiving pickled ChaseRuns (zero-pickle ``check_all`` parallelism);
* :mod:`repro.serve` shards share one store directory, so a restarted or
  resharded fleet comes back warm.

:class:`StoreConfig` is the single configuration object threaded through
``Engine``/``ContainmentService``/``ContainmentServer``/``flq`` in place of
the old scattered ``store_capacity``/``result_cache`` kwargs.
"""

from .codec import (
    FORMAT_VERSION,
    decode_atom,
    decode_term,
    decode_terms,
    dependency_fingerprint,
    encode_atom,
    encode_term,
    encode_terms,
    key_digest,
)
from .config import SNAPSHOT_POLICIES, StoreConfig, resolve_store_config
from .snapshot import DB_FILENAME, RunSnapshot, SnapshotError, SnapshotStore

__all__ = [
    "FORMAT_VERSION",
    "DB_FILENAME",
    "SNAPSHOT_POLICIES",
    "StoreConfig",
    "resolve_store_config",
    "RunSnapshot",
    "SnapshotError",
    "SnapshotStore",
    "dependency_fingerprint",
    "key_digest",
    "encode_term",
    "decode_term",
    "encode_atom",
    "decode_atom",
    "encode_terms",
    "decode_terms",
]
