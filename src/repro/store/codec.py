"""Serialization codec for persisted chase snapshots.

The on-disk snapshot format (:mod:`repro.store.snapshot`) stores terms and
atoms as compact JSON, not pickles: the encoding is stable across Python
versions and processes, human-inspectable with any SQLite shell, and — unlike
pickle — cannot execute code on load.  Terms round-trip through the interning
constructors in :mod:`repro.core.terms`, so decoded atoms compare identical
(``is``-equal) to freshly built ones.

Snapshot rows are addressed by :func:`key_digest`: a BLAKE2b digest of the
query's :meth:`~repro.core.query.ConjunctiveQuery.canonical_key` *combined
with* a :func:`dependency_fingerprint` of the dependency set the chase ran
under.  Folding the dependencies into the key means one database file can
hold snapshots for several constraint sets side by side, and a store opened
with a different Sigma can never serve a stale chase.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant, Null, Term, Variable

__all__ = [
    "FORMAT_VERSION",
    "encode_term",
    "decode_term",
    "encode_atom",
    "decode_atom",
    "encode_terms",
    "decode_terms",
    "dependency_fingerprint",
    "key_digest",
]

#: Version stamp of the snapshot schema; bumped on incompatible changes.
FORMAT_VERSION = 1

_JSON_KW = {"separators": (",", ":"), "sort_keys": False}


def encode_term(term: Term) -> list:
    """The JSON-ready form of a term: ``["c", name]``/``["v", name]``/``["n", index]``."""
    if isinstance(term, Constant):
        return ["c", term.name]
    if isinstance(term, Variable):
        return ["v", term.name]
    if isinstance(term, Null):
        return ["n", term.index]
    raise TypeError(f"not a term: {term!r}")


def decode_term(data: Sequence) -> Term:
    """Inverse of :func:`encode_term`; re-enters the interning constructors."""
    kind, payload = data
    if kind == "c":
        return Constant(payload)
    if kind == "v":
        return Variable(payload)
    if kind == "n":
        return Null(payload)
    raise ValueError(f"unknown term tag {kind!r}")


def encode_atom(atom: Atom) -> str:
    """One atom as a JSON string ``[predicate, [term, ...]]``."""
    return json.dumps(
        [atom.predicate, [encode_term(t) for t in atom.args]], **_JSON_KW
    )


def decode_atom(text: str) -> Atom:
    """Inverse of :func:`encode_atom`."""
    predicate, args = json.loads(text)
    return Atom(predicate, tuple(decode_term(t) for t in args))


def encode_terms(terms: Iterable[Term]) -> str:
    """A term tuple (e.g. a chased head) as a JSON string."""
    return json.dumps([encode_term(t) for t in terms], **_JSON_KW)


def decode_terms(text: str) -> tuple[Term, ...]:
    """Inverse of :func:`encode_terms`."""
    return tuple(decode_term(t) for t in json.loads(text))


def dependency_fingerprint(dependencies: Iterable) -> str:
    """A short stable digest of a dependency set.

    TGD/EGD ``__str__`` is deterministic (label, body, head in declaration
    order), so joining the rendered rules pins down the constraint set
    exactly; the fingerprint is folded into every :func:`key_digest` so
    snapshots chased under different Sigmas never collide.
    """
    text = "\n".join(str(d) for d in dependencies)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=12).hexdigest()


def key_digest(canonical_key: tuple, fingerprint: str) -> str:
    """The snapshot row key for a query chased under a fingerprinted Sigma.

    ``canonical_key`` is :meth:`ConjunctiveQuery.canonical_key` — already
    invariant under variable renaming — rendered via ``repr`` (tuples of
    strings and ints render deterministically).
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(repr(canonical_key).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(fingerprint.encode("ascii"))
    return digest.hexdigest()
