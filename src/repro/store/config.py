"""`StoreConfig` — one object configuring every storage tier.

Before this module, storage knobs were scattered per layer: ``Engine`` took
``store_capacity`` and ``result_cache``, ``ContainmentService`` took the
same pair again, ``ContainmentServer`` forwarded them per shard, and the
CLI re-spelled each as a flag.  :class:`StoreConfig` replaces the scatter
with a single frozen value threaded through every layer, and adds the
persistent tier's knobs (snapshot path, write policy, read-only attach).

The old kwargs keep working: :func:`resolve_store_config` folds them into a
config while emitting :class:`DeprecationWarning` — the same
deprecate-but-forward pattern :mod:`repro.containment` uses for its PEP 562
import shims.  See docs/api.md for the migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

__all__ = ["SNAPSHOT_POLICIES", "StoreConfig", "resolve_store_config"]

#: Valid values of :attr:`StoreConfig.snapshot_policy`:
#:
#: * ``"always"`` — persist a run every time a store session closes with
#:   new chase state (the default; a restarted process comes back warm);
#: * ``"evict"`` — persist only when the in-memory LRU evicts an entry
#:   (disk is a spill tier, hot keys stay memory-only until pressure);
#: * ``"manual"`` — persist only on an explicit
#:   :meth:`~repro.containment.store.ChaseStore.flush`.
SNAPSHOT_POLICIES = ("always", "evict", "manual")


@dataclass(frozen=True)
class StoreConfig:
    """Storage configuration shared by every layer of the stack.

    Attributes
    ----------
    capacity:
        Entries kept by the in-memory :class:`~repro.containment.store.ChaseStore`
        LRU (must be >= 1).
    path:
        Snapshot directory (or a ``.db`` file path) enabling the persistent
        tier; ``None`` keeps the store memory-only.
    snapshot_policy:
        When runs are written to disk — one of :data:`SNAPSHOT_POLICIES`.
    read_only:
        Attach the snapshot database read-only (``mode=ro``): serve from
        existing snapshots, never write.  This is how pool workers attach.
    result_cache:
        Capacity of the service-layer decided-result LRU (0 disables it).
    """

    capacity: int = 128
    path: Optional[Union[str, Path]] = None
    snapshot_policy: str = "always"
    read_only: bool = False
    result_cache: int = 4096

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {self.capacity}")
        if self.snapshot_policy not in SNAPSHOT_POLICIES:
            raise ValueError(
                f"snapshot_policy must be one of {SNAPSHOT_POLICIES}, "
                f"got {self.snapshot_policy!r}"
            )
        if self.result_cache < 0:
            raise ValueError(
                f"result_cache must be >= 0, got {self.result_cache}"
            )
        if self.read_only and self.path is None:
            raise ValueError("read_only=True requires a snapshot path")

    @property
    def persistent(self) -> bool:
        """Whether the persistent tier is enabled (a path is configured)."""
        return self.path is not None

    def with_overrides(self, **changes) -> "StoreConfig":
        """A copy with the given fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)


def resolve_store_config(
    config: Optional[StoreConfig] = None,
    *,
    store_capacity: Optional[int] = None,
    result_cache: Optional[int] = None,
    owner: str = "ContainmentService",
    stacklevel: int = 3,
) -> StoreConfig:
    """Merge legacy per-layer kwargs into one :class:`StoreConfig`.

    ``store_capacity``/``result_cache`` are the deprecated pre-`repro.store`
    spellings; passing either emits a :class:`DeprecationWarning` naming the
    owning class and folds the value into the returned config (legacy kwargs
    win over the config's fields, matching what the old signatures did).
    ``None`` means "not given" for both, so existing callers that never
    touched the kwargs resolve to the plain defaults warning-free.
    """
    resolved = config if config is not None else StoreConfig()
    if store_capacity is not None:
        warnings.warn(
            f"{owner}(store_capacity=...) is deprecated; pass "
            "store_config=StoreConfig(capacity=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        resolved = replace(resolved, capacity=store_capacity)
    if result_cache is not None:
        warnings.warn(
            f"{owner}(result_cache=...) is deprecated; pass "
            "store_config=StoreConfig(result_cache=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        resolved = replace(resolved, result_cache=result_cache)
    return resolved
