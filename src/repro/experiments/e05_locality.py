"""E5 — Lemma 5 (Locality), validated empirically.

Lemma 5: every *secondary* arc into a conjunct at level >= 1 starts at
level 0 or exactly two levels back.  We chase (a) every paper query and
(b) a randomized corpus with planted mandatory-type cycles, build the
chase graphs, and count violations.  The paper predicts zero.
"""

from __future__ import annotations

from ..analysis.stats import check_locality
from ..chase.engine import chase
from ..chase.graph import ChaseGraph
from ..core.errors import ChaseBudgetExceeded
from ..workloads.corpus import PAPER_QUERIES
from ..workloads.query_gen import QueryGenParams, QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(
    *, random_queries: int = 30, max_level: int = 10, seed: int = 2006
) -> ExperimentReport:
    """Measure chase locality (Lemma 5 radius) over random queries."""
    """Measure chase locality (Lemma 5 radius) over random queries."""
    corpus = list(PAPER_QUERIES)
    for cycle_length in (1, 2, 3):
        gen = QueryGenerator(
            seed + cycle_length,
            QueryGenParams(n_atoms=6, cycle_length=cycle_length, head_arity=0),
        )
        corpus.extend(gen.queries(random_queries // 3))

    table = Table(
        "Lemma 5 locality: secondary arcs into level >= 1",
        ["query", "nodes", "secondary arcs", "violations"],
    )
    total_secondary = 0
    total_violations = 0
    checked = 0
    for query in corpus:
        try:
            result = chase(query, max_level=max_level, track_graph=True)
        except ChaseBudgetExceeded:  # pragma: no cover - generous budget
            continue
        if result.failed:
            continue
        graph = ChaseGraph.from_result(result)
        violations = check_locality(graph)
        deep_secondary = [
            a for a in graph.secondary_arcs() if a.target_level >= 1
        ]
        total_secondary += len(deep_secondary)
        total_violations += len(violations)
        checked += 1
        table.add_row(query.name, len(graph), len(deep_secondary), len(violations))

    summary = (
        f"Checked {checked} chase graphs, {total_secondary} secondary arcs "
        f"into levels >= 1; {total_violations} locality violations "
        f"({'Lemma 5 holds on the whole corpus' if total_violations == 0 else 'LEMMA 5 FALSIFIED — investigate!'})."
    )
    return ExperimentReport(
        experiment_id="E5",
        title="Lemma 5 — locality of secondary arcs",
        tables=[table],
        summary=summary,
        data={
            "queries_checked": checked,
            "secondary_arcs": total_secondary,
            "violations": total_violations,
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
