"""E10 — the constraint gap: Sigma_FL-aware vs classic containment.

The paper's motivation quantified: over a mixed corpus of query pairs,
how often does containment hold *only because of* Sigma_FL?  Classic
Chandra–Merlin is sound (constrained databases are a subset of all
databases) but misses every constraint-induced containment; the fraction
it misses is the value the paper's machinery adds.
"""

from __future__ import annotations

from ..api import Engine
from ..containment.classic import contained_classic
from ..workloads.corpus import PAPER_CONTAINMENT_PAIRS
from ..workloads.query_gen import QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(*, random_pairs: int = 40, seed: int = 17) -> ExperimentReport:
    """Quantify verdicts the classic containment test misses versus Sigma_FL."""
    pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
    gen = QueryGenerator(seed)
    for _ in range(random_pairs):
        pairs.append(gen.containment_pair())

    engine = Engine()
    # One batch call: pairs sharing a q1 (up to renaming) share one chase.
    # Sequential on purpose — the experiment compares decision procedures,
    # not dispatch strategies, and in-process store sharing is the point.
    sigma_results = engine.check_all(pairs, parallel=False)
    both = classic_only = sigma_only = neither = 0
    for (q1, q2), sigma_result in zip(pairs, sigma_results):
        sigma = sigma_result.contained
        classic = contained_classic(q1, q2).contained
        if sigma and classic:
            both += 1
        elif sigma:
            sigma_only += 1
        elif classic:
            classic_only += 1
        else:
            neither += 1

    table = Table(
        "Containment verdicts over the corpus",
        ["verdict", "pairs", "share"],
    )
    total = len(pairs)
    for label, count in (
        ("contained under both tests", both),
        ("contained only under Sigma_FL", sigma_only),
        ("contained only classically (soundness violation!)", classic_only),
        ("not contained", neither),
    ):
        table.add_row(label, count, f"{100 * count / total:.1f}%")

    sigma_total = both + sigma_only
    stats = engine.checker.stats
    summary = (
        f"Of {sigma_total} contained pairs, {sigma_only} "
        f"({100 * sigma_only / max(sigma_total, 1):.0f}%) hold only under "
        "Sigma_FL — the containments the classic test cannot see. "
        f"Classic-only count is {classic_only} (must be 0: classic "
        "containment implies constrained containment). "
        f"Chase store: {stats}."
    )
    return ExperimentReport(
        experiment_id="E10",
        title="Baseline gap — what Sigma_FL-awareness buys",
        tables=[table],
        summary=summary,
        data={
            "pairs": total,
            "both": both,
            "sigma_only": sigma_only,
            "classic_only": classic_only,
            "neither": neither,
            "store": stats.as_dict(),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
