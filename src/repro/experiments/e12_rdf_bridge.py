"""E12 — the RDF/SPARQL applicability claim (paper, Section 1).

"Our results apply to SPARQL as well": we encode SPARQL-style BGP queries
through the P_FL bridge and decide containment with the Sigma_FL
machinery.  The showcase pair mirrors the paper's joinable-attributes
example in RDFS clothing:

    q1: things of a subclass of ?c            (meta-query over the schema)
    q2: things of class ?c

q1 ⊆ q2 holds under Sigma_FL (rho_3 membership propagation) but not
classically — the same phenomenon as the F-logic examples, now on RDF
vocabulary.
"""

from __future__ import annotations

from ..api import Engine
from ..containment.classic import contained_classic
from ..core.terms import Variable
from ..rdf.bridge import encode_bgp
from ..rdf.model import BGPQuery, TriplePattern, term
from .tables import ExperimentReport, Table

__all__ = ["run", "bridge_pairs"]


def bridge_pairs() -> list[tuple[BGPQuery, BGPQuery, bool]]:
    """(q1, q2, expected Sigma_FL verdict) triples of BGP queries."""
    x, c, d = Variable("x"), Variable("c"), Variable("d")
    subclass_members = BGPQuery(
        "subclass_members",
        (x, c),
        (
            TriplePattern(x, term("rdf:type"), d),
            TriplePattern(d, term("rdfs:subClassOf"), c),
        ),
    )
    class_members = BGPQuery(
        "class_members",
        (x, c),
        (TriplePattern(x, term("rdf:type"), c),),
    )
    grandparent_class = BGPQuery(
        "grandparent_class",
        (x, c),
        (
            TriplePattern(x, term("rdf:type"), d),
            TriplePattern(d, term("rdfs:subClassOf"), Variable("e")),
            TriplePattern(Variable("e"), term("rdfs:subClassOf"), c),
        ),
    )
    typed_value = BGPQuery(
        "typed_value",
        (x,),
        (
            TriplePattern(Variable("s"), Variable("p"), x),
            TriplePattern(Variable("p"), term("rdfs:range"), Variable("t")),
            TriplePattern(Variable("s"), term("rdf:type"), term("rdfs_resource")),
        ),
    )
    any_value = BGPQuery(
        "any_value",
        (x,),
        (TriplePattern(Variable("s"), Variable("p"), x),),
    )
    return [
        (subclass_members, class_members, True),
        (class_members, subclass_members, False),
        (grandparent_class, class_members, True),
        (typed_value, any_value, True),
    ]


def run() -> ExperimentReport:
    """Exercise the RDF/SPARQL bridge end to end and tabulate the round trip."""
    table = Table(
        "BGP containment through the P_FL bridge",
        ["pair", "expected", "sigma_fl", "classic"],
    )
    engine = Engine()
    rows = []
    all_match = True
    for bgp1, bgp2, expected in bridge_pairs():
        q1, q2 = encode_bgp(bgp1), encode_bgp(bgp2)
        sigma = engine.check(q1, q2).contained
        classic = contained_classic(q1, q2).contained
        all_match = all_match and sigma == expected
        table.add_row(f"{bgp1.name} ⊆ {bgp2.name}", expected, sigma, classic)
        rows.append(
            {
                "pair": (bgp1.name, bgp2.name),
                "expected": expected,
                "sigma": sigma,
                "classic": classic,
            }
        )
    summary = (
        "All BGP verdicts match expectation: subclass-mediated containments "
        "hold under Sigma_FL exactly as the paper's Section-1 claim for "
        "SPARQL suggests."
        if all_match
        else "MISMATCH on some BGP pair — inspect the table."
    )
    return ExperimentReport(
        experiment_id="E12",
        title="RDF/SPARQL bridge — BGP containment",
        tables=[table],
        summary=summary,
        data={"rows": rows, "all_match": all_match},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
