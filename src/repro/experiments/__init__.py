"""The experiment harness — one module per row of DESIGN.md's index.

``EXPERIMENTS`` maps experiment ids to their ``run`` callables; the CLI
(``flq experiment E4``) and the benchmark suite both dispatch through it.
"""

from typing import Callable

from . import (
    e01_intro_containments,
    e03_example1_head,
    e04_figure1_graph,
    e05_locality,
    e06_lemma9,
    e07_lemma11,
    e08_bound_stability,
    e09_scaling,
    e10_baseline_gap,
    e11_chase_growth,
    e12_rdf_bridge,
    e13_join_order,
)
from .tables import ExperimentReport, Table

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "ExperimentReport", "Table"]

#: Experiment id -> zero-config runner.  E1/E2 share a module (the two
#: Section-1 examples are one table), as do E6 (Lemma 9 incl. Figure 2)
#: and E7 (Lemma 11 incl. Figures 3-4).
EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "E1": e01_intro_containments.run,
    "E2": e01_intro_containments.run,
    "E3": e03_example1_head.run,
    "E4": e04_figure1_graph.run,
    "E5": e05_locality.run,
    "E6": e06_lemma9.run,
    "E7": e07_lemma11.run,
    "E8": e08_bound_stability.run,
    "E9": e09_scaling.run,
    "E10": e10_baseline_gap.run,
    "E11": e11_chase_growth.run,
    "E12": e12_rdf_bridge.run,
    "E13": e13_join_order.run,
}


def run_experiment(experiment_id: str) -> ExperimentReport:
    """Run one experiment by id (``"E4"``)."""
    key = experiment_id.upper()
    try:
        runner = EXPERIMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all() -> list[ExperimentReport]:
    """Run every experiment once (deduplicating shared modules)."""
    seen: set[Callable] = set()
    reports = []
    for runner in EXPERIMENTS.values():
        if runner in seen:
            continue
        seen.add(runner)
        reports.append(runner())
    return reports
