"""Plain-text tables for experiment reports.

Every experiment renders its results through :class:`Table`, so the
benchmark harness output has one consistent look and EXPERIMENTS.md can
quote it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "ExperimentReport"]


class Table:
    """A titled, column-aligned text table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> "Table":
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_format_cell(v) for v in values])
        return self

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __len__(self) -> int:
        return len(self.rows)


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentReport:
    """What one experiment produces.

    ``data`` holds the machine-readable results the tests and benchmarks
    assert on; ``tables`` the human-readable rendering; ``summary`` the
    one-paragraph take-away recorded in EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    summary: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"[{self.experiment_id}] {self.title}", ""]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        if self.summary:
            parts.append(self.summary)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
