"""E9 — Theorem 13: complexity scaling of the decision procedure.

Theorem 13 places containment in NP via a two-part algorithm: a
polynomial chase-prefix construction and a (nondeterministic) witness
guess.  Our deterministic realisation should therefore show

* chase-prefix time growing polynomially with |q1| (and with the bound,
  which is linear in |q1| and |q2|), and
* homomorphism-search time that is modest on average but can blow up on
  adversarial instances (the NP-hardness side — CQ containment is already
  NP-hard without constraints).

The experiment sweeps |q1| and |q2| over random acyclic and cyclic
workloads and reports wall-clock per phase.  The chase phase runs as a
resumable :class:`~repro.chase.engine.ChaseRun` session built in two
steps — first to half the Theorem-12 bound, then extended to the full
bound — so the table also splits chase time into the prefix cost and the
marginal cost of the second half (the increment a cached session saves).

Each pair is additionally decided end-to-end under both checker
schedules: the anytime pipeline (interleaved chase / delta search, early
exit at the witness level) against the monolithic chase-then-search
order.  The table reports both wall-clocks plus the witness level, making
the anytime saving — witness levels are typically far below the
Theorem-12 bound — directly visible next to the phase split.

A second table re-checks every pair under a tight
:class:`~repro.governance.ExecutionBudget` deadline and tallies the
three-valued outcomes: budget exhaustion turns would-be decisions into
UNKNOWN results, never into wrong ones (the graceful-degradation
contract of the governance layer).
"""

from __future__ import annotations

import time

from ..chase.engine import ChaseConfig, ChaseEngine
from ..containment.bounded import ContainmentChecker, theorem12_bound
from ..containment.result import Decision
from ..dependencies.sigma_fl import SIGMA_FL
from ..governance.budget import ExecutionBudget
from ..homomorphism.search import SearchStats, find_homomorphism
from ..obs import MetricsRegistry, Observability
from ..workloads.query_gen import QueryGenParams, QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def _measure_pair(q1, q2, obs: Observability) -> dict:
    bound = theorem12_bound(q1, q2)
    engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=bound), obs=obs)
    run = engine.start(q1)
    t0 = time.perf_counter()
    run.extend_to(bound // 2)
    t_half = time.perf_counter() - t0
    t0 = time.perf_counter()
    run.extend_to(bound)
    t_extend = time.perf_counter() - t0
    chase_result = run.result()
    witness = None
    t_hom = 0.0
    search_stats = SearchStats()
    if not chase_result.failed:
        assert chase_result.instance is not None
        t0 = time.perf_counter()
        witness = find_homomorphism(
            q2,
            chase_result.instance.index,
            head_target=chase_result.head,
            stats=search_stats,
        )
        t_hom = time.perf_counter() - t0
        if obs.metrics is not None:
            obs.metrics.counter("hom.searches").inc()
            obs.metrics.counter("hom.nodes_expanded").inc(search_stats.nodes)
            obs.metrics.counter("hom.backtracks").inc(search_stats.backtracks)
    # End-to-end schedule comparison on fresh checkers (cold stores, so
    # neither schedule inherits the other's chase).
    t0 = time.perf_counter()
    anytime_result = ContainmentChecker(obs=obs).check(q1, q2)
    t_anytime = time.perf_counter() - t0
    t0 = time.perf_counter()
    ContainmentChecker(anytime=False).check(q1, q2)
    t_monolithic = time.perf_counter() - t0
    return {
        "bound": bound,
        "chase_size": chase_result.size(),
        "chase_seconds": t_half + t_extend,
        "half_seconds": t_half,
        "extend_seconds": t_extend,
        "hom_seconds": t_hom,
        "hom_nodes": search_stats.nodes,
        "hom_backtracks": search_stats.backtracks,
        "contained": witness is not None or chase_result.failed,
        "anytime_seconds": t_anytime,
        "monolithic_seconds": t_monolithic,
        "witness_level": anytime_result.witness_level,
        "levels_chased": anytime_result.levels_chased,
    }


def run(
    *,
    sizes: tuple[int, ...] = (2, 4, 6, 8, 10),
    pairs_per_size: int = 3,
    cyclic: bool = True,
    seed: int = 5,
) -> ExperimentReport:
    """Measure decision wall-clock as query size scales (the E9 corpus)."""
    table = Table(
        "Theorem 13 scaling: time per phase vs query size",
        [
            "|q1|",
            "|q2|",
            "bound",
            "avg chase size",
            "avg chase sec",
            "avg extend sec",
            "avg hom sec",
            "anytime sec",
            "monolithic sec",
            "witness lvl",
            "contained",
        ],
    )
    obs = Observability(metrics=MetricsRegistry())
    rows = []
    pair_cache: dict[int, list] = {}
    for size in sizes:
        chase_secs = []
        extend_secs = []
        hom_secs = []
        chase_sizes = []
        anytime_secs = []
        monolithic_secs = []
        witness_levels = []
        contained_count = 0
        bound = 0
        for k in range(pairs_per_size):
            params = QueryGenParams(
                n_atoms=size,
                n_variables=size + 2,
                cycle_length=1 if (cyclic and k % 2 == 0) else 0,
                head_arity=1,
            )
            gen = QueryGenerator(seed + size * 100 + k, params)
            q1, q2 = gen.containment_pair()
            pair_cache.setdefault(size, []).append((q1, q2))
            m = _measure_pair(q1, q2, obs)
            bound = m["bound"]
            chase_secs.append(m["chase_seconds"])
            extend_secs.append(m["extend_seconds"])
            hom_secs.append(m["hom_seconds"])
            chase_sizes.append(m["chase_size"])
            anytime_secs.append(m["anytime_seconds"])
            monolithic_secs.append(m["monolithic_seconds"])
            if m["witness_level"] is not None:
                witness_levels.append(m["witness_level"])
            contained_count += int(m["contained"])
        n = len(chase_secs)
        row = {
            "size": size,
            "bound": bound,
            "avg_chase_size": sum(chase_sizes) / n,
            "avg_chase_seconds": sum(chase_secs) / n,
            "avg_extend_seconds": sum(extend_secs) / n,
            "avg_hom_seconds": sum(hom_secs) / n,
            "avg_anytime_seconds": sum(anytime_secs) / n,
            "avg_monolithic_seconds": sum(monolithic_secs) / n,
            "max_witness_level": max(witness_levels, default=None),
            "contained": contained_count,
        }
        rows.append(row)
        table.add_row(
            size,
            size,
            bound,
            round(row["avg_chase_size"], 1),
            row["avg_chase_seconds"],
            row["avg_extend_seconds"],
            row["avg_hom_seconds"],
            row["avg_anytime_seconds"],
            row["avg_monolithic_seconds"],
            "-" if row["max_witness_level"] is None else row["max_witness_level"],
            f"{contained_count}/{n}",
        )
    # Governed re-check: the same pairs under a tight wall-clock budget
    # (half of each size's measured anytime wall-clock).  Decisions that
    # beat the deadline survive unchanged; the rest come back UNKNOWN —
    # never a guessed verdict — demonstrating the graceful-degradation
    # contract of the three-valued result.
    governed_table = Table(
        "Governed re-check: three-valued outcomes under a tight deadline",
        ["|q|", "deadline sec", "true", "false", "unknown", "max lvl chased"],
    )
    governed_rows = []
    for size, pairs in pair_cache.items():
        base = next(r for r in rows if r["size"] == size)
        deadline = max(base["avg_anytime_seconds"] * 0.5, 1e-4)
        checker = ContainmentChecker(
            obs=obs, budget=ExecutionBudget(deadline_seconds=deadline)
        )
        counts = {Decision.TRUE: 0, Decision.FALSE: 0, Decision.UNKNOWN: 0}
        levels_chased = []
        for q1, q2 in pairs:
            result = checker.check(q1, q2)
            counts[result.decision] += 1
            if result.levels_chased is not None:
                levels_chased.append(result.levels_chased)
        governed_rows.append(
            {
                "size": size,
                "deadline_seconds": deadline,
                "true": counts[Decision.TRUE],
                "false": counts[Decision.FALSE],
                "unknown": counts[Decision.UNKNOWN],
                "max_levels_chased": max(levels_chased, default=None),
            }
        )
        governed_table.add_row(
            size,
            round(deadline, 5),
            counts[Decision.TRUE],
            counts[Decision.FALSE],
            counts[Decision.UNKNOWN],
            max(levels_chased, default="-"),
        )
    unknown_total = sum(r["unknown"] for r in governed_rows)
    decided_total = sum(r["true"] + r["false"] for r in governed_rows)
    # Crude polynomial check: chase time should grow far slower than 2^n.
    ratio = (
        rows[-1]["avg_chase_seconds"] / max(rows[0]["avg_chase_seconds"], 1e-9)
        if len(rows) >= 2
        else 1.0
    )
    size_ratio = sizes[-1] / sizes[0] if len(sizes) >= 2 else 1.0
    witness_cap = max(
        (r["max_witness_level"] for r in rows if r["max_witness_level"] is not None),
        default=None,
    )
    summary = (
        f"Chase-phase time grew {ratio:.1f}x while |q| grew {size_ratio:.1f}x "
        f"(bound grows quadratically in |q|): consistent with the polynomial "
        f"chase-prefix construction of Theorem 13; the homomorphism phase "
        f"remains the potentially exponential component.  'avg extend sec' "
        f"is the marginal cost of growing each session from half the bound "
        f"to the full bound — the work an incremental re-check pays instead "
        f"of a full re-chase.  Every positive witness embedded by chase "
        f"level {witness_cap} while the Theorem-12 bound reached "
        f"{rows[-1]['bound']}: the gap the anytime schedule's early exit "
        f"converts into the 'anytime sec' column.  Under a half-wall-clock "
        f"deadline the governed re-check decided {decided_total} pairs and "
        f"returned UNKNOWN for {unknown_total} — budget exhaustion degrades "
        f"to 'no decision', never to a wrong decision."
    )
    return ExperimentReport(
        experiment_id="E9",
        title="Theorem 13 — scaling of the containment procedure",
        tables=[table, governed_table],
        summary=summary,
        data={
            "rows": rows,
            "governed_rows": governed_rows,
            "metrics": obs.metrics.as_dict(),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
