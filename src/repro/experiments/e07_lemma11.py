"""E7 — Lemma 11 / Figures 3–4: conjunct *sets* fold into n·delta levels.

Lemma 11: any set of n conjuncts of ``chase(q)`` maps, under a *single*
homomorphism, to conjuncts at level <= ``n * delta`` (delta = 2|q|).  We
sample sets of deep conjuncts from long chases and search for the joint
bounded image.  The single-homomorphism requirement is what distinguishes
this from n applications of Lemma 9 — shared nulls must be moved
consistently.
"""

from __future__ import annotations

import random

from ..chase.engine import chase
from ..chase.paths import bounded_image_of_set
from ..workloads.corpus import EXAMPLE2_QUERY
from ..workloads.query_gen import QueryGenParams, QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(
    *, set_sizes: tuple[int, ...] = (1, 2, 3), samples_per_size: int = 5, seed: int = 7
) -> ExperimentReport:
    """Check the Lemma-11 set-image bound across sampled conjunct sets."""
    rng = random.Random(seed)
    gen = QueryGenerator(
        seed,
        QueryGenParams(
            n_atoms=4, cycle_length=2, head_arity=0, constant_probability=0.0
        ),
    )
    corpus = [EXAMPLE2_QUERY, gen.query()]

    table = Table(
        "Lemma 11: joint images of conjunct sets within n*delta levels",
        ["query", "n", "bound n*delta", "samples", "with joint bounded image"],
    )
    all_ok = True
    rows = []
    for query in corpus:
        delta = 2 * query.size
        depth = (max(set_sizes) + 2) * delta
        result = chase(query, max_level=depth, track_graph=True)
        if result.failed or result.instance is None:
            continue
        instance = result.instance
        deep = [a for a in instance if instance.level_of(a) > delta]
        if not deep:
            continue
        for n in set_sizes:
            bound = n * delta
            ok_count = 0
            tried = 0
            for _ in range(samples_per_size):
                if len(deep) < n:
                    break
                sample = rng.sample(deep, n)
                tried += 1
                if bounded_image_of_set(instance, sample, bound) is not None:
                    ok_count += 1
            if tried:
                all_ok = all_ok and ok_count == tried
                table.add_row(query.name, n, bound, tried, ok_count)
                rows.append(
                    {
                        "query": query.name,
                        "n": n,
                        "bound": bound,
                        "tried": tried,
                        "ok": ok_count,
                    }
                )
    summary = (
        "Every sampled conjunct set admits a single homomorphism into the "
        "first n*delta levels — Lemma 11 validated."
        if all_ok
        else "LEMMA 11 FALSIFIED on some sample — investigate!"
    )
    return ExperimentReport(
        experiment_id="E7",
        title="Lemma 11 — bounded joint images (conjunct sets)",
        tables=[table],
        summary=summary,
        data={"rows": rows, "all_hold": all_ok},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
