"""E11 — chase growth and the restricted/oblivious ablation (D1).

Two series per query:

* **growth** — cumulative conjunct count per level.  Lemma 5's locality
  means each infinite chain adds a constant number of conjuncts per cycle,
  so growth should be *linear* in the level bound for cyclic queries and
  flat (saturated) for acyclic ones.
* **D1 ablation** — the same chase run obliviously (rho_5 fires even when
  its head is already satisfied).  The oblivious chase is never smaller
  and is the price of skipping the restricted-chase applicability check.
* **governed chase** — the same corpus chased under an
  :class:`~repro.governance.ExecutionBudget` fact ceiling and under a
  wall-clock deadline, reporting which resource (if any) ran out and how
  far the truncated run got.  Cyclic queries hit the ceiling; saturating
  queries complete untouched.
"""

from __future__ import annotations

from ..chase.engine import ChaseConfig, ChaseEngine, chase
from ..core.errors import ExecutionInterrupted
from ..core.query import ConjunctiveQuery
from ..governance.budget import ExecutionBudget, Governor
from ..obs import MetricsRegistry, Observability
from ..workloads.corpus import EXAMPLE2_QUERY, INTRO_MANDATORY_Q
from ..workloads.query_gen import QueryGenParams, QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(
    *, levels: tuple[int, ...] = (4, 8, 12, 16, 20), seed: int = 23
) -> ExperimentReport:
    """Chart chase-instance growth per level on the Figure-1 cycle."""
    gen = QueryGenerator(
        seed, QueryGenParams(n_atoms=6, cycle_length=2, head_arity=0)
    )
    # A query whose rho_5 trigger is already satisfied by a body data atom:
    # the restricted chase blocks value invention at the entry point, the
    # oblivious chase invents anyway — the purest D1 contrast.
    from ..core.atoms import data as data_atom
    from ..core.atoms import mandatory as mandatory_atom
    from ..core.atoms import type_ as type_atom
    from ..core.terms import Variable

    a, t, w = Variable("A"), Variable("T"), Variable("W")
    presatisfied = ConjunctiveQuery(
        "q_presatisfied",
        (),
        (mandatory_atom(a, t), type_atom(t, a, t), data_atom(t, a, w)),
    )
    corpus = [EXAMPLE2_QUERY, INTRO_MANDATORY_Q, presatisfied, gen.query()]

    growth = Table(
        "Chase size vs level bound (restricted chase)",
        ["query", *[f"L<={lvl}" for lvl in levels], "saturates"],
    )
    ablation = Table(
        "D1 ablation: restricted vs oblivious chase size",
        ["query", "level bound", "restricted", "oblivious", "inflation"],
    )
    obs = Observability(metrics=MetricsRegistry())
    rows = []
    for query in corpus:
        sizes = []
        saturated = False
        for bound in levels:
            result = chase(query, max_level=bound, obs=obs)
            sizes.append(result.size())
            saturated = result.saturated
        growth.add_row(query.name, *sizes, saturated)

        bound = levels[len(levels) // 2]
        restricted = chase(query, max_level=bound, obs=obs).size()
        oblivious = chase(query, max_level=bound, restricted=False, obs=obs).size()
        inflation = oblivious / max(restricted, 1)
        ablation.add_row(query.name, bound, restricted, oblivious, f"{inflation:.2f}x")
        rows.append(
            {
                "query": query.name,
                "sizes": sizes,
                "saturates": saturated,
                "restricted": restricted,
                "oblivious": oblivious,
            }
        )

    # Governed chase: the same corpus under a fact ceiling and under a
    # wall-clock deadline.  A cyclic chase must hit one of the limits; a
    # saturating chase finishes inside them.  Either way the outcome is
    # reported structurally (which resource, how many facts/steps) rather
    # than as an opaque failure.
    governed = Table(
        "Governed chase: budget outcomes per query",
        ["query", "budget", "outcome", "exhausted", "facts", "steps"],
    )
    governed_rows = []
    budgets = [
        ("max_facts=40", ExecutionBudget(max_facts=40)),
        ("deadline=25ms", ExecutionBudget(deadline_seconds=0.025)),
    ]
    for query in corpus:
        for label, budget in budgets:
            engine = ChaseEngine(config=ChaseConfig(max_level=levels[-1]))
            chase_run = engine.start(query)
            governor = Governor(budget, obs=obs)
            try:
                chase_run.extend_to(levels[-1], governor=governor)
            except ExecutionInterrupted as exc:
                report = exc.budget_report
                outcome, exhausted = "interrupted", report.exhausted
                facts, steps = len(chase_run.instance), report.steps
            else:
                outcome, exhausted = "completed", "-"
                facts, steps = len(chase_run.instance), governor.steps
            governed.add_row(query.name, label, outcome, exhausted, facts, steps)
            governed_rows.append(
                {
                    "query": query.name,
                    "budget": label,
                    "outcome": outcome,
                    "exhausted": None if exhausted == "-" else exhausted,
                    "facts": facts,
                    "steps": steps,
                }
            )

    # Linearity check on the cyclic queries: growth increments stabilise
    # (bounded oscillation is expected — the cycle period need not divide
    # the sampling stride of the level grid).
    linear = True
    for row in rows:
        if row["saturates"]:
            continue
        diffs = [b - a for a, b in zip(row["sizes"], row["sizes"][1:])]
        steady = diffs[1:] or diffs
        if steady and max(steady) - min(steady) > 4:
            linear = False
    summary = (
        "Cyclic chases grow linearly with the level bound (constant "
        "conjuncts per cycle period — the Lemma-5 isolation of chains), "
        "acyclic chases saturate; the oblivious chase is uniformly larger."
        if linear
        else "Growth increments are irregular — inspect the table."
    )
    return ExperimentReport(
        experiment_id="E11",
        title="Chase growth and restricted/oblivious ablation",
        tables=[growth, ablation, governed],
        summary=summary,
        data={
            "rows": rows,
            "governed_rows": governed_rows,
            "levels": list(levels),
            "linear": linear,
            "metrics": obs.metrics.as_dict(),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
