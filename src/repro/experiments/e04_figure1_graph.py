"""E4 — Figure 1: the chase graph of Example 2.

The paper's Figure 1 draws the chase graph of

    q() :- mandatory(A,T), type(T,A,T), sub(T,U)

whose chase is infinite: the rho_5–rho_1–rho_6–rho_10 loop produces the
chain

    data(T,A,v1), member(v1,T), type(v1,A,T), mandatory(A,v1),
    data(v1,A,v2), member(v2,T), ...

with rho_3 branches ``member(v_i, U)`` hanging off it.  We rebuild the
graph up to a configurable level bound and verify the chain conjuncts of
the figure appear, with the right generating rules.
"""

from __future__ import annotations

from ..chase.engine import chase
from ..chase.graph import ChaseGraph
from ..workloads.corpus import EXAMPLE2_QUERY
from .tables import ExperimentReport, Table

__all__ = ["run", "FIGURE1_CHAIN"]

#: The chain of Figure 1 as (predicate, generating rule) in chase order.
#: (The member(v_i, U) branch conjuncts are checked separately.)
FIGURE1_CHAIN = (
    ("data", "rho5"),
    ("member", "rho1"),
    ("type", "rho6"),
    ("mandatory", "rho10"),
    ("data", "rho5"),
    ("member", "rho1"),
    ("type", "rho6"),
    ("mandatory", "rho10"),
)


def run(max_level: int = 12) -> ExperimentReport:
    """Materialise the Figure-1 infinite chase to *max_level* and chart its growth."""
    """Materialise the Figure-1 infinite chase to *max_level* and chart its growth."""
    result = chase(EXAMPLE2_QUERY, max_level=max_level, track_graph=True)
    assert result.instance is not None
    graph = ChaseGraph.from_result(result)

    table = Table(
        f"Figure 1: chase graph of Example 2 (first {max_level} levels)",
        ["level", "conjunct", "rule", "in-arcs", "out-arcs"],
    )
    for level in range(graph.max_level() + 1):
        for atom in sorted(graph.nodes_at_level(level), key=str):
            table.add_row(
                level,
                str(atom),
                graph.rule(atom),
                len(graph.arcs_into(atom)),
                len(graph.arcs_out_of(atom)),
            )

    arc_table = Table(
        "Arc classification (Definition 3(5))",
        ["kind", "count"],
    )
    primary = graph.primary_arcs()
    secondary = graph.secondary_arcs()
    cross = [a for a in graph.arcs() if a.cross]
    arc_table.add_row("primary", len(primary))
    arc_table.add_row("secondary", len(secondary))
    arc_table.add_row("cross-arcs", len(cross))

    # Verify the figure's chain: walk levels >= 1 chain conjuncts in order.
    chain_atoms = [
        atom
        for atom in graph.nodes()
        if graph.level(atom) >= 1 and graph.rule(atom) in {r for _, r in FIGURE1_CHAIN}
    ]
    chain_atoms.sort(key=lambda a: (graph.level(a), str(a)))
    observed = [(a.predicate, graph.rule(a)) for a in chain_atoms]
    chain_found = all(
        step in observed for step in FIGURE1_CHAIN
    ) and _chain_in_order(observed, FIGURE1_CHAIN)
    branch_found = any(
        a.predicate == "member" and str(a.args[1]) == "U" for a in graph.nodes()
    )
    summary = (
        "The Figure-1 chain (rho5 -> rho1 -> rho6 -> rho10, repeating) and "
        f"the member(v_i, U) branch are both present; the chase is "
        f"{'still growing at the bound' if not result.saturated else 'saturated'} "
        f"with {len(graph)} conjuncts across {graph.max_level() + 1} levels."
        if chain_found and branch_found
        else "MISMATCH with Figure 1 — inspect the tables."
    )
    return ExperimentReport(
        experiment_id="E4",
        title="Figure 1 — chase graph of Example 2",
        tables=[table, arc_table],
        summary=summary,
        data={
            "nodes": len(graph),
            "max_level": graph.max_level(),
            "primary_arcs": len(primary),
            "secondary_arcs": len(secondary),
            "cross_arcs": len(cross),
            "chain_found": chain_found,
            "branch_found": branch_found,
            "saturated": result.saturated,
        },
    )


def _chain_in_order(observed, expected) -> bool:
    """Check *expected* appears as a subsequence of *observed*."""
    it = iter(observed)
    return all(step in it for step in expected)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
