"""E1/E2 — the paper's Section-1 containment examples.

Reproduces both worked containments of the introduction (joinable
attribute pairs; mandatory attributes of inhabited classes), in both
directions, under Sigma_FL and under the classic constraint-free test.
The paper's claims:

* ``q ⊆ qq`` holds in both examples *because of the constraints*;
* the classic homomorphism test (our baseline) does not find either,
  which is precisely why the paper's machinery is needed.
"""

from __future__ import annotations

from ..api import Engine
from ..containment.classic import contained_classic
from ..workloads.corpus import PAPER_CONTAINMENT_PAIRS
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run() -> ExperimentReport:
    """Decide the four Section-1 containment pairs and tabulate the verdicts."""
    """Decide the four Section-1 containment pairs and tabulate the verdicts."""
    table = Table(
        "Paper Section-1 containments: Sigma_FL-aware vs classic",
        ["pair", "expected", "sigma_fl", "classic", "witness"],
    )
    engine = Engine()
    results = []
    for q1, q2, expect_sigma, expect_classic in PAPER_CONTAINMENT_PAIRS:
        sigma_result = engine.check(q1, q2)
        classic_result = contained_classic(q1, q2)
        witness = str(sigma_result.witness) if sigma_result.witness else "-"
        table.add_row(
            f"{q1.name} ⊆ {q2.name}",
            expect_sigma,
            sigma_result.contained,
            classic_result.contained,
            witness if len(witness) < 60 else witness[:57] + "...",
        )
        results.append(
            {
                "pair": (q1.name, q2.name),
                "expected_sigma": expect_sigma,
                "expected_classic": expect_classic,
                "sigma": sigma_result.contained,
                "classic": classic_result.contained,
            }
        )
    matches = sum(
        1
        for r in results
        if r["sigma"] == r["expected_sigma"] and r["classic"] == r["expected_classic"]
    )
    summary = (
        f"{matches}/{len(results)} verdicts match the paper. The two positive "
        "containments hold only under Sigma_FL (classic test: no), exactly "
        "as the introduction argues."
    )
    return ExperimentReport(
        experiment_id="E1-E2",
        title="Section-1 containment examples",
        tables=[table],
        summary=summary,
        data={"results": results, "matches": matches},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
