"""E6 — Lemma 9 / Figure 2: deep conjuncts fold into the first 2|q| levels.

Lemma 9: any conjunct of ``chase(q)`` has a homomorphic image at level
<= ``delta = 2 * |q|``.  We chase cyclic queries deep (far beyond delta)
and validate the lemma two independent ways for every conjunct above
delta: (a) *search* for the bounded image (``bounded_image``), and
(b) *construct* it with the proof's own excision algorithm — primary
path, equivalent pair, parallel-path clip (``excise``, Figure 2).  The
paper predicts both succeed on every conjunct.
"""

from __future__ import annotations

from ..chase.engine import chase
from ..chase.excision import excise
from ..chase.graph import ChaseGraph
from ..chase.paths import bounded_image
from ..workloads.corpus import EXAMPLE2_QUERY
from ..workloads.query_gen import QueryGenParams, QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(*, depth_factor: int = 3, seed: int = 42) -> ExperimentReport:
    """Check the Lemma-9 bounded-image property on cyclic chase graphs."""
    """Check the Lemma-9 bounded-image property on cyclic chase graphs."""
    corpus = [EXAMPLE2_QUERY]
    for cycle_length in (2, 3):
        gen = QueryGenerator(
            seed + cycle_length,
            QueryGenParams(
                n_atoms=2 * cycle_length,
                cycle_length=cycle_length,
                head_arity=0,
                constant_probability=0.0,
            ),
        )
        corpus.append(gen.query(name=f"cycle{cycle_length}"))

    table = Table(
        "Lemma 9: images of deep conjuncts within delta = 2|q| levels",
        [
            "query",
            "|q|",
            "delta",
            "chase depth",
            "deep conjuncts",
            "found by search",
            "built by excision",
        ],
    )
    all_ok = True
    rows = []
    for query in corpus:
        delta = 2 * query.size
        depth = depth_factor * delta
        result = chase(query, max_level=depth, track_graph=True)
        if result.failed or result.instance is None:
            continue
        instance = result.instance
        graph = ChaseGraph.from_result(result)
        deep = [a for a in instance if instance.level_of(a) > delta]
        found = sum(1 for a in deep if bounded_image(instance, a, delta) is not None)
        constructed = sum(
            1 for a in deep if excise(graph, instance, a, delta) is not None
        )
        ok = found == len(deep) and constructed == len(deep)
        all_ok = all_ok and ok
        table.add_row(
            query.name, query.size, delta, depth, len(deep), found, constructed
        )
        rows.append(
            {
                "query": query.name,
                "delta": delta,
                "deep": len(deep),
                "bounded_images": found,
                "excisions": constructed,
                "lemma_holds": ok,
            }
        )
    summary = (
        "Every conjunct above the delta bound admits a homomorphic image "
        "within the bound — found by search AND rebuilt by the proof's "
        "excision construction.  Lemma 9 validated on the corpus."
        if all_ok
        else "LEMMA 9 FALSIFIED on some instance — investigate!"
    )
    return ExperimentReport(
        experiment_id="E6",
        title="Lemma 9 — bounded homomorphic images (single conjuncts)",
        tables=[table],
        summary=summary,
        data={"rows": rows, "all_hold": all_ok},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
