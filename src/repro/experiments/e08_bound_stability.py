"""E8 — Theorem 12: the |q2|·delta bound is sufficient.

Theorem 12 says the containment verdict at level bound ``|q2| * 2 * |q1|``
equals the verdict over the full (possibly infinite) chase.  We cannot
materialise the infinite chase, but we can check the practical corollary:
*inflating the bound never flips a verdict*.  The experiment decides every
corpus pair at 1x, 2x and 4x the theorem bound and reports disagreements
(the paper predicts zero — a verdict that flips when the prefix grows
would falsify the theorem on that instance).

All 3·N checks run against one shared :class:`ChaseStore`, so each query
is chased exactly once and the 2x/4x sweeps merely *extend* its stored
prefix (or hit it outright when the chase already saturated).  The store
counters in the second table quantify that reuse.
"""

from __future__ import annotations

from ..containment.bounded import ContainmentChecker, theorem12_bound
from ..containment.store import ChaseStore
from ..obs import MetricsRegistry, Observability
from ..workloads.corpus import PAPER_CONTAINMENT_PAIRS
from ..workloads.query_gen import QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(*, random_pairs: int = 20, seed: int = 11) -> ExperimentReport:
    """Verify decisions are stable when the Theorem-12 bound is varied."""
    pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
    gen = QueryGenerator(seed)
    for _ in range(random_pairs):
        pairs.append(gen.containment_pair())

    table = Table(
        "Theorem 12 bound stability: verdicts at 1x / 2x / 4x the bound",
        ["pair", "bound", "verdict@1x", "verdict@2x", "verdict@4x", "stable", "chase@4x"],
    )
    obs = Observability(metrics=MetricsRegistry())
    store = ChaseStore(capacity=None, obs=obs)
    checker = ContainmentChecker(store=store, obs=obs)
    flips = 0
    positives = 0
    rows = []
    for q1, q2 in pairs:
        base = theorem12_bound(q1, q2)
        results = [
            checker.check(q1, q2, level_bound=base * factor) for factor in (1, 2, 4)
        ]
        verdicts = [r.contained for r in results]
        stable = len(set(verdicts)) == 1
        if not stable:
            flips += 1
        if verdicts[0]:
            positives += 1
        table.add_row(
            f"{q1.name} ⊆ {q2.name}",
            base,
            verdicts[0],
            verdicts[1],
            verdicts[2],
            stable,
            results[2].chase_outcome,
        )
        rows.append(
            {
                "pair": (q1.name, q2.name),
                "bound": base,
                "verdicts": verdicts,
                "stable": stable,
                "chase_outcomes": [r.chase_outcome for r in results],
            }
        )
    stats = store.stats
    reuse_table = Table(
        "Chase-store reuse over the 1x/2x/4x sweep",
        ["chase requests", "full chases", "extensions", "pure hits", "distinct q1"],
    )
    reuse_table.add_row(
        stats.requests, stats.full_chases, stats.extensions, stats.hits, len(store)
    )
    summary = (
        f"{len(pairs)} pairs ({positives} contained), {flips} verdict flips "
        f"under bound inflation — "
        f"{'consistent with Theorem 12' if flips == 0 else 'INCONSISTENT with Theorem 12!'}. "
        f"The sweep issued {stats.requests} chase requests but ran only "
        f"{stats.full_chases} full chases (one per distinct q1); the 2x/4x "
        f"re-checks were served by {stats.extensions} incremental extensions "
        f"and {stats.hits} cache hits."
    )
    return ExperimentReport(
        experiment_id="E8",
        title="Theorem 12 — sufficiency of the |q2|·delta level bound",
        tables=[table, reuse_table],
        summary=summary,
        data={
            "pairs": len(pairs),
            "flips": flips,
            "rows": rows,
            "store": stats.as_dict(),
            "distinct_q1": len(store),
            "metrics": obs.metrics.as_dict(),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
