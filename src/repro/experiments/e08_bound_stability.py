"""E8 — Theorem 12: the |q2|·delta bound is sufficient.

Theorem 12 says the containment verdict at level bound ``|q2| * 2 * |q1|``
equals the verdict over the full (possibly infinite) chase.  We cannot
materialise the infinite chase, but we can check the practical corollary:
*inflating the bound never flips a verdict*.  The experiment decides every
corpus pair at 1x, 2x and 4x the theorem bound and reports disagreements
(the paper predicts zero — a verdict that flips when the prefix grows
would falsify the theorem on that instance).
"""

from __future__ import annotations

from ..containment.bounded import ContainmentChecker, theorem12_bound
from ..workloads.corpus import PAPER_CONTAINMENT_PAIRS
from ..workloads.query_gen import QueryGenerator
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run(*, random_pairs: int = 20, seed: int = 11) -> ExperimentReport:
    pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
    gen = QueryGenerator(seed)
    for _ in range(random_pairs):
        pairs.append(gen.containment_pair())

    table = Table(
        "Theorem 12 bound stability: verdicts at 1x / 2x / 4x the bound",
        ["pair", "bound", "verdict@1x", "verdict@2x", "verdict@4x", "stable"],
    )
    flips = 0
    positives = 0
    rows = []
    for q1, q2 in pairs:
        base = theorem12_bound(q1, q2)
        checker = ContainmentChecker()
        verdicts = [
            checker.check(q1, q2, level_bound=base * factor).contained
            for factor in (1, 2, 4)
        ]
        stable = len(set(verdicts)) == 1
        if not stable:
            flips += 1
        if verdicts[0]:
            positives += 1
        table.add_row(
            f"{q1.name} ⊆ {q2.name}", base, verdicts[0], verdicts[1], verdicts[2], stable
        )
        rows.append(
            {
                "pair": (q1.name, q2.name),
                "bound": base,
                "verdicts": verdicts,
                "stable": stable,
            }
        )
    summary = (
        f"{len(pairs)} pairs ({positives} contained), {flips} verdict flips "
        f"under bound inflation — "
        f"{'consistent with Theorem 12' if flips == 0 else 'INCONSISTENT with Theorem 12!'}"
    )
    return ExperimentReport(
        experiment_id="E8",
        title="Theorem 12 — sufficiency of the |q2|·delta level bound",
        tables=[table],
        summary=summary,
        data={"pairs": len(pairs), "flips": flips, "rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
