"""E3 — Example 1: the EGD rewrites the query head.

The paper chases

    q(V1,V2) :- data(O,A,V1), data(O,A,V2), funct(A,C), member(O,C)

and shows that rho_12 derives ``funct(A,O)``, after which rho_4 merges
``V2`` into ``V1`` — including in the head, which becomes ``q(V1,V1)``.
This experiment replays the construction and reports the conjuncts and
the transformed head.
"""

from __future__ import annotations

from ..chase.engine import chase
from ..core.terms import Variable
from ..workloads.corpus import EXAMPLE1_QUERY
from .tables import ExperimentReport, Table

__all__ = ["run"]


def run() -> ExperimentReport:
    """Chase Example 1 and report the rho_4 head rewrite q(V1,V2) -> q(V1,V1)."""
    """Chase Example 1 and report the rho_4 head rewrite q(V1,V2) -> q(V1,V1)."""
    result = chase(EXAMPLE1_QUERY, track_graph=True)
    assert result.instance is not None
    table = Table(
        "Example 1: chase of q(V1,V2)",
        ["level", "conjunct", "generating rule"],
    )
    for atom in sorted(result.atoms(), key=str):
        table.add_row(
            result.instance.level_of(atom), str(atom), result.instance.rule_of(atom)
        )
    head_table = Table("Head transformation", ["stage", "head"])
    head_table.add_row("before chase", f"q({', '.join(map(str, EXAMPLE1_QUERY.head))})")
    head_table.add_row("after chase", f"q({', '.join(map(str, result.head))})")

    v1 = Variable("V1")
    head_ok = result.head == (v1, v1)
    funct_derived = any(
        a.predicate == "funct" and result.instance.rule_of(a) == "rho12"
        for a in result.atoms()
    )
    summary = (
        "Matches the paper: rho_12 adds funct(A, O) and rho_4 replaces V2 by "
        "V1 everywhere, so the chased head is q(V1, V1)."
        if head_ok and funct_derived
        else "MISMATCH with the paper — inspect the table above."
    )
    return ExperimentReport(
        experiment_id="E3",
        title="Example 1 — EGD side effect on the head",
        tables=[table, head_table],
        summary=summary,
        data={
            "head_before": tuple(map(str, EXAMPLE1_QUERY.head)),
            "head_after": tuple(map(str, result.head)),
            "head_matches_paper": head_ok,
            "funct_derived_by_rho12": funct_derived,
            "saturated": result.saturated,
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
