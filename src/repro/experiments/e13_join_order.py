"""E13 — ablation D4: selectivity-ordered vs naive joins.

Every hot loop of the system — Datalog rule bodies, chase trigger
discovery, homomorphism search — matches conjunctions against an indexed
instance.  DESIGN.md's D4 decision orders the conjuncts most-constrained-
first; this ablation measures what that buys against naive left-to-right
order on the paper's containment workload and on adversarially ordered
chain queries (selective atom written last).
"""

from __future__ import annotations

import time

from ..containment.bounded import ContainmentChecker
from ..core.atoms import member
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..homomorphism.search import find_homomorphism
from ..workloads.corpus import PAPER_CONTAINMENT_PAIRS
from ..workloads.ontology_gen import OntologyParams, generate_ontology
from .tables import ExperimentReport, Table

__all__ = ["run"]


def _adversarial_chain(length: int) -> ConjunctiveQuery:
    """member chain with the only selective (constant-anchored) atom last."""
    variables = [Variable(f"N{i}") for i in range(length + 1)]
    body = [member(variables[i], variables[i + 1]) for i in range(length)]
    body.append(member(variables[0], Constant("class1")))
    return ConjunctiveQuery("chain", (variables[0],), tuple(body))


def _time_containment(reorder: bool, anytime: bool = True) -> float:
    start = time.perf_counter()
    checker = ContainmentChecker(reorder_join=reorder, anytime=anytime)
    for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS:
        checker.check(q1, q2)
    return time.perf_counter() - start


def _time_evaluation(reorder: bool, query: ConjunctiveQuery, index) -> float:
    start = time.perf_counter()
    find_homomorphism(query, index, reorder=reorder)
    return time.perf_counter() - start


def run(*, chain_length: int = 7, repeats: int = 3, seed: int = 31) -> ExperimentReport:
    """Ablate the D4 join-order heuristic on a chain query (kept vs. shuffled)."""
    table = Table(
        "D4 ablation: most-constrained-first vs naive join order",
        ["workload", "ordered sec", "naive sec", "speedup"],
    )
    rows = []

    ordered = min(_time_containment(True) for _ in range(repeats))
    naive = min(_time_containment(False) for _ in range(repeats))
    table.add_row("paper containment pairs", ordered, naive, f"{naive / ordered:.2f}x")
    rows.append({"workload": "containment", "ordered": ordered, "naive": naive})

    # The D4 heuristic also steers the monolithic (non-anytime) schedule's
    # single full-prefix search — time it under both orders too, so the
    # ablation covers both checker schedules.
    ordered_mono = min(
        _time_containment(True, anytime=False) for _ in range(repeats)
    )
    naive_mono = min(
        _time_containment(False, anytime=False) for _ in range(repeats)
    )
    table.add_row(
        "paper pairs, monolithic schedule",
        ordered_mono,
        naive_mono,
        f"{naive_mono / max(ordered_mono, 1e-9):.2f}x",
    )
    rows.append(
        {
            "workload": "containment-monolithic",
            "ordered": ordered_mono,
            "naive": naive_mono,
        }
    )

    ontology = generate_ontology(
        seed, OntologyParams(n_classes=12, n_objects=120, mandatory_probability=0.0)
    )
    from ..flogic.kb import KnowledgeBase

    kb = KnowledgeBase()
    for atom in ontology.atoms:
        kb.add(atom)
    index = kb.materialise()
    chain = _adversarial_chain(chain_length)
    ordered_eval = min(
        _time_evaluation(True, chain, index) for _ in range(repeats)
    )
    naive_eval = min(
        _time_evaluation(False, chain, index) for _ in range(repeats)
    )
    table.add_row(
        f"adversarial {chain_length}-chain over {len(index)}-fact KB",
        ordered_eval,
        naive_eval,
        f"{naive_eval / max(ordered_eval, 1e-9):.2f}x",
    )
    rows.append(
        {"workload": "chain", "ordered": ordered_eval, "naive": naive_eval}
    )

    speedup = naive_eval / max(ordered_eval, 1e-9)
    summary = (
        f"Selectivity ordering wins {speedup:.1f}x on the adversarial chain "
        "(the naive order enumerates the whole member relation per hop); on "
        "the small paper queries the two orders are comparable — the "
        "heuristic's cost is negligible, its upside is large."
    )
    return ExperimentReport(
        experiment_id="E13",
        title="Ablation D4 — join-order heuristic",
        tables=[table],
        summary=summary,
        data={"rows": rows, "chain_speedup": speedup},
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
