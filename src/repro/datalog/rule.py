"""Datalog rules.

A :class:`Rule` is a definite Horn clause ``head :- body`` with the usual
safety requirement (every head variable occurs in the body).  The ten
Datalog members of Sigma_FL (rho_1..rho_3, rho_6..rho_12) are rules in this
sense; rho_4 (an EGD) and rho_5 (an existential TGD) live in
:mod:`repro.dependencies`.
"""

from __future__ import annotations

from typing import Iterable

from ..core.atoms import Atom
from ..core.errors import QueryError
from ..core.terms import Variable

__all__ = ["Rule"]


class Rule:
    """An immutable definite clause ``head :- b1, ..., bn``."""

    __slots__ = ("head", "body", "label", "_hash")

    def __init__(self, head: Atom, body: Iterable[Atom], label: str = ""):
        body = tuple(body)
        if not body:
            raise QueryError(f"rule for {head.predicate} has an empty body")
        body_vars: set[Variable] = set()
        for atom in body:
            body_vars |= atom.variables()
        unsafe = head.variables() - body_vars
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise QueryError(
                f"unsafe rule for {head.predicate}: head variables {names} "
                "do not occur in the body"
            )
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "label", label or head.predicate)
        object.__setattr__(self, "_hash", hash((head, body)))

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Rule is immutable")

    def variables(self) -> set[Variable]:
        out = set(self.head.variables())
        for atom in self.body:
            out |= atom.variables()
        return out

    def body_predicates(self) -> set[str]:
        return {a.predicate for a in self.body}

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rule)
            and self._hash == other._hash
            and self.head == other.head
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return f"Rule({self!s})"

    def __str__(self) -> str:
        body_inner = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body_inner}."
