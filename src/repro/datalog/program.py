"""Datalog programs.

A :class:`Program` bundles a set of rules with lookup structure (rules by
head predicate, rules by body predicate) that the semi-naive engine needs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .rule import Rule

__all__ = ["Program"]


class Program:
    """An immutable collection of Datalog rules."""

    __slots__ = ("rules", "_by_head", "_by_body")

    def __init__(self, rules: Iterable[Rule]):
        rules = tuple(rules)
        by_head: dict[str, list[Rule]] = defaultdict(list)
        by_body: dict[str, list[Rule]] = defaultdict(list)
        for rule in rules:
            by_head[rule.head.predicate].append(rule)
            for pred in rule.body_predicates():
                if rule not in by_body[pred]:
                    by_body[pred].append(rule)
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "_by_head", dict(by_head))
        object.__setattr__(self, "_by_body", dict(by_body))

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("Program is immutable")

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def rules_defining(self, predicate: str) -> tuple[Rule, ...]:
        """Rules whose head predicate is *predicate*."""
        return tuple(self._by_head.get(predicate, ()))

    def rules_using(self, predicate: str) -> tuple[Rule, ...]:
        """Rules whose body mentions *predicate* (semi-naive triggers)."""
        return tuple(self._by_body.get(predicate, ()))

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule."""
        return set(self._by_head)

    def extend(self, more: Iterable[Rule]) -> "Program":
        return Program(self.rules + tuple(more))

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
