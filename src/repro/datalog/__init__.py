"""A from-scratch Datalog substrate: rules, programs, indexes, evaluation.

This package knows nothing about F-logic; it is a generic bottom-up
Datalog engine.  Sigma_FL's Datalog fragment is evaluated with it, and the
chase and homomorphism engines reuse its indexed conjunction matcher.
"""

from .engine import EvaluationStats, derive_once, evaluate
from .index import FactIndex
from .matching import SearchStats, match_conjunction, order_by_selectivity
from .program import Program
from .rule import Rule

__all__ = [
    "Rule",
    "Program",
    "FactIndex",
    "match_conjunction",
    "order_by_selectivity",
    "SearchStats",
    "evaluate",
    "derive_once",
    "EvaluationStats",
]
