"""Indexed fact storage.

:class:`FactIndex` stores a set of atoms grouped by predicate, with
secondary hash indexes on every (position, term) pair.  Pattern matching
against the index — the inner loop of both the Datalog engine and the
chase — therefore touches only the facts that agree with the pattern's
bound positions instead of scanning whole relations.

**Snapshot semantics.**  The service layer makes concurrent reads of a
chase instance the norm (one thread answers a request from a cached run
while another extends it), so the two read APIs state their contracts
explicitly:

* :meth:`FactIndex.candidates` *always* snapshots: the chosen bucket is
  copied into a tuple before it is returned, so a caller lazily
  consuming matches never races a concurrent ``add`` into a torn bucket
  or a ``RuntimeError: set changed size during iteration``;
* :meth:`FactIndex.facts` returns a zero-copy **live** view by default
  (the hot-path contract — no allocation per probe).  Callers that
  iterate across a possible mutation ask for ``facts(p, snapshot=True)``
  or call :meth:`FactsView.snapshot`, both of which return an immutable
  point-in-time tuple.

The index itself is *not* internally locked: writers must be serialised
by the owner (the chase engine extends under its run's session lock —
see :meth:`repro.containment.store.ChaseStore.session`), and the
snapshot APIs are what make lock-free readers safe alongside that one
writer.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Set as AbstractSet
from typing import Iterable, Iterator, Optional

from ..core.atoms import Atom
from ..core.substitution import Substitution
from ..core.terms import Term, Variable

__all__ = ["FactIndex", "FactsView"]


class FactsView(AbstractSet):
    """A zero-copy, read-only view of one predicate's bucket.

    :meth:`FactIndex.facts` sits on hot paths (the restricted-chase head
    witness scan probes it once per existential trigger), so it must not
    build a fresh ``frozenset`` per call.  Deriving from
    :class:`collections.abc.Set` keeps equality and the set operators
    working against real ``set``/``frozenset`` objects.  The view is live:
    it reflects later mutations of the index, so snapshot (``tuple(view)``)
    before iterating across mutations.
    """

    __slots__ = ("_bucket",)

    def __init__(self, bucket: AbstractSet):
        self._bucket = bucket

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._bucket)

    def __len__(self) -> int:
        return len(self._bucket)

    def __contains__(self, atom) -> bool:
        return atom in self._bucket

    def snapshot(self) -> tuple[Atom, ...]:
        """An immutable point-in-time copy of the bucket.

        Safe to iterate while the underlying index keeps growing —
        the tuple is detached the moment it is built (atoms added after
        the call are not seen, and no torn state ever is).
        """
        return tuple(self._bucket)

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        # Set-operator results materialise as plain frozensets.
        return frozenset(iterable)

    def __repr__(self) -> str:
        return f"FactsView({set(self._bucket)!r})"


_EMPTY_FACTS = FactsView(frozenset())


class FactIndex:
    """A mutable, indexed set of ground-or-frozen atoms.

    The index is agnostic about whether atom arguments are constants,
    nulls or variables: the chase stores query variables as values, and the
    index treats them like any other term.  "Pattern" atoms passed to
    :meth:`candidates` are different — *their* variables are wildcards to
    be bound.
    """

    __slots__ = ("_by_predicate", "_position_index", "_size", "_generation", "dense")

    def __init__(self, atoms: Optional[Iterable[Atom]] = None):
        self._by_predicate: dict[str, set[Atom]] = defaultdict(set)
        # (predicate, position, term) -> set of atoms with `term` at `position`
        self._position_index: dict[tuple[str, int, Term], set[Atom]] = defaultdict(set)
        self._size = 0
        # Monotone mutation counter: the dense kernel mirror compares it
        # against the generation it was built from to decide whether a
        # resync is needed before a search (see repro.kernel.index).
        self._generation = 0
        #: Cached :class:`repro.kernel.DenseIndex` mirror, owned and kept
        #: in sync by the kernel — ``None`` until a dense search first
        #: touches this index.  Plain-Python callers ignore it entirely.
        self.dense = None
        if atoms:
            for atom in atoms:
                self.add(atom)

    # -- mutation -----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Insert *atom*; return True when it was not already present."""
        bucket = self._by_predicate[atom.predicate]
        if atom in bucket:
            return False
        bucket.add(atom)
        for pos, term in enumerate(atom.args):
            self._position_index[(atom.predicate, pos, term)].add(atom)
        self._size += 1
        self._generation += 1
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def discard(self, atom: Atom) -> bool:
        """Remove *atom* if present; return True when something was removed."""
        bucket = self._by_predicate.get(atom.predicate)
        if not bucket or atom not in bucket:
            return False
        bucket.remove(atom)
        if not bucket:
            del self._by_predicate[atom.predicate]
        for pos, term in enumerate(atom.args):
            entry = self._position_index.get((atom.predicate, pos, term))
            if entry is not None:
                entry.discard(atom)
                if not entry:
                    del self._position_index[(atom.predicate, pos, term)]
        self._size -= 1
        self._generation += 1
        return True

    # -- queries ------------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        bucket = self._by_predicate.get(atom.predicate)
        return bool(bucket) and atom in bucket

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._by_predicate.values():
            yield from bucket

    def __bool__(self) -> bool:
        return self._size > 0

    def predicates(self) -> set[str]:
        return {p for p, bucket in self._by_predicate.items() if bucket}

    def facts(self, predicate: str, *, snapshot: bool = False):
        """All stored atoms with the given predicate.

        By default a zero-copy **live** :class:`FactsView` (the hot-path
        contract: no allocation, later mutations show through).  With
        ``snapshot=True`` an immutable point-in-time tuple instead —
        the form to use when iteration may overlap a concurrent
        extension of the index (see the module docstring).
        """
        bucket = self._by_predicate.get(predicate)
        if not bucket:
            return () if snapshot else _EMPTY_FACTS
        if snapshot:
            return tuple(bucket)
        return FactsView(bucket)

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    @property
    def generation(self) -> int:
        """Monotone mutation counter (bumped by every add/discard).

        The dense kernel mirror records the generation it synced at; an
        unchanged generation lets a later search skip the resync check
        entirely, so repeated searches over a quiescent index pay zero
        synchronisation cost.
        """
        return self._generation

    def candidates(
        self, pattern: Atom, sigma: Substitution = Substitution.EMPTY
    ) -> Iterable[Atom]:
        """Facts that could match *pattern* under the partial binding *sigma*.

        Uses the position index on the most selective bound position of the
        (partially instantiated) pattern; an unconstrained pattern falls
        back to the whole relation.  The result is a superset of the true
        matches only in that unbound positions are not cross-checked —
        callers complete the match with :func:`repro.core.match_atom`.

        The chosen bucket is snapshotted into a tuple, so callers that
        mutate the index while lazily consuming a match generator never
        hit "set changed size during iteration".
        """
        best: Optional[set[Atom]] = None
        for pos, term in enumerate(pattern.args):
            if isinstance(term, Variable):
                term = sigma.get(term)
                if term is None:
                    continue
            entry = self._position_index.get((pattern.predicate, pos, term))
            if entry is None:
                return ()
            if best is None or len(entry) < len(best):
                best = entry
        if best is None:
            best = self._by_predicate.get(pattern.predicate)
            if best is None:
                return ()
        return tuple(best)

    def copy(self) -> "FactIndex":
        """An independent copy (buckets are re-built; atoms are shared)."""
        return FactIndex(self)

    def __getstate__(self):
        # The dense kernel mirror is a derived, arena-local cache: it is
        # rebuilt on demand and never travels across process boundaries
        # (the parallel batch pipeline pickles chase runs to workers).
        return (list(self),)

    def __setstate__(self, state):
        (atoms,) = state
        self.__init__(atoms)

    def to_frozenset(self) -> frozenset[Atom]:
        return frozenset(self)

    def __repr__(self) -> str:
        per = ", ".join(
            f"{p}:{len(b)}" for p, b in sorted(self._by_predicate.items()) if b
        )
        return f"FactIndex({self._size} facts; {per})"
