"""Semi-naive bottom-up Datalog evaluation.

The engine computes the least fixpoint of a :class:`Program` over a set of
ground facts.  Within this reproduction it serves two roles:

* it saturates a chase instance with the *Datalog part* of Sigma_FL
  (every rule except rho_4 and rho_5) — the "level 0" phase that Section 4
  of the paper isolates before the existential phase; and
* it materialises F-logic Lite knowledge bases for query answering
  (:mod:`repro.flogic.kb`).

Evaluation is semi-naive: on each iteration only rule-body matches that
use at least one fact derived in the previous iteration are recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.atoms import Atom
from ..core.errors import ChaseBudgetExceeded
from ..obs import Observability
from .index import FactIndex
from .matching import match_conjunction
from .program import Program

__all__ = ["EvaluationStats", "evaluate", "derive_once"]


@dataclass
class EvaluationStats:
    """Counters describing one fixpoint computation."""

    iterations: int = 0
    derived_facts: int = 0
    rule_firings: int = 0
    firings_per_rule: dict[str, int] = field(default_factory=dict)

    def record_firing(self, label: str) -> None:
        self.rule_firings += 1
        self.firings_per_rule[label] = self.firings_per_rule.get(label, 0) + 1

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "derived_facts": self.derived_facts,
            "rule_firings": self.rule_firings,
            "firings_per_rule": dict(self.firings_per_rule),
        }

    def publish(self, registry) -> None:
        """Mirror the counters into a :class:`~repro.obs.MetricsRegistry`."""
        if registry is None:
            return
        registry.counter("datalog.iterations").inc(self.iterations)
        registry.counter("datalog.derived_facts").inc(self.derived_facts)
        for label, count in self.firings_per_rule.items():
            registry.counter("datalog.firings", rule=label).inc(count)


def derive_once(
    program: Program,
    index: FactIndex,
    delta: Iterable[Atom],
    stats: Optional[EvaluationStats] = None,
) -> list[Atom]:
    """One semi-naive round: new facts derivable using at least one delta fact.

    Facts already present in *index* are filtered out; the returned list
    contains each new fact once.
    """
    new_facts: list[Atom] = []
    produced: set[Atom] = set()
    for fact in delta:
        for rule in program.rules_using(fact.predicate):
            for sigma in match_conjunction(rule.body, index, required_fact=fact):
                derived = sigma.apply_atom(rule.head)
                if derived in produced or derived in index:
                    continue
                produced.add(derived)
                new_facts.append(derived)
                if stats is not None:
                    stats.record_firing(rule.label)
    return new_facts


def evaluate(
    program: Program,
    facts: Iterable[Atom],
    *,
    max_iterations: Optional[int] = None,
    stats: Optional[EvaluationStats] = None,
    obs: Optional[Observability] = None,
    governor=None,
) -> FactIndex:
    """Least-fixpoint evaluation; returns the saturated :class:`FactIndex`.

    Datalog fixpoints over a finite fact base always terminate, so
    *max_iterations* exists only as a safety valve for misuse (raises
    :class:`~repro.core.errors.ChaseBudgetExceeded` when hit).

    With an :class:`~repro.obs.Observability` sink, the fixpoint runs
    inside a ``datalog.evaluate`` span and the evaluation counters are
    published into the sink's metrics registry on completion.  A
    *governor* (:class:`~repro.governance.Governor`) is checkpointed once
    per semi-naive iteration, bounding even a terminating fixpoint by
    wall-clock and fact count.
    """
    own_stats = stats
    if obs is not None and obs.metrics is not None and own_stats is None:
        own_stats = EvaluationStats()
    tracer = obs.tracer if obs is not None else None
    index = FactIndex(facts)
    delta: list[Atom] = list(index)
    iterations = 0
    span_cm = (
        tracer.span("datalog.evaluate", rules=len(program.rules))
        if tracer is not None
        else None
    )
    span = span_cm.__enter__() if span_cm is not None else None
    try:
        while delta:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise ChaseBudgetExceeded(
                    f"datalog evaluation exceeded {max_iterations} iterations"
                )
            if governor is not None:
                governor.checkpoint("datalog.round", facts=len(index))
            new_facts = derive_once(program, index, delta, own_stats)
            for fact in new_facts:
                index.add(fact)
            delta = new_facts
            if own_stats is not None:
                own_stats.iterations = iterations
                own_stats.derived_facts += len(new_facts)
    finally:
        if span_cm is not None:
            if tracer is not None and tracer.enabled and own_stats is not None:
                span.set(
                    iterations=own_stats.iterations,
                    derived=own_stats.derived_facts,
                    facts=len(index),
                )
            span_cm.__exit__(None, None, None)
    if obs is not None and obs.metrics is not None and own_stats is not None:
        own_stats.publish(obs.metrics)
    return index
