"""Conjunction matching against a fact index.

:func:`match_conjunction` enumerates every substitution that maps a list
of pattern atoms into a :class:`~repro.datalog.index.FactIndex`.  It is the
single join algorithm shared by the Datalog engine (rule bodies), the
chase engine (TGD/EGD bodies) and the homomorphism search (query bodies),
so all three benefit from the same index-driven, most-selective-first
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from ..core.atoms import Atom
from ..core.substitution import Substitution, match_atom
from ..core.terms import Variable
from .index import FactIndex

__all__ = [
    "match_conjunction",
    "match_conjunction_delta",
    "order_by_selectivity",
    "resolve_kernel",
    "DEFAULT_KERNEL",
    "SearchStats",
]


@dataclass
class SearchStats:
    """Counters of one backtracking search over a conjunction.

    ``nodes`` — search-tree nodes expanded (successful single-atom
    extensions of the partial substitution); ``backtracks`` — positions
    exhausted without further candidates (dead ends and completed
    sub-searches); ``solutions`` — full substitutions yielded.  Counts
    are deterministic for a fixed pattern, index and join order, which is
    what the observability tests assert.  Pass one object through several
    searches to accumulate.

    The remaining fields are populated only by the dense kernel
    (:mod:`repro.kernel`): ``kernel_nodes`` counts the subset of
    ``nodes`` expanded by the dense executor, ``bitset_ops`` the
    posting-list intersections performed, ``intern_symbols`` the terms
    newly interned while syncing the dense mirror, ``kernel_searches``
    the dense searches started and ``kernel_fallbacks`` the dispatches
    that wanted the dense kernel but ran the baseline instead.  They
    appear in :meth:`as_dict` only when nonzero, so baseline-only
    consumers see the classic three-key dict unchanged.
    """

    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    kernel_nodes: int = 0
    bitset_ops: int = 0
    intern_symbols: int = 0
    kernel_searches: int = 0
    kernel_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        out = {
            "nodes": self.nodes,
            "backtracks": self.backtracks,
            "solutions": self.solutions,
        }
        for field in (
            "kernel_nodes",
            "bitset_ops",
            "intern_symbols",
            "kernel_searches",
            "kernel_fallbacks",
        ):
            value = getattr(self, field)
            if value:
                out[field] = value
        return out

    def __str__(self) -> str:
        text = (
            f"{self.nodes} nodes expanded, {self.backtracks} backtracks, "
            f"{self.solutions} solutions"
        )
        if self.kernel_searches:
            text += (
                f" ({self.kernel_searches} dense searches, "
                f"{self.bitset_ops} bitset ops)"
            )
        return text


#: Valid values of the ``kernel=`` switch (see :mod:`repro.kernel`).
_KERNEL_CHOICES = ("auto", "dense", "baseline")

#: Kernel used when a caller passes ``kernel=None``: the baseline
#: backtracking search.  Callers that want the dense kernel opt in
#: explicitly (the containment checker defaults to ``"auto"``) — this
#: keeps the Datalog/chase engines' deterministic traces and the pinned
#: node-count regression values byte-identical to the seed.
DEFAULT_KERNEL = "baseline"


def resolve_kernel(kernel: Optional[str]) -> str:
    """Normalise and validate a ``kernel=`` argument."""
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel not in _KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {_KERNEL_CHOICES}, got {kernel!r}"
        )
    return kernel


def order_by_selectivity(
    atoms: Sequence[Atom], index: FactIndex, initially_bound: set[Variable] = frozenset()
) -> list[Atom]:
    """Greedy join order: repeatedly pick the most constrained remaining atom.

    The score prefers atoms with (a) more bound positions under the
    variables already fixed by earlier picks and (b) smaller relations.
    This is the classic "most constrained variable first" heuristic and is
    what design decision D4 of DESIGN.md ablates.  The implementation
    lives in :func:`repro.kernel.planner.order_atoms` so the dense and
    baseline searches share one join order (imported lazily — the kernel
    package imports this module for its stats type).
    """
    from ..kernel.planner import order_atoms

    return order_atoms(atoms, index.count, initially_bound)


def match_conjunction(
    atoms: Sequence[Atom],
    index: FactIndex,
    base: Substitution = Substitution.EMPTY,
    *,
    reorder: bool = True,
    required_fact: Optional[Atom] = None,
    term_filter: Optional[Callable] = None,
    stats: Optional[SearchStats] = None,
    governor=None,
    governor_site: str = "hom.search",
    kernel: Optional[str] = None,
) -> Iterator[Substitution]:
    """Yield every substitution mapping all of *atoms* into *index*.

    Parameters
    ----------
    atoms:
        The pattern conjunction (e.g. a rule body or a query body).
    index:
        The fact store to match into.
    base:
        Bindings already fixed (extended, never overwritten).
    reorder:
        Apply the selectivity heuristic; disable to get naive left-to-right
        order (used by the D4 ablation benchmark).
    required_fact:
        Semi-naive support: when given, at least one pattern atom must be
        matched to exactly this fact.  Implemented by trying each atom as
        the "delta" position in turn, which avoids re-deriving everything
        from scratch on every iteration.
    term_filter:
        Optional predicate ``f(variable, term) -> bool`` vetoing candidate
        bindings; the homomorphism engine uses it to keep constants of the
        contained query from mapping to labeled nulls when a caller asks
        for null-free homomorphisms.
    stats:
        Optional :class:`SearchStats` accumulating node/backtrack counts.
    governor:
        Optional :class:`~repro.governance.Governor` polled (amortised)
        once per expanded search node, so a governed caller can stop a
        pathological join mid-search.
    governor_site:
        Poll-site label reported to the governor — ``"hom.search"`` by
        default; the chase engine passes ``"chase.match"`` so fault
        injection and metrics attribute joins run during trigger
        evaluation to the chase, not the homomorphism search.
    kernel:
        ``auto`` / ``dense`` / ``baseline`` (default baseline when
        ``None``): whether to run the search on the dense bitset kernel
        (:mod:`repro.kernel`).  ``auto`` and ``dense`` fall back to the
        baseline transparently when the dense executor does not apply
        (term filters, unsupported index types); the fallback is counted
        in ``stats.kernel_fallbacks``.  The ``required_fact`` anchor
        match always runs object-level; only the residual conjunction
        search dispatches to the kernel.
    """
    kernel = resolve_kernel(kernel)
    if required_fact is not None:
        seen: set[Substitution] = set()
        for delta_pos, delta_atom in enumerate(atoms):
            sigma0 = match_atom(delta_atom, required_fact, base)
            if sigma0 is None:
                continue
            if term_filter is not None and not _filter_ok(delta_atom, sigma0, term_filter):
                continue
            if stats is not None:
                stats.nodes += 1
            if governor is not None:
                governor.tick(governor_site)
            rest = list(atoms[:delta_pos]) + list(atoms[delta_pos + 1:])
            if not rest:
                if sigma0 not in seen:
                    seen.add(sigma0)
                    if stats is not None:
                        stats.solutions += 1
                    yield sigma0
                continue
            for sigma in match_conjunction(
                rest, index, sigma0, reorder=reorder, term_filter=term_filter,
                stats=stats, governor=governor, governor_site=governor_site,
                kernel=kernel,
            ):
                if sigma not in seen:
                    seen.add(sigma)
                    yield sigma
        return

    if kernel != "baseline":
        from ..kernel.search import dense_supported, kernel_match_conjunction

        if dense_supported(index, term_filter):
            yield from kernel_match_conjunction(
                atoms, index, base, reorder=reorder, stats=stats,
                governor=governor, governor_site=governor_site,
            )
            return
        if stats is not None:
            stats.kernel_fallbacks += 1

    if reorder:
        bound = set(base.domain())
        ordered = order_by_selectivity(atoms, index, bound)
    else:
        ordered = list(atoms)

    yield from _search(
        ordered, 0, index, base, term_filter, stats, governor, governor_site
    )


def match_conjunction_delta(
    atoms: Sequence[Atom],
    index: FactIndex,
    delta_facts: Sequence[Atom],
    base: Substitution = Substitution.EMPTY,
    *,
    reorder: bool = True,
    term_filter: Optional[Callable] = None,
    stats: Optional[SearchStats] = None,
    governor=None,
    governor_site: str = "hom.search",
    kernel: Optional[str] = None,
) -> Iterator[Substitution]:
    """Substitutions mapping *atoms* into *index* that touch *delta_facts*.

    The plural form of ``required_fact``: every yielded substitution sends
    at least one pattern atom onto a member of *delta_facts*.  This is the
    semi-naive restriction generalised from one fact to a fact *set* — the
    anytime containment checker feeds it the conjuncts added by the latest
    chase extension, so embeddings explored at level ``k`` are never
    re-explored at level ``k+1``.

    Implementation: delta facts are bucketed by predicate; each pattern
    atom in turn plays the "delta position", is matched against the
    bucket, and the remaining atoms are solved by the ordinary (reordered)
    backtracking search over the full index.  Solutions reachable through
    several delta anchors are deduplicated.

    The ``kernel`` switch is forwarded to the residual searches, so
    anytime containment probes and semi-naive rounds run on the dense
    kernel when the checker asks for it; anchor matching itself stays
    object-level (one :func:`match_atom` per delta fact is already
    cheap, and it is what defines the restriction semantics).
    """
    kernel = resolve_kernel(kernel)
    if not delta_facts:
        return
    by_predicate: dict[str, list[Atom]] = {}
    for fact in delta_facts:
        by_predicate.setdefault(fact.predicate, []).append(fact)
    seen: set[Substitution] = set()
    for delta_pos, delta_atom in enumerate(atoms):
        bucket = by_predicate.get(delta_atom.predicate)
        if bucket is None:
            continue
        rest = list(atoms[:delta_pos]) + list(atoms[delta_pos + 1:])
        for fact in bucket:
            sigma0 = match_atom(delta_atom, fact, base)
            if sigma0 is None:
                continue
            if term_filter is not None and not _filter_ok(delta_atom, sigma0, term_filter):
                continue
            if stats is not None:
                stats.nodes += 1
            if governor is not None:
                governor.tick(governor_site)
            if not rest:
                if sigma0 not in seen:
                    seen.add(sigma0)
                    if stats is not None:
                        stats.solutions += 1
                    yield sigma0
                continue
            for sigma in match_conjunction(
                rest, index, sigma0, reorder=reorder, term_filter=term_filter,
                stats=stats, governor=governor, governor_site=governor_site,
                kernel=kernel,
            ):
                if sigma not in seen:
                    seen.add(sigma)
                    yield sigma


def _filter_ok(pattern: Atom, sigma: Substitution, term_filter: Callable) -> bool:
    for term in pattern.variables():
        bound = sigma.get(term)
        if bound is not None and not term_filter(term, bound):
            return False
    return True


def _search(
    ordered: Sequence[Atom],
    pos: int,
    index: FactIndex,
    sigma: Substitution,
    term_filter: Optional[Callable],
    stats: Optional[SearchStats] = None,
    governor=None,
    governor_site: str = "hom.search",
) -> Iterator[Substitution]:
    if pos == len(ordered):
        if stats is not None:
            stats.solutions += 1
        yield sigma
        return
    pattern = ordered[pos]
    for fact in index.candidates(pattern, sigma):
        extended = match_atom(pattern, fact, sigma)
        if extended is None:
            continue
        if term_filter is not None and not _filter_ok(pattern, extended, term_filter):
            continue
        if stats is not None:
            stats.nodes += 1
        if governor is not None:
            governor.tick(governor_site)
        yield from _search(
            ordered, pos + 1, index, extended, term_filter, stats, governor,
            governor_site,
        )
    if stats is not None:
        stats.backtracks += 1
