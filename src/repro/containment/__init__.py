"""Query containment: the paper's bounded-chase procedure and the baseline.

.. deprecated::
    Importing the public names from ``repro.containment`` is deprecated
    since the :mod:`repro.api` redesign.  Get the stable surface from
    :class:`repro.api.Engine` / :mod:`repro` (``from repro import
    is_contained, ContainmentResult, ...``); internal code imports the
    concrete submodules (:mod:`~repro.containment.bounded`,
    :mod:`~repro.containment.result`, ...) directly.  The old names keep
    working through the PEP 562 shim below, with a
    :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

__all__ = [
    "is_contained",
    "ContainmentChecker",
    "theorem12_bound",
    "contained_classic",
    "ContainmentResult",
    "ContainmentReason",
    "Decision",
    "minimize_query",
    "MinimizationResult",
    "ChaseStore",
    "StoreStats",
]

#: Shimmed name -> submodule that really defines it.
_HOMES = {
    "is_contained": "bounded",
    "ContainmentChecker": "bounded",
    "theorem12_bound": "bounded",
    "contained_classic": "classic",
    "minimize_query": "minimize",
    "MinimizationResult": "minimize",
    "ContainmentResult": "result",
    "ContainmentReason": "result",
    "Decision": "result",
    "ChaseStore": "store",
    "StoreStats": "store",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro.containment' is deprecated; "
        f"use 'repro' (from repro import {name}) or the repro.api.Engine "
        "facade instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from importlib import import_module

    value = getattr(import_module(f".{home}", __name__), name)
    # Cache it so the warning fires once per name per process.
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
