"""Query containment: the paper's bounded-chase procedure and the baseline."""

from .bounded import ContainmentChecker, is_contained, theorem12_bound
from .classic import contained_classic
from .minimize import MinimizationResult, minimize_query
from .result import ContainmentReason, ContainmentResult, Decision
from .store import ChaseStore, StoreStats

__all__ = [
    "is_contained",
    "ContainmentChecker",
    "theorem12_bound",
    "contained_classic",
    "ContainmentResult",
    "ContainmentReason",
    "Decision",
    "minimize_query",
    "MinimizationResult",
    "ChaseStore",
    "StoreStats",
]
