"""The shared chase store: one chase per query, extended on demand.

Every containment decision chases ``q1`` to some level bound.  The naive
discipline — one chase per (*query object*, bound) — re-runs the chase
whenever a larger bound is requested and misses alpha-equivalent queries
entirely.  :class:`ChaseStore` fixes both:

* runs are keyed by :meth:`ConjunctiveQuery.canonical_key`, so
  rename-apart variants of the same query share one chase;
* the stored value is a resumable :class:`~repro.chase.engine.ChaseRun`,
  so a request at a larger bound *extends* the existing prefix instead of
  re-chasing (the E8 bound-stability sweep at x2/x4 bounds pays only for
  the new levels);
* the store is LRU-bounded and counts hits, misses, extensions and
  evictions — the observability the experiment tables surface.  With an
  :class:`~repro.obs.Observability` sink attached, the same counters are
  mirrored into its :class:`~repro.obs.MetricsRegistry` (as
  ``store.requests{outcome=...}``, ``store.evictions`` and the
  ``store.live_entries`` gauge) and each lookup opens a ``store.lookup``
  span.

The store is the unit of sharing: hand one instance to several
:class:`~repro.containment.bounded.ContainmentChecker` objects (or to
:func:`~repro.containment.minimize.minimize_query`, UCQ containment, the
batch pipeline ...) and they all draw from the same chase pool.

**The persistent tier.**  With ``persist`` set (a snapshot directory, a
``.db`` path, or a ready :class:`~repro.store.snapshot.SnapshotStore`),
the store layers the in-memory LRU over an on-disk snapshot database
(:mod:`repro.store`): a memory miss probes the disk before chasing, and
runs are written back per ``snapshot_policy`` (``"always"`` at session
close, ``"evict"`` on LRU eviction, ``"manual"`` only via :meth:`flush`).
The lookup path is therefore *memory LRU -> disk snapshot -> recompute*.
Snapshots are level-segmented, so a request at bound ``b`` hydrates only
the prefix up to ``b`` (deeper segments stay on disk); hydration that
covers the request is counted as a ``snapshot_hits`` outcome, hydration of
a shallower prefix resumes ``extend_to`` from the persisted levels.  A
``read_only`` store serves snapshots but never writes — this is how pool
workers attach to the database the parent flushed.  Disk errors degrade
gracefully: an unreadable snapshot is treated as a miss, a failed write is
skipped — persistence never turns a computable answer into an error.

**Concurrency.**  The store is safe to share between threads — the
service layer (:mod:`repro.service`) makes concurrent access the norm.
Bookkeeping (the LRU dict, the counters) is guarded by one store mutex;
chase *work* is serialised per canonical key through :meth:`session`,
which hands out the run under a per-key lock and pins it against
eviction for the duration.  Two threads checking queries with the same
canonical key therefore coalesce onto one :class:`ChaseRun` extension —
the second thread finds the prefix the first one just materialised —
while threads on different keys proceed in parallel.  Eviction never
removes a run that is pinned by an open session (the in-use guard); the
store may transiently exceed ``capacity`` when every entry is in use.
"""

from __future__ import annotations

import sqlite3
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from ..chase.engine import ChaseConfig, ChaseEngine, ChaseRun
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..obs import OBS_OFF, MetricsRegistry, Observability
from ..store.codec import dependency_fingerprint, key_digest
from ..store.config import SNAPSHOT_POLICIES, StoreConfig
from ..store.snapshot import SnapshotError, SnapshotStore

__all__ = [
    "ChaseStore",
    "StoreStats",
    "OUTCOME_FULL",
    "OUTCOME_HIT",
    "OUTCOME_EXTEND",
    "OUTCOME_SNAPSHOT",
]

#: A fresh chase was run (first time this canonical query is seen).
OUTCOME_FULL = "full-chase"
#: The stored prefix already covered the requested bound.
OUTCOME_HIT = "cache-hit"
#: The stored prefix was incrementally extended to the requested bound.
OUTCOME_EXTEND = "cache-extend"
#: The request was served by hydrating a persisted snapshot — no chase work.
OUTCOME_SNAPSHOT = "snapshot-hit"


@dataclass
class StoreStats:
    """Hit/miss/extend/evict counters of one :class:`ChaseStore`.

    The plain integer fields remain the source of truth (and stay
    directly assignable, as older callers expect); when a *registry* is
    bound via :meth:`bind`, the ``record_*`` mutators additionally mirror
    every event into process-wide metrics.
    """

    hits: int = 0
    misses: int = 0
    extensions: int = 0
    evictions: int = 0
    #: Runs currently held by the store (entries added minus evicted/cleared).
    live_entries: int = 0
    #: Memory misses served entirely by hydrating a persisted snapshot.
    snapshot_hits: int = 0
    #: Runs written to the persistent snapshot tier.
    snapshot_stores: int = 0
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    @property
    def full_chases(self) -> int:
        """Chases run from scratch — one per distinct canonical query."""
        return self.misses

    @property
    def reuses(self) -> int:
        """Requests served without a fresh chase (hits, extensions, snapshots)."""
        return self.hits + self.extensions + self.snapshot_hits

    @property
    def requests(self) -> int:
        """Total lookups served, whatever the outcome."""
        return self.hits + self.misses + self.extensions + self.snapshot_hits

    # -- mirrored mutators ---------------------------------------------------

    def bind(self, registry: Optional[MetricsRegistry]) -> "StoreStats":
        """Attach a metrics registry; subsequent events are mirrored into it."""
        self.registry = registry
        if registry is not None:
            registry.gauge("store.live_entries").set(self.live_entries)
        return self

    def record_hit(self) -> None:
        """Count a request served entirely from a stored prefix."""
        self.hits += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="hit").inc()

    def record_miss(self) -> None:
        """Count a request that forced a chase from scratch."""
        self.misses += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="miss").inc()

    def record_extension(self) -> None:
        """Count a request served by extending a stored prefix."""
        self.extensions += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="extend").inc()

    def record_snapshot_hit(self) -> None:
        """Count a request served entirely from a persisted snapshot."""
        self.snapshot_hits += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="snapshot").inc()

    def record_snapshot_store(self) -> None:
        """Count one run written to the persistent snapshot tier."""
        self.snapshot_stores += 1
        if self.registry is not None:
            self.registry.counter("store.snapshot_stores").inc()

    def record_eviction(self, n: int = 1) -> None:
        """Count ``n`` entries dropped by the LRU eviction policy."""
        self.evictions += n
        if self.registry is not None:
            self.registry.counter("store.evictions").inc(n)

    def entry_added(self) -> None:
        """Track a run entering the store (mirrors the live gauge)."""
        self.live_entries += 1
        if self.registry is not None:
            self.registry.gauge("store.live_entries").set(self.live_entries)

    def entry_removed(self, n: int = 1) -> None:
        """Track ``n`` runs leaving the store (evicted or cleared)."""
        self.live_entries -= n
        if self.registry is not None:
            self.registry.gauge("store.live_entries").set(self.live_entries)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "extensions": self.extensions,
            "evictions": self.evictions,
            "live_entries": self.live_entries,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_stores": self.snapshot_stores,
        }

    def __str__(self) -> str:
        return (
            f"{self.requests} chase requests: {self.misses} full, "
            f"{self.extensions} extended, {self.hits} hits, "
            f"{self.snapshot_hits} snapshot hits "
            f"({self.evictions} evictions, {self.snapshot_stores} persisted)"
        )


class ChaseStore:
    """Canonical-keyed, LRU-bounded pool of resumable chase runs.

    Parameters
    ----------
    dependencies:
        The constraint set every stored chase uses; defaults to Sigma_FL.
    capacity:
        Maximum number of runs kept; the least recently used run is
        evicted beyond it.  ``None`` disables eviction.
    reorder_join / max_steps:
        Forwarded to the chase engine.
    obs:
        Observability sink.  The owned chase engine inherits it (so
        stored chases emit ``chase.*`` spans and metrics), each lookup
        opens a ``store.lookup`` span, and :attr:`stats` mirrors into its
        metrics registry.
    persist:
        Enable the persistent tier: a snapshot directory, a ``.db`` file
        path, or an already-open :class:`~repro.store.snapshot.SnapshotStore`.
        ``None`` keeps the store memory-only.
    snapshot_policy:
        When runs are written back to disk — one of
        :data:`~repro.store.config.SNAPSHOT_POLICIES` (``"always"`` /
        ``"evict"`` / ``"manual"``).
    read_only:
        Attach the snapshot database read-only: hydrate from it, never
        write.  The pool-worker attach path uses this.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        capacity: Optional[int] = 128,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        obs: Optional[Observability] = None,
        persist: Optional[Union[str, Path, SnapshotStore]] = None,
        snapshot_policy: str = "always",
        read_only: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if snapshot_policy not in SNAPSHOT_POLICIES:
            raise ValueError(
                f"snapshot_policy must be one of {SNAPSHOT_POLICIES}, "
                f"got {snapshot_policy!r}"
            )
        self.dependencies = tuple(dependencies)
        self.capacity = capacity
        self.obs = obs if obs is not None else OBS_OFF
        self.engine = ChaseEngine(
            self.dependencies,
            ChaseConfig(max_steps=max_steps, reorder_join=reorder_join),
            obs=self.obs,
        )
        self._runs: "OrderedDict[tuple, ChaseRun]" = OrderedDict()
        self.stats = StoreStats().bind(self.obs.metrics)
        # Store mutex: guards _runs / _pins / _key_locks / stats.  Chase
        # work never happens under it — only dict bookkeeping does.
        self._mutex = threading.RLock()
        # Per-canonical-key extension locks and in-use pin counts; see
        # session().  A key's lock is dropped when its run is evicted
        # (pinned runs are never evicted, so no waiter loses its lock).
        self._key_locks: dict[tuple, threading.RLock] = {}
        self._pins: dict[tuple, int] = {}
        # The persistent tier (repro.store): a level-segmented snapshot
        # database probed on memory misses and written per snapshot_policy.
        if persist is None:
            self._snapshots: Optional[SnapshotStore] = None
        elif isinstance(persist, SnapshotStore):
            self._snapshots = persist
        else:
            self._snapshots = SnapshotStore(persist, read_only=read_only)
        self._policy = snapshot_policy
        self._read_only = read_only or (
            self._snapshots is not None and self._snapshots.read_only
        )
        self._fingerprint = dependency_fingerprint(self.dependencies)
        # Last-persisted state marker per snapshot key, so unchanged runs
        # are never rewritten (session-close persistence stays O(1) when
        # the session only read).
        self._persisted: dict[str, tuple] = {}

    @classmethod
    def from_config(
        cls,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        config: Optional[StoreConfig] = None,
        *,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        obs: Optional[Observability] = None,
    ) -> "ChaseStore":
        """A store wired from a :class:`~repro.store.config.StoreConfig`.

        This is the canonical constructor of the redesigned storage API:
        the service/serve layers resolve one config object and build their
        stores here, instead of re-spelling capacity/path/policy kwargs.
        """
        config = config if config is not None else StoreConfig()
        return cls(
            dependencies,
            capacity=config.capacity,
            reorder_join=reorder_join,
            max_steps=max_steps,
            obs=obs,
            persist=config.path,
            snapshot_policy=config.snapshot_policy,
            read_only=config.read_only,
        )

    # -- the one lookup path -------------------------------------------------

    def run_for(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> tuple[ChaseRun, str]:
        """The chase run for *query*, covering *level_bound* levels.

        Returns the run together with how the request was served: a
        :data:`OUTCOME_FULL` fresh chase, a pure :data:`OUTCOME_HIT`, or
        an incremental :data:`OUTCOME_EXTEND` of the stored prefix.
        Lookup is a single O(1) dict probe on the canonical key — there
        is no linear scan over cached entries.
        """
        with self.session(query, level_bound) as (run, outcome):
            if outcome is not OUTCOME_HIT:
                run.extend_to(level_bound)
            return run, outcome

    @contextmanager
    def session(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> Iterator[tuple[ChaseRun, str]]:
        """Exclusive, eviction-pinned access to the run for *query*.

        The context manager acquires the canonical key's extension lock,
        pins the entry against LRU eviction, and yields the
        :meth:`open` pair ``(run, outcome)``.  While the session is open
        the holder may freely drive :meth:`ChaseRun.extend_to` — no other
        thread can extend (or evict) the same run, and a thread that was
        blocked on the same key observes every level the holder
        materialised as a cache hit.  This is the request-coalescing
        primitive of the service layer: same-key work is deduplicated
        onto one chase extension instead of racing.

        Re-entrant within a thread (the per-key lock is an RLock), so a
        session holder may call back into store APIs for the same query.
        """
        key = query.canonical_key()
        with self._mutex:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.RLock()
            self._pins[key] = self._pins.get(key, 0) + 1
        try:
            with lock:
                pair = self.open(query, level_bound)
                try:
                    yield pair
                finally:
                    # Session close is the "always" policy's write point:
                    # the key lock is still held, so the run is quiescent,
                    # and the no-op marker makes read-only sessions free.
                    self._maybe_persist(key, pair[0], trigger="session")
        finally:
            with self._mutex:
                remaining = self._pins.get(key, 0) - 1
                if remaining <= 0:
                    self._pins.pop(key, None)
                else:
                    self._pins[key] = remaining

    def open(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> tuple[ChaseRun, str]:
        """The run for *query*, classified against *level_bound* — unchased.

        Identical bookkeeping to :meth:`run_for` (counters, LRU order,
        eviction, the ``store.lookup`` span) but the returned run is *not*
        extended: the caller drives :meth:`ChaseRun.extend_to` itself.
        This is the entry point of the anytime checker, which consumes the
        chase level by level and may stop far short of *level_bound* when
        a witness appears early — the outcome still classifies the request
        against the *requested* bound (miss / covered / would-extend), so
        hit-rate accounting stays comparable across modes.

        Thread-safe for the bookkeeping, but the returned run itself is
        only safe to extend under the key's :meth:`session` — concurrent
        callers should prefer that entry point.
        """
        tracer = self.obs.tracer
        with tracer.span("store.lookup", query=query.name) as span:
            key = query.canonical_key()
            with self._mutex:
                run = self._runs.get(key)
                if (
                    run is not None
                    and run.hydrated_partial
                    and not run.covers(level_bound)
                ):
                    # A level-truncated hydration must never be extended
                    # (its deeper segments live only on disk): drop it and
                    # re-probe the snapshot for a deeper prefix.
                    del self._runs[key]
                    self.stats.entry_removed()
                    run = None
                if run is not None:
                    if not run.covers(level_bound):
                        self.stats.record_extension()
                        outcome = OUTCOME_EXTEND
                    else:
                        self.stats.record_hit()
                        outcome = OUTCOME_HIT
                    self._runs.move_to_end(key)
                    self._evict_over_capacity(protect=key)
                    entries = len(self._runs)
            if run is None:
                # Memory miss: probe the persistent tier.  The disk read
                # and instance rebuild happen outside the store mutex —
                # callers serialize same-key work via session().
                run = self._hydrate(query, level_bound)
                covered = run is not None and run.covers(level_bound)
                with self._mutex:
                    if run is None:
                        self.stats.record_miss()
                        run = self.engine.start(query)
                        outcome = OUTCOME_FULL
                    elif covered:
                        self.stats.record_snapshot_hit()
                        outcome = OUTCOME_SNAPSHOT
                    else:
                        # The snapshot held a shallower prefix: resume
                        # extend_to from the persisted levels — still far
                        # cheaper than re-chasing from level 0.
                        self.stats.record_extension()
                        outcome = OUTCOME_EXTEND
                    if key not in self._runs:
                        self.stats.entry_added()
                    self._runs[key] = run
                    self._runs.move_to_end(key)
                    self._evict_over_capacity(protect=key)
                    entries = len(self._runs)
            if tracer.enabled:
                span.set(outcome=outcome, bound=level_bound, entries=entries)
        return run, outcome

    def _evict_over_capacity(self, protect: tuple) -> None:
        """Drop LRU entries beyond ``capacity`` — callers hold the mutex.

        The in-use guard: an entry pinned by an open :meth:`session` (or
        the *protect* key the current lookup just touched) is never
        evicted, so a run cannot vanish while a thread is extending or
        reading it.  When every entry is pinned the store stays over
        capacity until sessions close — correctness beats the LRU bound.

        With a persistent tier attached, a victim's chase state is written
        to disk before it leaves memory (policies ``"always"``/``"evict"``)
        — eviction demotes a run to the snapshot tier instead of erasing it.
        """
        if self.capacity is None:
            return
        over = len(self._runs) - self.capacity
        if over <= 0:
            return
        victims = [
            key
            for key in self._runs
            if key != protect and not self._pins.get(key)
        ][:over]
        for key in victims:
            self._maybe_persist(key, self._runs[key], trigger="evict")
            del self._runs[key]
            self._key_locks.pop(key, None)
            self.stats.record_eviction()
            self.stats.entry_removed()

    # -- the persistent tier ---------------------------------------------------

    @property
    def snapshots(self) -> Optional[SnapshotStore]:
        """The attached snapshot database, or ``None`` when memory-only."""
        return self._snapshots

    @property
    def snapshot_path(self) -> Optional[str]:
        """Path of the snapshot database file (``None`` when memory-only).

        This string is what the zero-pickle parallel path ships to pool
        workers: each worker re-attaches read-only by path instead of
        receiving pickled chase runs.
        """
        if self._snapshots is None:
            return None
        return str(self._snapshots.path)

    @property
    def snapshot_policy(self) -> str:
        """The configured write-back policy (``always``/``evict``/``manual``)."""
        return self._policy

    @property
    def read_only(self) -> bool:
        """Whether the persistent tier is attached read-only."""
        return self._read_only

    def _snapshot_key(self, key: tuple) -> str:
        """The disk row key for a canonical key under this store's Sigma."""
        return key_digest(key, self._fingerprint)

    def _hydrate(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> Optional[ChaseRun]:
        """Rebuild a run from the persistent tier, or ``None``.

        Loads only the fact segments a covering request needs (levels up to
        *level_bound*); a snapshot that covers the request yields a
        ready-to-read run, a shallower one yields a resumable run whose
        next ``extend_to`` continues from the persisted prefix.  Returns
        ``None`` — a plain miss — when there is no snapshot database, no
        row for the key, the engine tracks chase graphs (snapshots carry no
        provenance), or the row cannot be read (corrupt/locked files
        degrade to recompute, never to an error).
        """
        snapshots = self._snapshots
        if snapshots is None or self.engine.config.track_graph:
            return None
        digest = self._snapshot_key(query.canonical_key())
        try:
            summary = snapshots.peek(digest)
            if summary is None:
                return None
            covers = (
                summary["failed"]
                or summary["saturated"]
                or (level_bound is not None and level_bound <= summary["bound"])
            )
            if covers and not summary["failed"] and level_bound is not None:
                # Level-segmented load: materialize only the prefix this
                # request can see; deeper segments stay on disk.
                snap = snapshots.load(digest, max_level=level_bound)
                if snap is not None and snap.partial:
                    snap = replace(snap, bound=level_bound)
            else:
                snap = snapshots.load(digest)
        except (SnapshotError, sqlite3.Error, OSError, ValueError):
            return None
        if snap is None:
            return None
        run = ChaseRun.from_snapshot(self.engine, query, snap)
        if not run.hydrated_partial:
            # Seed the no-op marker: a run just read from disk must not be
            # written straight back at session close.
            self._persisted[digest] = (
                run.bound,
                run.failed,
                run.saturated,
                len(run.instance),
            )
        return run

    def _maybe_persist(self, key: tuple, run: ChaseRun, *, trigger: str) -> None:
        """Write *run* to the snapshot tier when the policy covers *trigger*.

        Triggers: ``"session"`` (session close — policy ``always``),
        ``"evict"`` (LRU demotion — policies ``always``/``evict``) and
        ``"flush"`` (explicit — any policy).  Partial hydrations are never
        written back (their deeper segments exist only on disk), unchanged
        runs are skipped via the per-key marker, and write errors are
        swallowed — a full disk must not fail a containment request.
        """
        snapshots = self._snapshots
        if snapshots is None or self._read_only:
            return
        if trigger == "session" and self._policy != "always":
            return
        if trigger == "evict" and self._policy == "manual":
            return
        if run.hydrated_partial or not run._started:
            return
        digest = self._snapshot_key(key)
        marker = (run.bound, run.failed, run.saturated, len(run.instance))
        if self._persisted.get(digest) == marker:
            return
        try:
            snapshots.save(digest, run.snapshot_state())
        except (SnapshotError, sqlite3.Error, OSError):
            return
        self._persisted[digest] = marker
        self.stats.record_snapshot_store()

    def flush(self) -> int:
        """Persist every in-memory run to the snapshot tier, now.

        Takes each key's session lock so a run mid-extension is never
        serialized half-written; returns how many runs were actually
        stored (unchanged runs are skipped).  This is what the parallel
        ``check_all`` path calls before dispatching attach descriptors,
        and what the ``"manual"`` policy relies on.  A no-op (returns 0)
        without a persistent tier or on a read-only attach.
        """
        if self._snapshots is None or self._read_only:
            return 0
        with self._mutex:
            keys = list(self._runs.keys())
        written = 0
        for key in keys:
            with self._mutex:
                if key not in self._runs:
                    continue
                lock = self._key_locks.get(key)
                if lock is None:
                    lock = self._key_locks[key] = threading.RLock()
                self._pins[key] = self._pins.get(key, 0) + 1
            try:
                with lock:
                    with self._mutex:
                        run = self._runs.get(key)
                    if run is None:
                        continue
                    before = self.stats.snapshot_stores
                    self._maybe_persist(key, run, trigger="flush")
                    written += self.stats.snapshot_stores - before
            finally:
                with self._mutex:
                    remaining = self._pins.get(key, 0) - 1
                    if remaining <= 0:
                        self._pins.pop(key, None)
                    else:
                        self._pins[key] = remaining
        return written

    def close(self) -> None:
        """Flush (unless the policy is ``"manual"``) and detach the snapshot DB.

        Memory-only stores are unaffected; idempotent.
        """
        if self._snapshots is None:
            return
        if self._policy != "manual":
            self.flush()
        self._snapshots.close()

    # -- inspection ----------------------------------------------------------

    def peek(self, query: ConjunctiveQuery) -> Optional[ChaseRun]:
        """The stored run for *query*, without counters or LRU effects."""
        with self._mutex:
            return self._runs.get(query.canonical_key())

    def covers(self, query: ConjunctiveQuery, level_bound: Optional[int]) -> bool:
        """Whether a stored run already answers *query* at *level_bound*.

        A pure read (no counters, no LRU effects): true exactly when a
        lookup at this bound would be a :data:`OUTCOME_HIT`.  The service
        layer uses it to route batch groups — cached groups are decided
        in-process, only cold groups pay for a pool dispatch.
        """
        with self._mutex:
            run = self._runs.get(query.canonical_key())
            return run is not None and run.covers(level_bound)

    def __contains__(self, query: ConjunctiveQuery) -> bool:
        with self._mutex:
            return query.canonical_key() in self._runs

    def __len__(self) -> int:
        with self._mutex:
            return len(self._runs)

    def clear(self) -> None:
        """Drop every stored run (counters are kept, the live gauge drops).

        Runs pinned by an open :meth:`session` survive — clearing under a
        concurrent extension must not pull the run out from under it.
        With a persistent tier, dropped runs are demoted to disk first
        (under the same policies as eviction), so ``clear()`` sheds memory
        without losing chase work.
        """
        with self._mutex:
            for key, run in self._runs.items():
                if not self._pins.get(key):
                    self._maybe_persist(key, run, trigger="evict")
            survivors = OrderedDict(
                (key, run)
                for key, run in self._runs.items()
                if self._pins.get(key)
            )
            dropped = len(self._runs) - len(survivors)
            self._runs = survivors
            self._key_locks = {
                key: lock
                for key, lock in self._key_locks.items()
                if key in survivors
            }
            if dropped:
                self.stats.entry_removed(dropped)

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else str(self.capacity)
        return f"ChaseStore({len(self._runs)}/{cap} runs; {self.stats})"
