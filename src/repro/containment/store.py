"""The shared chase store: one chase per query, extended on demand.

Every containment decision chases ``q1`` to some level bound.  The naive
discipline — one chase per (*query object*, bound) — re-runs the chase
whenever a larger bound is requested and misses alpha-equivalent queries
entirely.  :class:`ChaseStore` fixes both:

* runs are keyed by :meth:`ConjunctiveQuery.canonical_key`, so
  rename-apart variants of the same query share one chase;
* the stored value is a resumable :class:`~repro.chase.engine.ChaseRun`,
  so a request at a larger bound *extends* the existing prefix instead of
  re-chasing (the E8 bound-stability sweep at x2/x4 bounds pays only for
  the new levels);
* the store is LRU-bounded and counts hits, misses, extensions and
  evictions — the observability the experiment tables surface.  With an
  :class:`~repro.obs.Observability` sink attached, the same counters are
  mirrored into its :class:`~repro.obs.MetricsRegistry` (as
  ``store.requests{outcome=...}``, ``store.evictions`` and the
  ``store.live_entries`` gauge) and each lookup opens a ``store.lookup``
  span.

The store is the unit of sharing: hand one instance to several
:class:`~repro.containment.bounded.ContainmentChecker` objects (or to
:func:`~repro.containment.minimize.minimize_query`, UCQ containment, the
batch pipeline ...) and they all draw from the same chase pool.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..chase.engine import ChaseConfig, ChaseEngine, ChaseRun
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..obs import OBS_OFF, MetricsRegistry, Observability

__all__ = ["ChaseStore", "StoreStats", "OUTCOME_FULL", "OUTCOME_HIT", "OUTCOME_EXTEND"]

#: A fresh chase was run (first time this canonical query is seen).
OUTCOME_FULL = "full-chase"
#: The stored prefix already covered the requested bound.
OUTCOME_HIT = "cache-hit"
#: The stored prefix was incrementally extended to the requested bound.
OUTCOME_EXTEND = "cache-extend"


@dataclass
class StoreStats:
    """Hit/miss/extend/evict counters of one :class:`ChaseStore`.

    The plain integer fields remain the source of truth (and stay
    directly assignable, as older callers expect); when a *registry* is
    bound via :meth:`bind`, the ``record_*`` mutators additionally mirror
    every event into process-wide metrics.
    """

    hits: int = 0
    misses: int = 0
    extensions: int = 0
    evictions: int = 0
    #: Runs currently held by the store (entries added minus evicted/cleared).
    live_entries: int = 0
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    @property
    def full_chases(self) -> int:
        """Chases run from scratch — one per distinct canonical query."""
        return self.misses

    @property
    def reuses(self) -> int:
        """Requests served without a fresh chase (hits + extensions)."""
        return self.hits + self.extensions

    @property
    def requests(self) -> int:
        """Total lookups served, whatever the outcome."""
        return self.hits + self.misses + self.extensions

    # -- mirrored mutators ---------------------------------------------------

    def bind(self, registry: Optional[MetricsRegistry]) -> "StoreStats":
        """Attach a metrics registry; subsequent events are mirrored into it."""
        self.registry = registry
        if registry is not None:
            registry.gauge("store.live_entries").set(self.live_entries)
        return self

    def record_hit(self) -> None:
        """Count a request served entirely from a stored prefix."""
        self.hits += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="hit").inc()

    def record_miss(self) -> None:
        """Count a request that forced a chase from scratch."""
        self.misses += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="miss").inc()

    def record_extension(self) -> None:
        """Count a request served by extending a stored prefix."""
        self.extensions += 1
        if self.registry is not None:
            self.registry.counter("store.requests", outcome="extend").inc()

    def record_eviction(self, n: int = 1) -> None:
        """Count ``n`` entries dropped by the LRU eviction policy."""
        self.evictions += n
        if self.registry is not None:
            self.registry.counter("store.evictions").inc(n)

    def entry_added(self) -> None:
        """Track a run entering the store (mirrors the live gauge)."""
        self.live_entries += 1
        if self.registry is not None:
            self.registry.gauge("store.live_entries").set(self.live_entries)

    def entry_removed(self, n: int = 1) -> None:
        """Track ``n`` runs leaving the store (evicted or cleared)."""
        self.live_entries -= n
        if self.registry is not None:
            self.registry.gauge("store.live_entries").set(self.live_entries)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "extensions": self.extensions,
            "evictions": self.evictions,
            "live_entries": self.live_entries,
        }

    def __str__(self) -> str:
        return (
            f"{self.requests} chase requests: {self.misses} full, "
            f"{self.extensions} extended, {self.hits} hits "
            f"({self.evictions} evictions)"
        )


class ChaseStore:
    """Canonical-keyed, LRU-bounded pool of resumable chase runs.

    Parameters
    ----------
    dependencies:
        The constraint set every stored chase uses; defaults to Sigma_FL.
    capacity:
        Maximum number of runs kept; the least recently used run is
        evicted beyond it.  ``None`` disables eviction.
    reorder_join / max_steps:
        Forwarded to the chase engine.
    obs:
        Observability sink.  The owned chase engine inherits it (so
        stored chases emit ``chase.*`` spans and metrics), each lookup
        opens a ``store.lookup`` span, and :attr:`stats` mirrors into its
        metrics registry.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        capacity: Optional[int] = 128,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        obs: Optional[Observability] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.dependencies = tuple(dependencies)
        self.capacity = capacity
        self.obs = obs if obs is not None else OBS_OFF
        self.engine = ChaseEngine(
            self.dependencies,
            ChaseConfig(max_steps=max_steps, reorder_join=reorder_join),
            obs=self.obs,
        )
        self._runs: "OrderedDict[tuple, ChaseRun]" = OrderedDict()
        self.stats = StoreStats().bind(self.obs.metrics)

    # -- the one lookup path -------------------------------------------------

    def run_for(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> tuple[ChaseRun, str]:
        """The chase run for *query*, covering *level_bound* levels.

        Returns the run together with how the request was served: a
        :data:`OUTCOME_FULL` fresh chase, a pure :data:`OUTCOME_HIT`, or
        an incremental :data:`OUTCOME_EXTEND` of the stored prefix.
        Lookup is a single O(1) dict probe on the canonical key — there
        is no linear scan over cached entries.
        """
        run, outcome = self.open(query, level_bound)
        if outcome is not OUTCOME_HIT:
            run.extend_to(level_bound)
        return run, outcome

    def open(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> tuple[ChaseRun, str]:
        """The session for *query*, classified against *level_bound* — unchased.

        Identical bookkeeping to :meth:`run_for` (counters, LRU order,
        eviction, the ``store.lookup`` span) but the returned run is *not*
        extended: the caller drives :meth:`ChaseRun.extend_to` itself.
        This is the entry point of the anytime checker, which consumes the
        chase level by level and may stop far short of *level_bound* when
        a witness appears early — the outcome still classifies the request
        against the *requested* bound (miss / covered / would-extend), so
        hit-rate accounting stays comparable across modes.
        """
        tracer = self.obs.tracer
        with tracer.span("store.lookup", query=query.name) as span:
            key = query.canonical_key()
            run = self._runs.get(key)
            if run is None:
                self.stats.record_miss()
                run = self.engine.start(query)
                self._runs[key] = run
                self.stats.entry_added()
                outcome = OUTCOME_FULL
            elif not run.covers(level_bound):
                self.stats.record_extension()
                outcome = OUTCOME_EXTEND
            else:
                self.stats.record_hit()
                outcome = OUTCOME_HIT
            self._runs.move_to_end(key)
            if self.capacity is not None:
                while len(self._runs) > self.capacity:
                    self._runs.popitem(last=False)
                    self.stats.record_eviction()
                    self.stats.entry_removed()
            if tracer.enabled:
                span.set(outcome=outcome, bound=level_bound, entries=len(self._runs))
        return run, outcome

    # -- inspection ----------------------------------------------------------

    def peek(self, query: ConjunctiveQuery) -> Optional[ChaseRun]:
        """The stored run for *query*, without counters or LRU effects."""
        return self._runs.get(query.canonical_key())

    def __contains__(self, query: ConjunctiveQuery) -> bool:
        return query.canonical_key() in self._runs

    def __len__(self) -> int:
        return len(self._runs)

    def clear(self) -> None:
        """Drop every stored run (counters are kept, the live gauge drops)."""
        dropped = len(self._runs)
        self._runs.clear()
        if dropped:
            self.stats.entry_removed(dropped)

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else str(self.capacity)
        return f"ChaseStore({len(self._runs)}/{cap} runs; {self.stats})"
