"""Containment verdicts with their evidence.

A containment check does not just answer yes/no: a *yes* carries the
witness homomorphism (and, under constraints, the chase prefix it maps
into), a *no* records how exhaustively the search refuted the witness.
Keeping the evidence makes results testable and the experiment tables
self-explanatory.

Under resource governance the verdict is **three-valued**: a governed
check whose budget runs out before either a witness is found or the full
Theorem-12 prefix is searched returns an ``UNKNOWN`` result
(:attr:`ContainmentResult.unknown` true, :attr:`ContainmentResult.decision`
= :attr:`Decision.UNKNOWN`) carrying the reason, the levels chased, and
the :class:`~repro.governance.BudgetReport`.  Soundness of Theorem 12 is
preserved by construction — a decision requires a positive witness or a
completed ``|q2|·2·|q1|``-level prefix, and an exhausted budget provides
neither, so the checker *refuses to guess* rather than extrapolating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chase.engine import ChaseResult
    from ..governance.budget import BudgetReport
    from ..obs.provenance import ContainmentProvenance

__all__ = ["ContainmentReason", "ContainmentResult", "Decision"]


class Decision(enum.Enum):
    """The three-valued outcome of a governed containment check."""

    #: A witness homomorphism (or a failing chase) proves ``q1 ⊆ q2``.
    TRUE = "decided_true"
    #: The completed Theorem-12 prefix holds no witness: ``q1 ⊄ q2``.
    FALSE = "decided_false"
    #: The budget ran out (or the run was cancelled) before either a
    #: witness or a completed prefix existed; no decision is sound.
    UNKNOWN = "unknown"


class ContainmentReason(enum.Enum):
    """Why the verdict is what it is."""

    #: A homomorphism body(q2) -> chase(q1) with the head condition exists.
    HOMOMORPHISM = "homomorphism"
    #: The chase of q1 failed (EGD clash): q1 is unsatisfiable under the
    #: constraints, so it is vacuously contained in any same-arity query.
    CHASE_FAILURE = "chase-failure"
    #: No witness homomorphism exists within the examined chase prefix.
    NO_HOMOMORPHISM = "no-homomorphism"
    #: The execution budget (deadline, facts, memory or steps) ran out
    #: before a sound decision existed — the result is UNKNOWN.
    BUDGET_EXHAUSTED = "budget-exhausted"
    #: The check's cancel scope was cancelled — the result is UNKNOWN.
    CANCELLED = "cancelled"


#: Reasons whose results are UNKNOWN rather than decisions.
_UNKNOWN_REASONS = frozenset(
    {ContainmentReason.BUDGET_EXHAUSTED, ContainmentReason.CANCELLED}
)


@dataclass
class ContainmentResult:
    """The outcome of checking ``q1 ⊆ q2`` (under constraints or not)."""

    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    contained: bool
    reason: ContainmentReason
    witness: Optional[Substitution] = None
    chase_result: Optional["ChaseResult"] = None
    level_bound: Optional[int] = None
    elapsed_seconds: float = 0.0
    #: How the chase prefix was obtained: ``"full-chase"`` (fresh run),
    #: ``"cache-hit"`` (stored prefix already covered the bound) or
    #: ``"cache-extend"`` (stored prefix incrementally extended).  ``None``
    #: when the decision did not go through a :class:`ChaseStore`.
    chase_outcome: Optional[str] = None
    #: Decision provenance (witness levels, per-level fact counts, rule
    #: firing sequence), attached by ``ContainmentChecker.check(...,
    #: explain=True)`` or built lazily by :meth:`explain_data`.
    provenance: Optional["ContainmentProvenance"] = None
    #: Chase level at which the anytime pipeline's witness search
    #: succeeded (``None`` for negative verdicts, chase-failure verdicts
    #: and monolithic-mode decisions).  Positive anytime decisions exit at
    #: this level instead of materialising the full ``level_bound``.
    witness_level: Optional[int] = None
    #: Chase levels actually examined by this decision — at most
    #: ``level_bound``, and strictly less on an early (witness or
    #: saturation) exit.  ``None`` when the decision did not go through
    #: the level-driven checker.
    levels_chased: Optional[int] = None
    #: Chase wall-clock this decision caused (seconds of fresh
    #: ``extend_to`` work).  In batch mode the group's shared chase is
    #: attributed to the *first* result that triggered it — the per-result
    #: ``elapsed_seconds`` of the remaining group members excludes chase
    #: cost by construction, so summing ``shared_chase_seconds`` over a
    #: batch recovers the true chase bill exactly once.
    shared_chase_seconds: Optional[float] = None
    #: Budget consumption at the moment a governed check stopped,
    #: attached to UNKNOWN results (and occasionally to decided ones
    #: when a governor was active).  ``None`` for ungoverned checks.
    budget_report: Optional["BudgetReport"] = None

    def __bool__(self) -> bool:
        """Truthiness is ``contained`` — conservatively False for UNKNOWN.

        An UNKNOWN result is *not* a negative decision (check
        :attr:`unknown` or :attr:`decision` to distinguish), but treating
        it as falsy means code that only acts on a proven containment
        never acts on an undecided one.
        """
        return self.contained

    @property
    def unknown(self) -> bool:
        """True when this result is no decision at all (budget/cancel)."""
        return self.reason in _UNKNOWN_REASONS

    @property
    def decision(self) -> Decision:
        """The three-valued outcome: TRUE, FALSE, or UNKNOWN."""
        if self.unknown:
            return Decision.UNKNOWN
        return Decision.TRUE if self.contained else Decision.FALSE

    def explain_data(self) -> Optional["ContainmentProvenance"]:
        """The structured provenance payload, built on first request.

        Returns ``None`` only when no chase evidence is attached (a
        constraint-free Theorem-4 style result).  The payload is cached on
        the result, so repeated calls are free.
        """
        if self.provenance is None:
            from ..obs.provenance import build_provenance

            self.provenance = build_provenance(self)
        return self.provenance

    @property
    def delta(self) -> Optional[int]:
        """The paper's ``delta = 2 * |q1|`` when a bound was used."""
        if self.level_bound is None:
            return None
        return 2 * self.q1.size

    @property
    def early_exit(self) -> bool:
        """Whether the anytime pipeline stopped short of the level bound.

        True when a witness appeared before the Theorem-12 bound was
        materialised — the saving the interleaved chase/search schedule
        exists for.  (Saturation before the bound is not counted: the
        monolithic path stops there too.)
        """
        return (
            self.witness_level is not None
            and self.level_bound is not None
            and self.witness_level < self.level_bound
        )

    def verify(self) -> bool:
        """Re-check this result's certificate in polynomial time.

        Theorem 13's NP membership rests on a polynomially checkable
        certificate: the witness homomorphism together with the chase
        prefix it maps into.  This method re-validates a positive verdict
        from its evidence alone — every body conjunct of ``q2`` must land
        on a conjunct of the prefix and the head must land on the chased
        head — without re-running any search.  Negative verdicts and
        vacuous (chase-failure) verdicts return True when their evidence
        is shaped correctly; a corrupted result returns False.
        """
        if self.reason is ContainmentReason.CHASE_FAILURE:
            return (
                self.contained
                and self.chase_result is not None
                and self.chase_result.failed
            )
        if self.unknown:
            # An UNKNOWN result must claim nothing: no containment flag,
            # no witness.  (A result carrying a witness but labelled
            # UNKNOWN is corrupted — the witness alone would have decided.)
            return not self.contained and self.witness is None
        if not self.contained:
            return self.witness is None
        if self.witness is None or self.chase_result is None:
            return False
        instance = self.chase_result.instance
        if instance is None:
            return False
        for atom in self.q2.body:
            image = self.witness.apply_atom(atom)
            if image not in instance:
                return False
            if (
                self.level_bound is not None
                and instance.level_of(image) > self.level_bound
            ):
                return False
        head_image = tuple(self.witness.apply_term(t) for t in self.q2.head)
        return head_image == tuple(self.chase_result.head)

    def explain(self) -> str:
        """A one-paragraph human-readable justification of the verdict."""
        if self.unknown:
            what = (
                "the execution budget ran out"
                if self.reason is ContainmentReason.BUDGET_EXHAUSTED
                else "the check was cancelled"
            )
            progress = (
                f" after chasing {self.levels_chased} of "
                f"{self.level_bound} bound levels"
                if self.levels_chased is not None and self.level_bound is not None
                else ""
            )
            report = f"  {self.budget_report}" if self.budget_report else ""
            return (
                f"{self.q1.name} ⊆? {self.q2.name}: UNKNOWN — {what}{progress}. "
                "Theorem 12 decides containment only from a positive witness "
                "or a fully searched |q2|·2·|q1|-level prefix; neither exists "
                "here, so no sound decision can be reported." + report
            )
        rel = "⊆" if self.contained else "⊄"
        lead = f"{self.q1.name} {rel} {self.q2.name}"
        if self.reason is ContainmentReason.CHASE_FAILURE:
            return (
                f"{lead}: the chase of {self.q1.name} fails (the functionality "
                "EGD equates two distinct constants), so the query has no "
                "answers on any database satisfying the constraints and is "
                "vacuously contained."
            )
        if self.reason is ContainmentReason.HOMOMORPHISM:
            where = (
                f"the first {self.level_bound} levels of the chase"
                if self.level_bound is not None
                else "the canonical database"
            )
            if self.early_exit:
                where += (
                    f" (witness found at level {self.witness_level}, "
                    f"well before the bound)"
                )
            return (
                f"{lead}: a homomorphism maps body({self.q2.name}) into {where} "
                f"of {self.q1.name} and its head onto head(chase({self.q1.name})): "
                f"{self.witness}"
            )
        where = (
            f"within the Theorem-12 bound of {self.level_bound} levels"
            if self.level_bound is not None
            else "into the canonical database"
        )
        return f"{lead}: no witness homomorphism exists {where}."

    def __repr__(self) -> str:
        shown = "UNKNOWN" if self.unknown else self.contained
        return (
            f"ContainmentResult({self.q1.name} ⊆ {self.q2.name}: "
            f"{shown} [{self.reason.value}])"
        )
