"""Conjunctive-query minimisation under Sigma_FL.

The classic application of containment to query optimisation (the paper's
first motivation): a body conjunct is *redundant* when dropping it leaves
an equivalent query.  Under constraints, equivalence is asymmetric work:

* dropping conjuncts always *weakens* a query — ``q ⊆_Sigma q'`` holds
  for free whenever ``body(q') ⊆ body(q)`` and the heads agree (the
  identity maps ``body(q')`` into ``chase(q)``);
* the direction that needs checking is ``q' ⊆_Sigma q`` — the smaller
  query must still force everything the original did, possibly *via the
  constraints* (e.g. ``member(O, D)`` is redundant next to
  ``member(O, C), sub(C, D)`` because of rho_3, a redundancy invisible to
  classic minimisation).

The result is a subset-minimal equivalent query.  As with classic CQ
minimisation the outcome is unique up to isomorphism; we keep the
original conjunct order for readability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from .bounded import ContainmentChecker

__all__ = ["MinimizationResult", "minimize_query"]


@dataclass
class MinimizationResult:
    """The minimised query plus an audit trail of what was dropped."""

    original: ConjunctiveQuery
    minimized: ConjunctiveQuery
    removed: list = field(default_factory=list)
    checks: int = 0
    #: Chase-store counter deltas accrued by this minimisation run
    #: (``hits`` / ``misses`` / ``extensions`` / ``evictions``), showing how
    #: much chase work the candidate checks shared.
    store_stats: dict = field(default_factory=dict)

    @property
    def reduced(self) -> bool:
        """Whether minimisation actually dropped at least one conjunct."""
        return bool(self.removed)

    def __str__(self) -> str:
        if not self.reduced:
            return f"{self.original.name}: already minimal ({self.checks} checks)"
        dropped = ", ".join(str(a) for a in self.removed)
        return (
            f"{self.original.name}: {self.original.size} -> "
            f"{self.minimized.size} conjuncts (dropped {dropped}; "
            f"{self.checks} containment checks)"
        )


def minimize_query(
    query: ConjunctiveQuery,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    checker: Optional[ContainmentChecker] = None,
) -> MinimizationResult:
    """Drop every Sigma-redundant conjunct of *query*.

    Greedy one-at-a-time removal; each removal is validated with a full
    Theorem-12 containment check, so the final query is equivalent to the
    original over every database satisfying the dependencies.

    Head *variables* must stay safe, so a conjunct whose removal would
    orphan a head variable is never dropped.
    """
    checker = checker or ContainmentChecker(dependencies)
    stats_before = checker.stats.as_dict()
    body = list(query.body)
    removed = []
    checks = 0
    head_vars = query.head_variables()
    changed = True
    while changed and len(body) > 1:
        changed = False
        for i, atom in enumerate(list(body)):
            candidate_body = body[:i] + body[i + 1:]
            remaining_vars = set()
            for other in candidate_body:
                remaining_vars |= other.variables()
            if not head_vars <= remaining_vars:
                continue  # would unsafely orphan a head variable
            try:
                candidate = query.with_body(tuple(candidate_body))
            except QueryError:  # pragma: no cover - guarded above
                continue
            checks += 1
            if checker.check(candidate, query).contained:
                body = candidate_body
                removed.append(atom)
                changed = True
                break
    stats_after = checker.stats.as_dict()
    return MinimizationResult(
        original=query,
        minimized=query.with_body(tuple(body)),
        removed=removed,
        checks=checks,
        store_stats={
            key: stats_after[key] - stats_before[key] for key in stats_after
        },
    )
