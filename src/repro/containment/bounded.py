"""The paper's containment decision procedure (Theorems 4, 12 and 13).

``q1 ⊆_{Sigma_FL} q2`` holds iff a homomorphism sends ``body(q2)`` into
``chase_{Sigma_FL}(q1)`` and ``head(q2)`` onto ``head(chase(q1))``
(Theorem 4).  The chase may be infinite, but Theorem 12 caps the search:
it suffices to examine the first

    ``|q2| * delta``  levels, where  ``delta = 2 * |q1|``.

The checker therefore (1) chases ``q1`` level-bounded, (2) handles the
chase-failure corner (vacuous containment), and (3) runs the homomorphism
search with the head condition over the finite prefix.  This is the
deterministic realisation of the paper's NP algorithm: the
nondeterministic guess of Theorem 13 becomes backtracking, and a positive
answer carries the polynomial certificate (the witness homomorphism and
the prefix it maps into).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

from ..chase.engine import ChaseConfig, ChaseEngine, ChaseResult
from ..core.atoms import Atom
from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..datalog.index import FactIndex
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..homomorphism.search import find_homomorphism
from .result import ContainmentReason, ContainmentResult

__all__ = ["theorem12_bound", "is_contained", "ContainmentChecker"]


def theorem12_bound(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> int:
    """The Theorem-12 level bound ``|q2| * 2 * |q1|``."""
    return q2.size * 2 * q1.size


class ContainmentChecker:
    """Reusable checker: fixed dependency set, per-call query pairs.

    Parameters
    ----------
    dependencies:
        The constraint set; defaults to Sigma_FL.  The Theorem-12 bound is
        proved for Sigma_FL — for other dependency sets pass an explicit
        ``level_bound`` to :meth:`check` (or accept that the default
        formula is only a heuristic there).
    reorder_join:
        Forwarded to the chase and homomorphism engines (ablation D4).
    max_steps:
        Forwarded to the chase engine's safety valve.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
    ):
        self.dependencies = tuple(dependencies)
        self.reorder_join = reorder_join
        self.max_steps = max_steps
        self._chase_cache: dict[tuple[ConjunctiveQuery, int], ChaseResult] = {}

    # -- chase -------------------------------------------------------------

    def chase_prefix(self, query: ConjunctiveQuery, level_bound: int) -> ChaseResult:
        """Chase *query* up to *level_bound* levels (cached per checker).

        A cached result computed with a bound ``b >= level_bound`` that
        *saturated* is reused directly: the full chase is a prefix of
        itself at every bound.
        """
        hit = self._chase_cache.get((query, level_bound))
        if hit is not None:
            return hit
        for (cached_query, cached_bound), result in self._chase_cache.items():
            if cached_query == query and (
                result.saturated or result.failed or cached_bound >= level_bound
            ):
                return result
        engine = ChaseEngine(
            self.dependencies,
            ChaseConfig(
                max_level=level_bound,
                max_steps=self.max_steps,
                reorder_join=self.reorder_join,
            ),
        )
        result = engine.run(query)
        self._chase_cache[(query, level_bound)] = result
        return result

    # -- decision ------------------------------------------------------------

    def check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
    ) -> ContainmentResult:
        """Decide ``q1 ⊆_Sigma q2``.

        *level_bound* overrides the Theorem-12 bound — used by the E8
        bound-stability experiment and required for non-Sigma_FL
        dependency sets.

        *schema* makes the containment **relative**: the quantification
        runs over databases that satisfy Sigma_FL *and contain the given
        ground atoms* (typically an ontology's class hierarchy and
        signatures).  Implemented by conjoining the schema to ``body(q1)``
        before chasing — the canonical database of the combined query is
        universal for exactly those databases.  ``q1 ⊆ q2`` relative to a
        schema is weaker than absolute containment: e.g. ``B:book``
        implies ``B:publication`` only relative to a schema containing
        ``book::publication``.
        """
        if schema is not None:
            schema_atoms = tuple(schema)
            for atom in schema_atoms:
                if not atom.is_ground:
                    raise QueryError(
                        f"schema atoms must be ground, got {atom}"
                    )
            if schema_atoms:
                q1 = q1.with_body(q1.body + schema_atoms)
        if q1.arity != q2.arity:
            raise QueryError(
                f"containment requires equal arity: "
                f"{q1.name}/{q1.arity} vs {q2.name}/{q2.arity}"
            )
        start = time.perf_counter()
        bound = theorem12_bound(q1, q2) if level_bound is None else level_bound
        chase_result = self.chase_prefix(q1, bound)
        if chase_result.failed:
            return ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.CHASE_FAILURE,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=time.perf_counter() - start,
            )
        assert chase_result.instance is not None
        # The chase may have been produced under a larger cached bound;
        # restrict the search to the first `bound` levels regardless.
        if chase_result.level_reached > bound:
            prefix = FactIndex(chase_result.instance.atoms_up_to_level(bound))
        else:
            prefix = chase_result.instance.index
        witness = find_homomorphism(
            q2, prefix, head_target=chase_result.head, reorder=self.reorder_join
        )
        elapsed = time.perf_counter() - start
        if witness is not None:
            return ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.HOMOMORPHISM,
                witness=witness,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
            )
        return ContainmentResult(
            q1=q1,
            q2=q2,
            contained=False,
            reason=ContainmentReason.NO_HOMOMORPHISM,
            chase_result=chase_result,
            level_bound=bound,
            elapsed_seconds=elapsed,
        )


def is_contained(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    level_bound: Optional[int] = None,
    schema: Optional[Iterable[Atom]] = None,
) -> ContainmentResult:
    """One-shot ``q1 ⊆_{Sigma_FL} q2`` check (Theorem 12 procedure).

    Example
    -------
    >>> from repro.core import ConjunctiveQuery, Variable, type_, sub
    >>> T1, T2, T3, A, B, X = (Variable(n) for n in "T1 T2 T3 A B X".split())
    >>> q = ConjunctiveQuery("q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, X)))
    >>> qq = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, X)))
    >>> bool(is_contained(q, qq))
    True
    """
    checker = ContainmentChecker(dependencies)
    return checker.check(q1, q2, level_bound=level_bound, schema=schema)
