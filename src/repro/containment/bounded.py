"""The paper's containment decision procedure (Theorems 4, 12 and 13).

``q1 ⊆_{Sigma_FL} q2`` holds iff a homomorphism sends ``body(q2)`` into
``chase_{Sigma_FL}(q1)`` and ``head(q2)`` onto ``head(chase(q1))``
(Theorem 4).  The chase may be infinite, but Theorem 12 caps the search:
it suffices to examine the first

    ``|q2| * delta``  levels, where  ``delta = 2 * |q1|``.

The bound is a worst case, and on realistic corpora positive witnesses
almost always embed within the first chase levels.  The checker therefore
runs an **anytime** schedule by default: the resumable
:class:`~repro.chase.engine.ChaseRun` is driven level by level through an
initial exact window, then in geometrically growing strides, and after
each extension a *delta-restricted* homomorphism search
(:mod:`repro.homomorphism.incremental`) explores only embeddings that
touch the newly added conjuncts.  A witness at any level is sound (hom
existence is monotone in the prefix — see ``docs/paper_mapping.md``,
"Anytime early termination"), so positive decisions exit at the witness
level; only negative decisions materialise the whole Theorem-12 prefix.
``anytime=False`` (or the CLI's ``--no-anytime``) restores the monolithic
chase-then-search order; both modes decide exactly the same relation.

Chase work is shared through a :class:`~repro.containment.store.ChaseStore`
session: chases are keyed on the query's canonical (alpha-invariant) form
and stored as resumable runs, so a check at a larger bound *extends* the
stored prefix instead of re-chasing, and rename-apart variants of one
query share a single chase.  :meth:`ContainmentChecker.check_all` batches
many pairs: pairs are grouped by ``q1`` and each group shares one chase
session — and because groups are independent, ``parallel=True`` farms
them across a process pool with deterministic, input-order results.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

from ..chase.engine import ChaseResult, ChaseRun
from ..core.atoms import Atom
from ..core.errors import ExecutionCancelled, ExecutionInterrupted, QueryError
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..governance.budget import CancelScope, ExecutionBudget, Governor
from ..governance.faults import Fault, FaultInjector
from ..datalog.matching import resolve_kernel
from ..homomorphism.incremental import find_homomorphism_delta
from ..homomorphism.search import SearchStats, find_homomorphism
from ..kernel.telemetry import KernelTelemetry
from ..obs import Observability
from ..service.pool import (
    POOL_MAX_RETRIES,
    POOL_RETRY_BACKOFF,
    POOL_TIMEOUT_GRACE,
    WorkerPool,
)
from ..service.pool import check_group_attached as _check_group_attached
from ..service.pool import check_group_worker as _check_group_worker
from .result import ContainmentReason, ContainmentResult
from .store import OUTCOME_HIT, ChaseStore

__all__ = ["theorem12_bound", "is_contained", "ContainmentChecker"]

# Pool lifecycle lives in repro.service.pool since the service layer was
# introduced; the constants above and the two group workers stay bound
# here (and are read through this module's globals at dispatch time) so
# existing callers — and tests monkeypatching them — keep working.

#: Levels the anytime schedule probes one by one before switching to
#: geometrically growing strides.  Witnesses cluster at the first chase
#: levels (Lemmas 5/9 locality; levels 0-2 across every corpus here), so
#: a small exact window keeps positive exits at the precise witness level
#: while a negative decision's long refutation tail costs O(log bound)
#: probes instead of O(bound).
ANYTIME_EXACT_WINDOW = 4

#: Stride multiplier past the exact window.  Each tail probe (chase
#: segment + witness search) has a fixed cost, so the factor trades probe
#: count against how far past a mid-level witness the chase may
#: materialise; 4 keeps the tail at a handful of probes while staying
#: within a constant factor of any witness level.
ANYTIME_STRIDE_FACTOR = 4

#: A probe uses the delta-restricted search only while
#: ``len(delta) * ANYTIME_DELTA_MAX_SHARE <= len(instance)``.  Anchoring
#: every body position on every delta atom beats a full search when the
#: delta is a sliver of the prefix (the exact-window case), but loses
#: badly once a stride's delta is a sizable fraction of it — there a
#: plain full search over the prefix is cheaper than the sum of its
#: anchored restrictions.
ANYTIME_DELTA_MAX_SHARE = 4


def theorem12_bound(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> int:
    """The Theorem-12 level bound ``|q2| * 2 * |q1|``."""
    return q2.size * 2 * q1.size


class ContainmentChecker:
    """Reusable checker: fixed dependency set, per-call query pairs.

    Parameters
    ----------
    dependencies:
        The constraint set; defaults to Sigma_FL.  The Theorem-12 bound is
        proved for Sigma_FL — for other dependency sets pass an explicit
        ``level_bound`` to :meth:`check` (or accept that the default
        formula is only a heuristic there).
    reorder_join:
        Forwarded to the chase and homomorphism engines (ablation D4).
    max_steps:
        Forwarded to the chase engine's safety valve.
    store:
        An existing :class:`ChaseStore` to draw chases from.  Pass one
        store to several checkers (or to minimisation / UCQ containment)
        to share the chase pool; by default the checker owns a private
        store configured from the other parameters.
    anytime:
        Default decision schedule.  ``True`` (the default) interleaves
        chase extension with delta-restricted witness search and exits
        positives at the witness level; ``False`` chases to the full
        bound first and runs one monolithic search.  Either way the
        decided relation is identical; :meth:`check` takes a per-call
        override.
    obs:
        Observability sink: every :meth:`check` opens a
        ``containment.check`` span, each witness search a nested
        ``hom.search`` span, and the homomorphism node/backtrack counters
        feed the metrics registry (anytime mode adds the
        ``containment.early_exit`` and ``hom.delta_searches`` counters).
        When the checker builds its own store, the store (and hence the
        chase engine) inherits the sink.
    budget:
        Default :class:`~repro.governance.ExecutionBudget` governing every
        check (overridable per call).  A budget-stopped check returns an
        ``UNKNOWN`` :class:`ContainmentResult` instead of raising; with no
        budget, scope or fault plan configured the governed code paths are
        skipped entirely (``governor is None``), costing nothing.
    faults:
        Optional plan of :class:`~repro.governance.Fault` records; the
        checker builds one :class:`~repro.governance.FaultInjector` from
        it and fires it at every governor poll site.  Test-only.
    kernel:
        Homomorphism-search implementation for every witness search this
        checker runs: ``"auto"`` (the default) uses the dense bitset
        kernel (:mod:`repro.kernel`) whenever it applies and falls back
        to the baseline backtracking search transparently; ``"dense"``
        and ``"baseline"`` force the respective path (``dense`` still
        falls back when structurally impossible).  The decided relation,
        witnesses modulo search order, ContainmentResult fields and
        governor semantics are identical under every setting — only the
        search's internal representation changes.  Aggregate kernel
        counters are exposed as :attr:`kernel_stats` and through the
        ``hom.kernel_nodes`` / ``hom.bitset_ops`` /
        ``kernel.intern_symbols`` metrics.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        store: Optional[ChaseStore] = None,
        anytime: bool = True,
        obs: Optional[Observability] = None,
        budget: Optional[ExecutionBudget] = None,
        faults: Optional[Sequence[Fault]] = None,
        kernel: str = "auto",
    ):
        if store is None:
            store = ChaseStore(
                dependencies,
                reorder_join=reorder_join,
                max_steps=max_steps,
                obs=obs,
            )
        self.store = store
        self.obs = obs if obs is not None else store.obs
        self.dependencies = store.dependencies
        self.reorder_join = reorder_join
        self.max_steps = max_steps
        self.anytime = anytime
        self.budget = budget
        self.fault_plan: Optional[tuple[Fault, ...]] = (
            tuple(faults) if faults else None
        )
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self.fault_plan) if self.fault_plan else None
        )
        self.kernel = resolve_kernel(kernel)
        #: Aggregate dense-kernel counters across every decision this
        #: checker made (surfaced by the service layer's ``stats`` op).
        self.kernel_stats = KernelTelemetry()

    @property
    def stats(self):
        """The shared store's hit/miss/extend counters."""
        return self.store.stats

    # -- chase -------------------------------------------------------------

    def chase_prefix(self, query: ConjunctiveQuery, level_bound: int) -> ChaseResult:
        """Chase *query* up to *level_bound* levels via the shared store.

        Lookup is one O(1) probe keyed on the query's canonical form — a
        cached prefix computed at a larger bound (or one that saturated or
        failed) is reused directly, and a prefix computed at a *smaller*
        bound is incrementally extended, never re-chased.
        """
        result, _, _ = self._chase_for(query, level_bound)
        return result

    def _chase_for(
        self,
        query: ConjunctiveQuery,
        level_bound: Optional[int],
        governor: Optional[Governor] = None,
    ) -> tuple[ChaseResult, str, float]:
        """Chase to *level_bound*; also report the fresh chase seconds.

        The third component is the wall-clock this particular request
        spent extending the (possibly shared) run — zero on a pure cache
        hit.  Callers attribute it to the decision that triggered it, so
        per-result timings no longer silently exclude shared chase cost.

        Runs inside a :meth:`ChaseStore.session`, so concurrent requests
        for the same canonical query serialise on one run — the second
        arrival finds the first one's prefix as a cache hit.
        """
        with self.store.session(query, level_bound) as (run, outcome):
            before = run.elapsed_seconds
            if outcome is not OUTCOME_HIT:
                run.extend_to(level_bound, governor=governor)
            return run.result(), outcome, run.elapsed_seconds - before

    # -- decision ------------------------------------------------------------

    def check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        explain: bool = False,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
        scope: Optional[CancelScope] = None,
    ) -> ContainmentResult:
        """Decide ``q1 ⊆_Sigma q2`` — or report UNKNOWN under governance.

        *level_bound* overrides the Theorem-12 bound — used by the E8
        bound-stability experiment and required for non-Sigma_FL
        dependency sets.

        *anytime* overrides the checker-level schedule for this call:
        ``True`` interleaves chase and delta search (positives exit at the
        witness level, recorded as ``result.witness_level``), ``False``
        forces the monolithic chase-then-search order.

        *budget* (defaulting to the checker-level budget) and *scope*
        govern the call: when the budget runs out or the scope is
        cancelled before a witness is found or the full bound is
        searched, the result is **UNKNOWN** (``result.unknown`` true,
        reason ``BUDGET_EXHAUSTED``/``CANCELLED``) with the
        :class:`~repro.governance.BudgetReport` and ``levels_chased``
        attached — never a guessed decision, never an exception.  The
        underlying chase session stays in the store, so re-checking with
        a fresh budget resumes instead of restarting.

        *explain* attaches a decision-provenance payload to the result
        (witness chase levels, per-level fact counts, rule-firing
        sequence); see :meth:`ContainmentResult.explain_data`.

        *schema* makes the containment **relative**: the quantification
        runs over databases that satisfy Sigma_FL *and contain the given
        ground atoms* (typically an ontology's class hierarchy and
        signatures).  Implemented by conjoining the schema to ``body(q1)``
        before chasing — the canonical database of the combined query is
        universal for exactly those databases.  ``q1 ⊆ q2`` relative to a
        schema is weaker than absolute containment: e.g. ``B:book``
        implies ``B:publication`` only relative to a schema containing
        ``book::publication``.  The conjoined schema is part of the
        chase-cache key, so checks against different schemas never share
        (or contaminate) a cached prefix.
        """
        q1 = self._apply_schema(q1, schema)
        self._require_equal_arity(q1, q2)
        use_anytime = self.anytime if anytime is None else anytime
        bound = theorem12_bound(q1, q2) if level_bound is None else level_bound
        return self._checked(
            q1, q2, bound, use_anytime, explain=explain, budget=budget, scope=scope
        )

    def _checked(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        use_anytime: bool,
        *,
        explain: bool = False,
        budget: Optional[ExecutionBudget] = None,
        scope: Optional[CancelScope] = None,
    ) -> ContainmentResult:
        """One prepared (schema-applied, bound-resolved) decision.

        The single funnel both :meth:`check` and the governed batch paths
        go through: opens the ``containment.check`` span, builds the
        governor (``None`` when the call is ungoverned — the legacy
        zero-overhead path), and converts
        :class:`~repro.core.errors.ExecutionInterrupted` into an UNKNOWN
        result.
        """
        tracer = self.obs.tracer
        governor = self._make_governor(budget, scope)
        with tracer.span(
            "containment.check", q1=q1.name, q2=q2.name, anytime=use_anytime
        ) as span:
            start = time.perf_counter()
            try:
                if use_anytime:
                    result = self._decide_anytime(
                        q1, q2, bound, start, explain=explain, governor=governor
                    )
                else:
                    chase_result, outcome, chase_seconds = self._chase_for(
                        q1, bound, governor
                    )
                    result = self._decide(
                        q1,
                        q2,
                        bound,
                        chase_result,
                        outcome,
                        start,
                        shared_chase_seconds=chase_seconds,
                        explain=explain,
                        governor=governor,
                    )
            except ExecutionInterrupted as exc:
                result = self._unknown_result(q1, q2, bound, start, exc, governor)
            if tracer.enabled:
                span.set(
                    contained=result.contained,
                    reason=result.reason.value,
                    bound=bound,
                    chase_outcome=result.chase_outcome,
                    witness_level=result.witness_level,
                )
        return result

    def _make_governor(
        self,
        budget: Optional[ExecutionBudget],
        scope: Optional[CancelScope],
    ) -> Optional[Governor]:
        """The call's governor, or ``None`` for the ungoverned fast path."""
        budget = budget if budget is not None else self.budget
        faults = self.fault_injector
        if budget is None and scope is None and faults is None:
            return None
        return Governor(budget, scope=scope, obs=self.obs, faults=faults)

    def _unknown_result(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        start: float,
        exc: ExecutionInterrupted,
        governor: Optional[Governor],
    ) -> ContainmentResult:
        """Degrade a governed interruption into an UNKNOWN result.

        Soundness: a Theorem-12 decision needs a positive witness or a
        completely searched bound-level prefix.  The interrupted check has
        neither, so the only honest answer is UNKNOWN — ``contained`` is
        conservatively False (the result is falsy) but ``reason`` marks it
        as a non-decision.  The partial chase run (if any) is attached as
        evidence and remains in the store for a future resume.
        """
        report = exc.budget_report
        if report is None and governor is not None:
            report = governor.report()
        reason = (
            ContainmentReason.CANCELLED
            if isinstance(exc, ExecutionCancelled)
            else ContainmentReason.BUDGET_EXHAUSTED
        )
        run = self.store.peek(q1)
        chase_result = run.result() if run is not None else None
        levels_chased = max(run.bound, 0) if run is not None else None
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter("containment.unknown", reason=reason.value).inc()
        return ContainmentResult(
            q1=q1,
            q2=q2,
            contained=False,
            reason=reason,
            chase_result=chase_result,
            level_bound=bound,
            elapsed_seconds=time.perf_counter() - start,
            levels_chased=levels_chased,
            budget_report=report,
        )

    def check_all(
        self,
        pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        anytime: Optional[bool] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        budget: Optional[ExecutionBudget] = None,
        worker_faults: Optional[Sequence[Fault]] = None,
        pool: Optional[WorkerPool] = None,
    ) -> list[ContainmentResult]:
        """Decide many ``q1 ⊆ q2`` pairs, chasing each distinct ``q1`` once.

        The batch pipeline groups pairs by the canonical form of ``q1``.
        In monolithic mode (``anytime=False``) each group's query is
        chased a single time to the *maximum* bound any of its pairs
        needs, and every ``q2`` is answered against a level view of that
        one prefix.  In anytime mode (the default) no up-front group
        chase happens: every pair drives the group's shared session only
        as far as its own witness needs, so a group whose pairs all exit
        early never pays for the full bound.

        ``parallel=True`` farms the (independent) chase groups across a
        ``concurrent.futures`` process pool — *max_workers* caps the pool
        size.  Results are returned in input order and are verdict-wise
        identical to the sequential path; when worker processes cannot be
        created (or die), the batch silently falls back to sequential
        execution.  With a memory-only store, workers own private stores,
        so the parent store's counters and cached runs are not updated by
        a parallel batch, and worker-side spans/metrics are not forwarded
        to this checker's observability sink.  When the parent store has a
        persistent tier (:mod:`repro.store`), the batch instead **flushes**
        the parent's runs and ships only the database path: each worker
        attaches read-only once per pool lifetime and hydrates exactly the
        prefixes its groups need — no chase state is ever pickled across
        the pipe (see :func:`~repro.service.pool.check_group_attached`).

        *budget* governs every pair (defaulting to the checker-level
        budget): exhausted pairs come back UNKNOWN, and in parallel mode
        the budget ships to the workers for **worker-side** enforcement
        while the parent adds a per-group timeout.  A group whose worker
        crashes or wedges is retried once (with backoff) and then falls
        back to in-parent sequential execution — input-order slots are
        preserved in every case.  *worker_faults* ships a fault plan to
        the workers (test-only; the in-parent fallback deliberately runs
        without it).

        *pool* injects a :class:`~repro.service.pool.WorkerPool` whose
        workers persist across batches (the service layer's warm pool):
        passing one implies ``parallel=True``, the pool is *not* shut
        down when the batch ends, and a broken or wedged pool is recycled
        instead of abandoned.  Groups whose chase the parent store
        already covers are decided in-process — a warmed-up batch pays no
        dispatch at all — and only cold groups travel to the workers.
        """
        use_anytime = self.anytime if anytime is None else anytime
        budget = budget if budget is not None else self.budget
        schema_atoms = tuple(schema) if schema is not None else None
        prepared: list[tuple[ConjunctiveQuery, ConjunctiveQuery, int]] = []
        for q1, q2 in pairs:
            q1 = self._apply_schema(q1, schema_atoms)
            self._require_equal_arity(q1, q2)
            bound = theorem12_bound(q1, q2) if level_bound is None else level_bound
            prepared.append((q1, q2, bound))

        groups: dict[tuple, list[int]] = {}
        for i, (q1, _, _) in enumerate(prepared):
            groups.setdefault(q1.canonical_key(), []).append(i)

        results: list[Optional[ContainmentResult]] = None
        if (parallel or pool is not None) and len(groups) > 1:
            results = self._check_all_parallel(
                prepared, groups, use_anytime, max_workers, budget,
                worker_faults, pool,
            )
        if results is None:
            results = [None] * len(prepared)
            tracer = self.obs.tracer
            governed = (
                budget is not None
                or self.fault_injector is not None
            )
            for indexes in groups.values():
                if governed:
                    # Every governed pair goes through the single funnel:
                    # per-pair governor, UNKNOWN degradation.  The store
                    # still shares the group's chase session between
                    # consecutive pairs.
                    for i in indexes:
                        q1, q2, bound = prepared[i]
                        results[i] = self._checked(
                            q1, q2, bound, use_anytime, budget=budget
                        )
                    continue
                if use_anytime:
                    # No up-front group chase: consecutive pairs share the
                    # stored session and extend it only on demand.
                    for i in indexes:
                        q1, q2, bound = prepared[i]
                        with tracer.span(
                            "containment.check", q1=q1.name, q2=q2.name, batch=True
                        ) as span:
                            start = time.perf_counter()
                            results[i] = self._decide_anytime(q1, q2, bound, start)
                            if tracer.enabled:
                                span.set(
                                    contained=results[i].contained,
                                    reason=results[i].reason.value,
                                    bound=bound,
                                    witness_level=results[i].witness_level,
                                )
                    continue
                max_bound = max(prepared[i][2] for i in indexes)
                representative = prepared[indexes[0]][0]
                chase_result, outcome, chase_seconds = self._chase_for(
                    representative, max_bound
                )
                for i in indexes:
                    q1, q2, bound = prepared[i]
                    with tracer.span(
                        "containment.check", q1=q1.name, q2=q2.name, batch=True
                    ) as span:
                        start = time.perf_counter()
                        # The group's shared chase bill goes to the first
                        # decision (the one that triggered it); the rest
                        # record zero, so summing shared_chase_seconds over
                        # the batch counts each chase second exactly once.
                        results[i] = self._decide(
                            q1,
                            q2,
                            bound,
                            chase_result,
                            outcome,
                            start,
                            shared_chase_seconds=(
                                chase_seconds if i == indexes[0] else 0.0
                            ),
                        )
                        if tracer.enabled:
                            span.set(
                                contained=results[i].contained,
                                reason=results[i].reason.value,
                                bound=bound,
                            )
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise AssertionError(
                f"batch pipeline lost result slots {missing} of {len(results)}: "
                "every prepared pair must produce exactly one result"
            )
        return results

    def _check_all_parallel(
        self,
        prepared: list[tuple[ConjunctiveQuery, ConjunctiveQuery, int]],
        groups: dict[tuple, list[int]],
        anytime: bool,
        max_workers: Optional[int],
        budget: Optional[ExecutionBudget] = None,
        worker_faults: Optional[Sequence[Fault]] = None,
        pool: Optional[WorkerPool] = None,
    ) -> Optional[list[Optional[ContainmentResult]]]:
        """Fan chase groups out to a process pool; ``None`` = fall back.

        Each group is one task (its pairs share a worker-local chase), so
        parallelism scales with the number of *distinct* ``q1`` queries.
        Returns ``None`` when the pool cannot be created or breaks
        outright — the caller then runs the ordinary sequential path, so
        ``parallel=True`` degrades gracefully on restricted platforms.

        **Warm-group routing** — a group whose chase the parent store
        already covers (a repeat batch, or pairs decided earlier through
        the same checker) is decided in-process: the store answers from
        the cached run and the group never travels to a worker.  Only
        cold groups are dispatched, so a fully warmed-up batch performs
        zero pool round-trips.

        **Warm pools** — when *pool* (a
        :class:`~repro.service.pool.WorkerPool`) is given, its executor
        is reused across batches: it is never shut down here, and a
        broken or wedged executor is handed back via
        :meth:`~repro.service.pool.WorkerPool.recycle` so the *next*
        batch gets fresh workers.  Without *pool*, a cold ephemeral
        executor is created and torn down per call (the legacy path).

        Per-group resilience (three layers, outermost last):

        1. the shipped *budget* is enforced **inside** the worker, so a
           deadline-bounded group returns UNKNOWN results instead of
           running long;
        2. a group whose worker raises is resubmitted up to
           :data:`POOL_MAX_RETRIES` times with linear backoff — a crashed
           worker process is replaced by the pool and transient failures
           heal;
        3. a group still failing — or exceeding the parent-side timeout
           derived from the deadline (``deadline · pairs · 2`` plus
           grace), meaning the worker is wedged — is re-decided in-parent
           sequentially (without *worker_faults*), so every input slot is
           filled exactly once, in order, no matter what the pool did.
        """
        results: list[Optional[ContainmentResult]] = [None] * len(prepared)
        metrics = self.obs.metrics

        # Split warm groups (parent store already covers the chase) from
        # cold ones; warm groups are decided here, without dispatch.
        cold_groups: list[list[int]] = []
        warm_groups = 0
        for indexes in groups.values():
            q1 = prepared[indexes[0]][0]
            max_bound = max(prepared[i][2] for i in indexes)
            if self.store.covers(q1, max_bound):
                warm_groups += 1
                for i in indexes:
                    q1, q2, bound = prepared[i]
                    results[i] = self._checked(q1, q2, bound, anytime, budget=budget)
            else:
                cold_groups.append(indexes)
        if metrics is not None and warm_groups:
            metrics.counter("containment.pool_warm_groups").inc(warm_groups)
        if not cold_groups:
            if metrics is not None:
                metrics.counter("containment.checks").inc(len(prepared))
            return results

        try:
            from concurrent.futures import TimeoutError as FuturesTimeout
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:
            return None
        if pool is not None:
            executor = pool.acquire()
            if executor is None:
                return None
        else:
            try:
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(max_workers=max_workers)
            except (
                ImportError,
                NotImplementedError,
                OSError,
                ValueError,
                PermissionError,
            ):
                return None
        attach_path = self.store.snapshot_path
        if attach_path is not None and worker_faults is None:
            # Zero-pickle dispatch: flush the in-memory runs so workers can
            # hydrate them from disk, then ship only the database *path* —
            # workers attach read-only and cache the attached checker for
            # the pool's lifetime (see ``check_group_attached``).  Fault
            # plans stay on the legacy pickled-payload worker so the
            # attached per-process cache stays deterministic.
            self.store.flush()
            worker_fn = _check_group_attached
            payload_head = (
                attach_path,
                self.dependencies,
                self.reorder_join,
                self.max_steps,
                anytime,
                budget,
                self.kernel,
            )
        else:
            worker_fn = _check_group_worker
            payload_head = (
                self.dependencies,
                self.reorder_join,
                self.max_steps,
                anytime,
                budget,
                tuple(worker_faults) if worker_faults else None,
                self.kernel,
            )
        deadline = budget.deadline_seconds if budget is not None else None
        retries = 0
        fallback_groups = 0
        timed_out = False
        if pool is not None:
            pool.stats.tasks_submitted += len(cold_groups)
        try:
            futures = {
                executor.submit(
                    worker_fn,
                    payload_head + ([prepared[i] for i in indexes],),
                ): indexes
                for indexes in cold_groups
            }
            for future, indexes in futures.items():
                payload = payload_head + ([prepared[i] for i in indexes],)
                timeout = (
                    None
                    if deadline is None
                    else deadline * len(indexes) * 2 + POOL_TIMEOUT_GRACE
                )
                group_results: Optional[list[ContainmentResult]] = None
                try:
                    group_results = future.result(timeout=timeout)
                # FuturesTimeout must be caught before OSError: on
                # Python >= 3.11 it *is* the builtin TimeoutError, an
                # OSError subclass.
                except FuturesTimeout:
                    # The worker ignored its own deadline: it is wedged,
                    # and its pool slot is gone.  No retry — straight to
                    # the in-parent fallback.
                    timed_out = True
                except (BrokenProcessPool, OSError):
                    raise
                except Exception:
                    attempt = 0
                    while group_results is None and attempt < POOL_MAX_RETRIES:
                        attempt += 1
                        retries += 1
                        time.sleep(POOL_RETRY_BACKOFF * attempt)
                        try:
                            group_results = executor.submit(
                                worker_fn, payload
                            ).result(timeout=timeout)
                        except FuturesTimeout:
                            # A retry that wedges is as wedged as a
                            # first attempt: abandon the slot.
                            timed_out = True
                            break
                        except (BrokenProcessPool, OSError):
                            raise
                        except Exception:
                            group_results = None
                if group_results is None:
                    fallback_groups += 1
                    group_results = [
                        self._checked(q1, q2, bound, anytime, budget=budget)
                        for q1, q2, bound in (prepared[i] for i in indexes)
                    ]
                for slot, result in zip(indexes, group_results):
                    results[slot] = result
        except (BrokenProcessPool, OSError):
            if pool is not None:
                # Hand the broken executor back for replacement; the warm
                # pool itself stays open for the next batch.
                pool.recycle(reason="broken")
            else:
                executor.shutdown(wait=False, cancel_futures=True)
            return None
        finally:
            if pool is not None:
                # Never close a warm pool at batch end — that is the whole
                # point.  A wedged executor is recycled so the next batch
                # starts from fresh workers.
                if timed_out:
                    pool.recycle(reason="wedged")
            else:
                # A wedged worker would make the ordinary shutdown wait
                # forever; abandon it and let the interpreter reap the pool.
                executor.shutdown(wait=not timed_out, cancel_futures=True)
        if metrics is not None:
            metrics.counter("containment.parallel_groups").inc(len(cold_groups))
            metrics.counter("containment.checks").inc(len(prepared))
            if retries:
                metrics.counter("containment.pool_retries").inc(retries)
            if fallback_groups:
                metrics.counter("containment.pool_fallback_groups").inc(
                    fallback_groups
                )
        return results

    # -- helpers -------------------------------------------------------------

    def _make_search_stats(self, tracer, metrics) -> Optional[SearchStats]:
        """Stats object for one decision's searches, or ``None``.

        Created whenever an observability sink wants the counts — or
        whenever the dense kernel may run, since :attr:`kernel_stats`
        aggregates unconditionally (the kernel section of the service
        stats must not silently read zero just because tracing is off).
        """
        if tracer.enabled or metrics is not None or self.kernel != "baseline":
            return SearchStats()
        return None

    def _publish_kernel_stats(self, search_stats, metrics) -> None:
        """Fold one decision's search stats into the kernel aggregates."""
        if search_stats is None:
            return
        self.kernel_stats.absorb(search_stats)
        if metrics is None:
            return
        if search_stats.kernel_nodes:
            metrics.counter("hom.kernel_nodes").inc(search_stats.kernel_nodes)
        if search_stats.bitset_ops:
            metrics.counter("hom.bitset_ops").inc(search_stats.bitset_ops)
        if search_stats.intern_symbols:
            metrics.counter("kernel.intern_symbols").inc(
                search_stats.intern_symbols
            )

    @staticmethod
    def _apply_schema(
        q1: ConjunctiveQuery, schema: Optional[Iterable[Atom]]
    ) -> ConjunctiveQuery:
        if schema is None:
            return q1
        schema_atoms = tuple(schema)
        for atom in schema_atoms:
            if not atom.is_ground:
                raise QueryError(f"schema atoms must be ground, got {atom}")
        if not schema_atoms:
            return q1
        return q1.with_body(q1.body + schema_atoms)

    @staticmethod
    def _require_equal_arity(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
        if q1.arity != q2.arity:
            raise QueryError(
                f"containment requires equal arity: "
                f"{q1.name}/{q1.arity} vs {q2.name}/{q2.arity}"
            )

    def _failure_result(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        chase_result: ChaseResult,
        outcome: str,
        start: float,
        shared_chase_seconds: float,
        *,
        explain: bool,
    ) -> ContainmentResult:
        result = ContainmentResult(
            q1=q1,
            q2=q2,
            contained=True,
            reason=ContainmentReason.CHASE_FAILURE,
            chase_result=chase_result,
            level_bound=bound,
            elapsed_seconds=time.perf_counter() - start,
            chase_outcome=outcome,
            shared_chase_seconds=shared_chase_seconds,
        )
        if explain:
            result.explain_data()
        return result

    # -- the anytime schedule -------------------------------------------------

    def _decide_anytime(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        start: float,
        *,
        explain: bool = False,
        governor: Optional[Governor] = None,
    ) -> ContainmentResult:
        """Interleave chase extension with delta-restricted witness search.

        The loop invariant after probing level ``k``: every embedding of
        ``body(q2)`` into the current level-``k`` prefix satisfying the
        head condition has been explored.  Levels already materialised by
        a cached run contribute their per-level atom sets as deltas;
        freshly chased levels contribute their
        :attr:`~repro.chase.engine.ChaseRun.segment_deltas` (which also
        carry EGD-rewritten lower-level conjuncts).  A segment that
        rewrote the chased head invalidates earlier seeds, so that probe
        falls back to one full search over the current prefix.

        Probe levels follow :data:`ANYTIME_EXACT_WINDOW` /
        geometric-stride growth: witnesses live at the first few levels
        (the locality story of Lemmas 5 and 9), so those are probed one
        by one, while the long refutation tail to the Theorem-12 bound is
        covered in O(log bound) probes.  Each probe consumes the delta
        accumulated since the previous one; a probe whose delta is a bulk
        share of the prefix (:data:`ANYTIME_DELTA_MAX_SHARE`) runs a
        plain full search instead, which is cheaper there than the sum of
        the delta's anchored restrictions.

        The whole probe loop runs inside a :meth:`ChaseStore.session` for
        ``q1``'s canonical key: concurrent same-key checks coalesce onto
        one chase extension (the waiter resumes against the materialised
        prefix) and the run cannot be evicted mid-decision.
        """
        with self.store.session(q1, bound) as (run, outcome):
            return self._decide_anytime_locked(
                q1, q2, bound, start, run, outcome,
                explain=explain, governor=governor,
            )

    def _decide_anytime_locked(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        start: float,
        run,
        outcome: str,
        *,
        explain: bool = False,
        governor: Optional[Governor] = None,
    ) -> ContainmentResult:
        """The anytime probe loop proper — callers hold ``q1``'s session."""
        metrics = self.obs.metrics
        tracer = self.obs.tracer
        if metrics is not None:
            metrics.counter("containment.checks").inc()
        chase_before = run.elapsed_seconds
        search_stats = self._make_search_stats(tracer, metrics)
        witness = None
        witness_level: Optional[int] = None
        first_search = True
        level = 0
        prev_level = -1
        stride = 1
        while True:
            if governor is not None:
                governor.poll("containment.probe", facts=len(run.instance))
            delta: Optional[list[Atom]]  # None = full search required
            if run.failed:
                return self._failure_result(
                    q1,
                    q2,
                    bound,
                    run.result(),
                    outcome,
                    start,
                    run.elapsed_seconds - chase_before,
                    explain=explain,
                )
            if run.covers(level):
                # Already materialised (cached or saturated): the levels
                # since the previous probe are the delta.
                delta = [
                    atom
                    for lvl in range(prev_level + 1, level + 1)
                    for atom in run.instance.atoms_at_level(lvl)
                ]
            else:
                segments_before = len(run.segment_deltas)
                run.extend_to(level, governor=governor)
                if run.failed:
                    return self._failure_result(
                        q1,
                        q2,
                        bound,
                        run.result(),
                        outcome,
                        start,
                        run.elapsed_seconds - chase_before,
                        explain=explain,
                    )
                if any(run.segment_head_rewrites[segments_before:]):
                    delta = None
                else:
                    delta = [
                        atom
                        for segment in run.segment_deltas[segments_before:]
                        for atom in segment
                    ]
            instance = run.instance
            prefix = (
                instance.up_to_level(level)
                if instance.max_level() > level
                else instance.index
            )
            head = instance.head
            bulk_delta = (
                delta is not None
                and len(delta) * ANYTIME_DELTA_MAX_SHARE > len(instance)
            )
            if first_search or delta is None or bulk_delta:
                first_search = False
                with tracer.span(
                    "hom.search", source=q2.name, target=q1.name, level=level
                ) as span:
                    witness = find_homomorphism(
                        q2,
                        prefix,
                        head_target=head,
                        reorder=self.reorder_join,
                        stats=search_stats,
                        governor=governor,
                        kernel=self.kernel,
                    )
                    if tracer.enabled and search_stats is not None:
                        span.set(found=witness is not None, delta=False)
                if metrics is not None:
                    metrics.counter("hom.searches").inc()
            elif delta:
                with tracer.span(
                    "hom.search", source=q2.name, target=q1.name, level=level
                ) as span:
                    witness = find_homomorphism_delta(
                        q2,
                        prefix,
                        delta,
                        head_target=head,
                        reorder=self.reorder_join,
                        stats=search_stats,
                        governor=governor,
                        kernel=self.kernel,
                    )
                    if tracer.enabled and search_stats is not None:
                        span.set(
                            found=witness is not None,
                            delta=True,
                            delta_size=len(delta),
                        )
                if metrics is not None:
                    metrics.counter("hom.searches").inc()
                    metrics.counter("hom.delta_searches").inc()
            # An empty delta adds no embeddings: skip the search entirely.
            if witness is not None:
                witness_level = level
                break
            if level >= bound:
                break
            if (run.saturated or run.covers(bound)) and level >= instance.max_level():
                # Nothing above this level exists or ever will: the
                # remaining bound levels are vacuously searched.
                break
            prev_level = level
            if level + 1 >= ANYTIME_EXACT_WINDOW:
                stride *= ANYTIME_STRIDE_FACTOR
            level = min(level + stride, bound)
        if metrics is not None and search_stats is not None:
            metrics.counter("hom.nodes_expanded").inc(search_stats.nodes)
            metrics.counter("hom.backtracks").inc(search_stats.backtracks)
        self._publish_kernel_stats(search_stats, metrics)
        chase_result = run.result()
        shared_chase = run.elapsed_seconds - chase_before
        elapsed = time.perf_counter() - start
        if witness is not None:
            if metrics is not None and witness_level is not None and witness_level < bound:
                metrics.counter("containment.early_exit").inc()
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.HOMOMORPHISM,
                witness=witness,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
                witness_level=witness_level,
                levels_chased=level,
                shared_chase_seconds=shared_chase,
            )
        else:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=False,
                reason=ContainmentReason.NO_HOMOMORPHISM,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
                levels_chased=level,
                shared_chase_seconds=shared_chase,
            )
        if explain:
            result.explain_data()
        return result

    # -- the monolithic schedule ----------------------------------------------

    def _decide(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        chase_result: ChaseResult,
        outcome: str,
        start: float,
        *,
        shared_chase_seconds: float = 0.0,
        explain: bool = False,
        governor: Optional[Governor] = None,
    ) -> ContainmentResult:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter("containment.checks").inc()
        if chase_result.failed:
            return self._failure_result(
                q1,
                q2,
                bound,
                chase_result,
                outcome,
                start,
                shared_chase_seconds,
                explain=explain,
            )
        assert chase_result.instance is not None
        # The chase may have been produced under a larger cached bound;
        # restrict the search to the first `bound` levels regardless.  The
        # restriction is a zero-copy level view of the shared instance.
        if chase_result.level_reached > bound:
            prefix = chase_result.instance.up_to_level(bound)
        else:
            prefix = chase_result.instance.index
        tracer = self.obs.tracer
        search_stats = self._make_search_stats(tracer, metrics)
        with tracer.span("hom.search", source=q2.name, target=q1.name) as span:
            witness = find_homomorphism(
                q2,
                prefix,
                head_target=chase_result.head,
                reorder=self.reorder_join,
                stats=search_stats,
                governor=governor,
                kernel=self.kernel,
            )
            if tracer.enabled and search_stats is not None:
                span.set(
                    found=witness is not None,
                    nodes=search_stats.nodes,
                    backtracks=search_stats.backtracks,
                )
        if metrics is not None and search_stats is not None:
            metrics.counter("hom.searches").inc()
            metrics.counter("hom.nodes_expanded").inc(search_stats.nodes)
            metrics.counter("hom.backtracks").inc(search_stats.backtracks)
        self._publish_kernel_stats(search_stats, metrics)
        elapsed = time.perf_counter() - start
        levels_examined = min(bound, chase_result.level_reached)
        if witness is not None:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.HOMOMORPHISM,
                witness=witness,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
                levels_chased=levels_examined,
                shared_chase_seconds=shared_chase_seconds,
            )
        else:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=False,
                reason=ContainmentReason.NO_HOMOMORPHISM,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
                levels_chased=levels_examined,
                shared_chase_seconds=shared_chase_seconds,
            )
        if explain:
            result.explain_data()
        return result


def is_contained(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    level_bound: Optional[int] = None,
    schema: Optional[Iterable[Atom]] = None,
    anytime: bool = True,
    kernel: str = "auto",
) -> ContainmentResult:
    """One-shot ``q1 ⊆_{Sigma_FL} q2`` check (Theorem 12 procedure).

    Example
    -------
    >>> from repro.core import ConjunctiveQuery, Variable, type_, sub
    >>> T1, T2, T3, A, B, X = (Variable(n) for n in "T1 T2 T3 A B X".split())
    >>> q = ConjunctiveQuery("q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, X)))
    >>> qq = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, X)))
    >>> bool(is_contained(q, qq))
    True
    """
    checker = ContainmentChecker(dependencies, anytime=anytime, kernel=kernel)
    return checker.check(q1, q2, level_bound=level_bound, schema=schema)
