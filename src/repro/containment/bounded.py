"""The paper's containment decision procedure (Theorems 4, 12 and 13).

``q1 ⊆_{Sigma_FL} q2`` holds iff a homomorphism sends ``body(q2)`` into
``chase_{Sigma_FL}(q1)`` and ``head(q2)`` onto ``head(chase(q1))``
(Theorem 4).  The chase may be infinite, but Theorem 12 caps the search:
it suffices to examine the first

    ``|q2| * delta``  levels, where  ``delta = 2 * |q1|``.

The checker therefore (1) chases ``q1`` level-bounded, (2) handles the
chase-failure corner (vacuous containment), and (3) runs the homomorphism
search with the head condition over the finite prefix.  This is the
deterministic realisation of the paper's NP algorithm: the
nondeterministic guess of Theorem 13 becomes backtracking, and a positive
answer carries the polynomial certificate (the witness homomorphism and
the prefix it maps into).

Chase work is shared through a :class:`~repro.containment.store.ChaseStore`
session: chases are keyed on the query's canonical (alpha-invariant) form
and stored as resumable :class:`~repro.chase.engine.ChaseRun` objects, so
a check at a larger bound *extends* the stored prefix instead of
re-chasing, and rename-apart variants of one query share a single chase.
:meth:`ContainmentChecker.check_all` batches many pairs: pairs are grouped
by ``q1``, each group is chased once to the maximum required bound, and
every ``q2`` is answered against a level-restricted view of that prefix.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

from ..chase.engine import ChaseResult
from ..core.atoms import Atom
from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..dependencies.dependency import Dependency
from ..dependencies.sigma_fl import SIGMA_FL
from ..homomorphism.search import SearchStats, find_homomorphism
from ..obs import Observability
from .result import ContainmentReason, ContainmentResult
from .store import ChaseStore

__all__ = ["theorem12_bound", "is_contained", "ContainmentChecker"]


def theorem12_bound(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> int:
    """The Theorem-12 level bound ``|q2| * 2 * |q1|``."""
    return q2.size * 2 * q1.size


class ContainmentChecker:
    """Reusable checker: fixed dependency set, per-call query pairs.

    Parameters
    ----------
    dependencies:
        The constraint set; defaults to Sigma_FL.  The Theorem-12 bound is
        proved for Sigma_FL — for other dependency sets pass an explicit
        ``level_bound`` to :meth:`check` (or accept that the default
        formula is only a heuristic there).
    reorder_join:
        Forwarded to the chase and homomorphism engines (ablation D4).
    max_steps:
        Forwarded to the chase engine's safety valve.
    store:
        An existing :class:`ChaseStore` to draw chases from.  Pass one
        store to several checkers (or to minimisation / UCQ containment)
        to share the chase pool; by default the checker owns a private
        store configured from the other parameters.
    obs:
        Observability sink: every :meth:`check` opens a
        ``containment.check`` span, the witness search a nested
        ``hom.search`` span, and the homomorphism node/backtrack counters
        feed the metrics registry.  When the checker builds its own store,
        the store (and hence the chase engine) inherits the sink.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        store: Optional[ChaseStore] = None,
        obs: Optional[Observability] = None,
    ):
        if store is None:
            store = ChaseStore(
                dependencies,
                reorder_join=reorder_join,
                max_steps=max_steps,
                obs=obs,
            )
        self.store = store
        self.obs = obs if obs is not None else store.obs
        self.dependencies = store.dependencies
        self.reorder_join = reorder_join
        self.max_steps = max_steps

    @property
    def stats(self):
        """The shared store's hit/miss/extend counters."""
        return self.store.stats

    # -- chase -------------------------------------------------------------

    def chase_prefix(self, query: ConjunctiveQuery, level_bound: int) -> ChaseResult:
        """Chase *query* up to *level_bound* levels via the shared store.

        Lookup is one O(1) probe keyed on the query's canonical form — a
        cached prefix computed at a larger bound (or one that saturated or
        failed) is reused directly, and a prefix computed at a *smaller*
        bound is incrementally extended, never re-chased.
        """
        result, _ = self._chase_for(query, level_bound)
        return result

    def _chase_for(
        self, query: ConjunctiveQuery, level_bound: Optional[int]
    ) -> tuple[ChaseResult, str]:
        run, outcome = self.store.run_for(query, level_bound)
        return run.result(), outcome

    # -- decision ------------------------------------------------------------

    def check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        explain: bool = False,
    ) -> ContainmentResult:
        """Decide ``q1 ⊆_Sigma q2``.

        *level_bound* overrides the Theorem-12 bound — used by the E8
        bound-stability experiment and required for non-Sigma_FL
        dependency sets.

        *explain* attaches a decision-provenance payload to the result
        (witness chase levels, per-level fact counts, rule-firing
        sequence); see :meth:`ContainmentResult.explain_data`.

        *schema* makes the containment **relative**: the quantification
        runs over databases that satisfy Sigma_FL *and contain the given
        ground atoms* (typically an ontology's class hierarchy and
        signatures).  Implemented by conjoining the schema to ``body(q1)``
        before chasing — the canonical database of the combined query is
        universal for exactly those databases.  ``q1 ⊆ q2`` relative to a
        schema is weaker than absolute containment: e.g. ``B:book``
        implies ``B:publication`` only relative to a schema containing
        ``book::publication``.  The conjoined schema is part of the
        chase-cache key, so checks against different schemas never share
        (or contaminate) a cached prefix.
        """
        q1 = self._apply_schema(q1, schema)
        self._require_equal_arity(q1, q2)
        tracer = self.obs.tracer
        with tracer.span("containment.check", q1=q1.name, q2=q2.name) as span:
            start = time.perf_counter()
            bound = theorem12_bound(q1, q2) if level_bound is None else level_bound
            chase_result, outcome = self._chase_for(q1, bound)
            result = self._decide(
                q1, q2, bound, chase_result, outcome, start, explain=explain
            )
            if tracer.enabled:
                span.set(
                    contained=result.contained,
                    reason=result.reason.value,
                    bound=bound,
                    chase_outcome=outcome,
                )
        return result

    def check_all(
        self,
        pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
    ) -> list[ContainmentResult]:
        """Decide many ``q1 ⊆ q2`` pairs, chasing each distinct ``q1`` once.

        The batch pipeline groups pairs by the canonical form of ``q1``,
        chases each group's query a single time to the *maximum* bound any
        of its pairs needs, and answers every ``q2`` against a level view
        of that one prefix.  Results come back in input order and are
        identical (verdict-wise) to calling :meth:`check` per pair — the
        batch only reorganises the chase work.
        """
        schema_atoms = tuple(schema) if schema is not None else None
        prepared: list[tuple[ConjunctiveQuery, ConjunctiveQuery, int]] = []
        for q1, q2 in pairs:
            q1 = self._apply_schema(q1, schema_atoms)
            self._require_equal_arity(q1, q2)
            bound = theorem12_bound(q1, q2) if level_bound is None else level_bound
            prepared.append((q1, q2, bound))

        groups: dict[tuple, list[int]] = {}
        for i, (q1, _, _) in enumerate(prepared):
            groups.setdefault(q1.canonical_key(), []).append(i)

        results: list[Optional[ContainmentResult]] = [None] * len(prepared)
        tracer = self.obs.tracer
        for indexes in groups.values():
            max_bound = max(prepared[i][2] for i in indexes)
            representative = prepared[indexes[0]][0]
            chase_result, outcome = self._chase_for(representative, max_bound)
            for i in indexes:
                q1, q2, bound = prepared[i]
                with tracer.span(
                    "containment.check", q1=q1.name, q2=q2.name, batch=True
                ) as span:
                    start = time.perf_counter()
                    results[i] = self._decide(
                        q1, q2, bound, chase_result, outcome, start
                    )
                    if tracer.enabled:
                        span.set(
                            contained=results[i].contained,
                            reason=results[i].reason.value,
                            bound=bound,
                        )
        return [r for r in results if r is not None]

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _apply_schema(
        q1: ConjunctiveQuery, schema: Optional[Iterable[Atom]]
    ) -> ConjunctiveQuery:
        if schema is None:
            return q1
        schema_atoms = tuple(schema)
        for atom in schema_atoms:
            if not atom.is_ground:
                raise QueryError(f"schema atoms must be ground, got {atom}")
        if not schema_atoms:
            return q1
        return q1.with_body(q1.body + schema_atoms)

    @staticmethod
    def _require_equal_arity(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
        if q1.arity != q2.arity:
            raise QueryError(
                f"containment requires equal arity: "
                f"{q1.name}/{q1.arity} vs {q2.name}/{q2.arity}"
            )

    def _decide(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        bound: int,
        chase_result: ChaseResult,
        outcome: str,
        start: float,
        *,
        explain: bool = False,
    ) -> ContainmentResult:
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter("containment.checks").inc()
        if chase_result.failed:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.CHASE_FAILURE,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=time.perf_counter() - start,
                chase_outcome=outcome,
            )
            if explain:
                result.explain_data()
            return result
        assert chase_result.instance is not None
        # The chase may have been produced under a larger cached bound;
        # restrict the search to the first `bound` levels regardless.  The
        # restriction is a zero-copy level view of the shared instance.
        if chase_result.level_reached > bound:
            prefix = chase_result.instance.up_to_level(bound)
        else:
            prefix = chase_result.instance.index
        tracer = self.obs.tracer
        search_stats = (
            SearchStats() if (tracer.enabled or metrics is not None) else None
        )
        with tracer.span("hom.search", source=q2.name, target=q1.name) as span:
            witness = find_homomorphism(
                q2,
                prefix,
                head_target=chase_result.head,
                reorder=self.reorder_join,
                stats=search_stats,
            )
            if tracer.enabled and search_stats is not None:
                span.set(
                    found=witness is not None,
                    nodes=search_stats.nodes,
                    backtracks=search_stats.backtracks,
                )
        if metrics is not None and search_stats is not None:
            metrics.counter("hom.searches").inc()
            metrics.counter("hom.nodes_expanded").inc(search_stats.nodes)
            metrics.counter("hom.backtracks").inc(search_stats.backtracks)
        elapsed = time.perf_counter() - start
        if witness is not None:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=True,
                reason=ContainmentReason.HOMOMORPHISM,
                witness=witness,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
            )
        else:
            result = ContainmentResult(
                q1=q1,
                q2=q2,
                contained=False,
                reason=ContainmentReason.NO_HOMOMORPHISM,
                chase_result=chase_result,
                level_bound=bound,
                elapsed_seconds=elapsed,
                chase_outcome=outcome,
            )
        if explain:
            result.explain_data()
        return result


def is_contained(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    dependencies: Sequence[Dependency] = SIGMA_FL,
    level_bound: Optional[int] = None,
    schema: Optional[Iterable[Atom]] = None,
) -> ContainmentResult:
    """One-shot ``q1 ⊆_{Sigma_FL} q2`` check (Theorem 12 procedure).

    Example
    -------
    >>> from repro.core import ConjunctiveQuery, Variable, type_, sub
    >>> T1, T2, T3, A, B, X = (Variable(n) for n in "T1 T2 T3 A B X".split())
    >>> q = ConjunctiveQuery("q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, X)))
    >>> qq = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, X)))
    >>> bool(is_contained(q, qq))
    True
    """
    checker = ContainmentChecker(dependencies)
    return checker.check(q1, q2, level_bound=level_bound, schema=schema)
