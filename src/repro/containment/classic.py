"""Classic conjunctive-query containment (Chandra–Merlin 1977).

This is the **baseline** of the reproduction: the containment test one
would run if the Sigma_FL constraints were ignored.  ``q1 ⊆ q2`` over
*all* databases iff there is a homomorphism from ``q2`` to ``q1`` (body
into body, head onto head).

Classic containment is *sound but incomplete* for F-logic Lite: whenever
it says "contained", containment also holds over the constrained
databases (they are a subset of all databases), but it misses every
containment that only holds because of Sigma_FL — quantifying that gap is
experiment E10.
"""

from __future__ import annotations

import time

from ..core.query import ConjunctiveQuery
from ..homomorphism.search import find_query_homomorphism
from .result import ContainmentReason, ContainmentResult

__all__ = ["contained_classic"]


def contained_classic(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> ContainmentResult:
    """Decide ``q1 ⊆ q2`` over unconstrained databases (Chandra–Merlin)."""
    start = time.perf_counter()
    witness = find_query_homomorphism(q2, q1)
    elapsed = time.perf_counter() - start
    if witness is not None:
        return ContainmentResult(
            q1=q1,
            q2=q2,
            contained=True,
            reason=ContainmentReason.HOMOMORPHISM,
            witness=witness,
            elapsed_seconds=elapsed,
        )
    return ContainmentResult(
        q1=q1,
        q2=q2,
        contained=False,
        reason=ContainmentReason.NO_HOMOMORPHISM,
        elapsed_seconds=elapsed,
    )
