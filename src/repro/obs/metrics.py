"""Process-wide metrics: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every instrument a run creates, keyed
by ``(name, labels)`` — e.g. the per-rule trigger counters the chase
engine publishes are twelve counters named ``chase.triggers`` with labels
``rule=rho1 .. rule=rho12``.  Instruments are created on first use and
returned on every later request, so independent components (chase engine,
chase store, homomorphism search, Datalog engine) sharing one registry
accumulate into the same instruments:

>>> reg = MetricsRegistry()
>>> reg.counter("chase.triggers", rule="rho5").inc()
>>> reg.counter("chase.triggers", rule="rho5").inc(2)
>>> reg.counter("chase.triggers", rule="rho5").value
3

The dump formats (:meth:`MetricsRegistry.as_dict` /
:meth:`MetricsRegistry.to_json`) are what ``flq check --metrics FILE``
writes and what the E8/E9/E11 experiment reports embed in their ``data``
payloads.  Unlabeled instruments dump as a plain number; labeled ones as
a ``{"k=v": value}`` mapping.

Instruments are plain attribute-increment objects — cheap enough to
update in warm paths — but the engines still batch their hot-loop counts
locally and publish deltas at segment boundaries, so metrics collection
adds nothing measurable to a chase (see the obs-overhead benchmark).
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
]


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc({n}))")
        self.value += n

    def dump(self):
        return self.value

    def __repr__(self) -> str:
        return f"Counter({_render_name(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can go up and down (e.g. live store entries)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def dump(self):
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({_render_name(self.name, self.labels)}={self.value})"


#: Default histogram bucket upper bounds — tuned for chase levels and
#: small structural counts; the last implicit bucket is +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds; every observation above the
    last bound lands in the implicit ``+Inf`` bucket.  Tracks ``count``
    and ``sum`` alongside, so means are recoverable from the dump.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "total")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value, n: int = 1) -> None:
        """Record *value* (*n* times — the batch form the engines use)."""
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += n
        self.count += n
        self.total += value * n

    def dump(self) -> dict:
        out: dict[str, Any] = {"count": self.count, "sum": self.total}
        buckets = {f"<={b:g}": c for b, c in zip(self.buckets, self.bucket_counts)}
        buckets["+Inf"] = self.bucket_counts[-1]
        out["buckets"] = buckets
        return out

    def __repr__(self) -> str:
        return f"Histogram({_render_name(self.name, self.labels)}: n={self.count})"


def _render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Get-or-create pool of instruments, keyed by name + labels."""

    def __init__(self):
        self._instruments: dict[tuple[str, tuple], Any] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], **extra):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **extra)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {_render_name(name, key[1])} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- reading --------------------------------------------------------------

    def instruments(self) -> Iterator:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict:
        """Structured dump: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.

        Unlabeled instruments appear as ``name: value``; labeled ones as
        ``name: {"k=v": value, ...}`` so families (e.g. per-rule trigger
        counters) group under one key.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        section = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}
        for instrument in self._instruments.values():
            bucket = out[section[type(instrument)]]
            if instrument.labels:
                label_str = ",".join(f"{k}={v}" for k, v in instrument.labels)
                bucket.setdefault(instrument.name, {})[label_str] = instrument.dump()
            else:
                bucket[instrument.name] = instrument.dump()
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def reset(self) -> None:
        """Drop every instrument (holders of old references keep stale ones)."""
        self._instruments.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry, for callers that want one shared sink."""
    return _GLOBAL
