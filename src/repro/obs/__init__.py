"""repro.obs — tracing, metrics and decision provenance.

A dependency-free observability layer with three pillars:

* **spans** (:mod:`repro.obs.tracer`) — nested, timed phases of a chase
  or containment decision (``chase.extend`` > ``chase.level`` >
  ``chase.trigger``, ``egd.merge``, ``hom.search``, ``store.lookup``,
  ``containment.check``), exportable as JSON trees or flat CSV;
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges and histograms (per-rule trigger counts, nulls invented, EGD
  rewrites, hom-search nodes/backtracks plus the anytime pipeline's
  ``hom.delta_searches`` and ``containment.early_exit`` counters, store
  hit/miss/extend/entries);
* **provenance** (:mod:`repro.obs.provenance`) — the explain payload of
  a containment verdict: witness levels, per-level fact counts, the
  rule-firing sequence.

The engines take one :class:`Observability` handle.  The default,
:data:`OBS_OFF`, couples the no-op tracer with no metrics sink and costs
nothing — instrumented hot loops guard on ``tracer.enabled`` and publish
counter deltas only at segment boundaries.  Wire a live handle to turn
everything on:

>>> from repro.obs import Observability, Tracer, MetricsRegistry
>>> obs = Observability(tracer=Tracer(), metrics=MetricsRegistry())
>>> # ContainmentChecker(obs=obs), ChaseEngine(..., obs=obs), ...
"""

from __future__ import annotations

from typing import Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, global_registry
from .provenance import ContainmentProvenance, build_provenance
from .tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Observability",
    "OBS_OFF",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "ContainmentProvenance",
    "build_provenance",
]


class Observability:
    """One handle bundling a tracer and a metrics registry.

    Either half may be absent: ``tracer=None`` means the no-op tracer,
    ``metrics=None`` means hot paths skip metric publication entirely.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        """Whether any pillar is live (used to gate stat-collection work)."""
        return self.tracer.enabled or self.metrics is not None

    @classmethod
    def on(cls) -> "Observability":
        """A fully live handle: fresh tracer + fresh registry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    def __repr__(self) -> str:
        return (
            f"Observability(tracer={'on' if self.tracer.enabled else 'off'}, "
            f"metrics={'on' if self.metrics is not None else 'off'})"
        )


#: The default, zero-cost handle: no-op tracer, no metrics sink.
OBS_OFF = Observability()
