"""Decision provenance: *why* a containment verdict came out as it did.

A :class:`~repro.containment.result.ContainmentResult` already carries
its certificate (the witness homomorphism and the chase prefix).  The
provenance payload built here turns that certificate into the empirical
story Theorem 12 tells:

* **witness levels** — which chase levels the witnessing homomorphism's
  atom images actually sit on.  Theorem 12 permits levels up to
  ``|q2|·2·|q1|``; Lemma 9/11 locality predicts real witnesses cluster
  far below the bound, and this field measures it per decision.
* **per-level fact counts** — the chase-growth profile of the examined
  prefix (Lemma 5's linear-growth shape for cyclic queries).
* **rule firings** — the ``(rule, level)`` sequence in application
  order, reconstructed from the chase instance's provenance records (node
  ids are allocated in firing order, so no extra bookkeeping is needed
  during the chase — provenance stays zero-cost until asked for).

The payload is JSON-friendly (:meth:`ContainmentProvenance.as_dict`) and
renders as text (:meth:`ContainmentProvenance.pretty`) for the
``flq explain`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ContainmentProvenance", "build_provenance"]

#: Longest rule-firing sequence rendered verbatim by :meth:`pretty`.
_PRETTY_FIRING_LIMIT = 24


@dataclass(frozen=True)
class ContainmentProvenance:
    """The explain payload of one containment decision."""

    q1: str
    q2: str
    contained: bool
    reason: str
    level_bound: Optional[int]
    #: Distinct chase levels touched by the witness's body-atom images
    #: (empty when there is no witness — negative or vacuous verdicts).
    witness_levels: tuple[int, ...]
    #: Conjunct count per level of the examined prefix.
    per_level_facts: dict[int, int]
    #: ``(rule label, level)`` per surviving conjunct, in firing order.
    rule_firings: tuple[tuple[str, int], ...]
    #: Total applications per rule (includes firings whose conjunct was
    #: later rewritten away by an EGD merge — hence >= the sequence).
    rule_counts: dict[str, int]

    @property
    def max_witness_level(self) -> Optional[int]:
        """Deepest level the witness needed, or ``None`` without one."""
        return max(self.witness_levels) if self.witness_levels else None

    def as_dict(self) -> dict:
        return {
            "q1": self.q1,
            "q2": self.q2,
            "contained": self.contained,
            "reason": self.reason,
            "level_bound": self.level_bound,
            "witness_levels": list(self.witness_levels),
            "per_level_facts": {str(k): v for k, v in sorted(self.per_level_facts.items())},
            "rule_firings": [list(f) for f in self.rule_firings],
            "rule_counts": dict(sorted(self.rule_counts.items())),
        }

    def pretty(self) -> str:
        rel = "⊆" if self.contained else "⊄"
        lines = [f"{self.q1} {rel} {self.q2}  [{self.reason}]"]
        if self.level_bound is not None:
            lines.append(f"  level bound: {self.level_bound}")
        if self.witness_levels:
            touched = ", ".join(str(l) for l in self.witness_levels)
            lines.append(
                f"  witness touches levels {{{touched}}} "
                f"(deepest {self.max_witness_level} of {self.level_bound} allowed)"
            )
        if self.per_level_facts:
            profile = "  ".join(
                f"L{lvl}:{n}" for lvl, n in sorted(self.per_level_facts.items())
            )
            lines.append(f"  facts per level: {profile}")
        if self.rule_firings:
            shown = self.rule_firings[:_PRETTY_FIRING_LIMIT]
            seq = " -> ".join(f"{rule}@L{lvl}" for rule, lvl in shown)
            if len(self.rule_firings) > len(shown):
                seq += f" -> ... ({len(self.rule_firings) - len(shown)} more)"
            lines.append(f"  firing sequence: {seq}")
        if self.rule_counts:
            counts = ", ".join(f"{r}:{n}" for r, n in sorted(self.rule_counts.items()))
            lines.append(f"  firings per rule: {counts}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def build_provenance(result) -> Optional[ContainmentProvenance]:
    """Build the explain payload from a finished containment result.

    Pure read-only reconstruction over the result's evidence — the chase
    is never re-run and nothing extra is recorded during it.  Returns
    ``None`` when the result carries no chase evidence (e.g. the classic
    constraint-free check).
    """
    chase_result = getattr(result, "chase_result", None)
    if chase_result is None:
        return None
    common = dict(
        q1=result.q1.name,
        q2=result.q2.name,
        contained=result.contained,
        reason=result.reason.value,
        level_bound=result.level_bound,
        rule_counts=dict(chase_result.rule_applications),
    )
    instance = chase_result.instance
    if instance is None:  # chase failure: no prefix to profile
        return ContainmentProvenance(
            witness_levels=(), per_level_facts={}, rule_firings=(), **common
        )
    bound = result.level_bound
    witness_levels: tuple[int, ...] = ()
    if result.witness is not None:
        witness_levels = tuple(
            sorted({instance.level_of(result.witness.apply_atom(a)) for a in result.q2.body})
        )
    return ContainmentProvenance(
        witness_levels=witness_levels,
        per_level_facts=instance.level_histogram(bound),
        rule_firings=instance.firing_sequence(),
        **common,
    )
