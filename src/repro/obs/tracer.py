"""Span tracing: where the time of a containment decision goes.

Theorem 12 reduces containment to a homomorphism search into a bounded
chase prefix, so the empirical story of this reproduction is a handful of
nested phases — chase extension segments, per-round rule firing, EGD
repair, store lookups, the witness search.  :class:`Tracer` records those
phases as a tree of :class:`Span` objects:

>>> tracer = Tracer()
>>> with tracer.span("containment.check", q1="q"):
...     with tracer.span("hom.search") as sp:
...         sp.add("nodes", 3)
>>> tracer.spans[0].children[0].counters["nodes"]
3

Spans carry free-form ``attributes`` (set once or via :meth:`Span.set`)
and additive ``counters`` (:meth:`Span.add`).  The finished tree exports
as a nested JSON document (:meth:`Tracer.to_json`) or a flat CSV with one
row per span (:meth:`Tracer.to_csv`); :meth:`Tracer.write` picks the
format from the file suffix.

**Zero cost when disabled.**  The default tracer everywhere in the code
base is the module singleton :data:`NOOP_TRACER`: its :meth:`span` hands
back one shared, stateless context manager, so an un-instrumented run
pays a method call per *coarse* phase and a single ``tracer.enabled``
attribute check per hot-loop trigger — nothing is allocated and nothing
is retained.  ``benchmarks/test_bench_obs_overhead.py`` guards that this
stays under 3% of the Theorem-12 decision time.

Tracers are not thread-safe; use one per thread of work.
"""

from __future__ import annotations

import csv
import io
import json
import time
from typing import Any, Iterator, Optional

__all__ = ["Span", "Tracer", "NoopTracer", "NOOP_TRACER"]


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Span:
    """One timed phase, with attributes, counters and child spans.

    Created through :meth:`Tracer.span` and used as a context manager;
    entering starts the clock and links the span into the tracer's tree,
    exiting stops it.  ``add``/``set`` may be called at any point while
    the span (or the whole trace) is being assembled.
    """

    __slots__ = ("name", "attributes", "counters", "children", "start_s", "end_s", "_tracer")

    def __init__(self, name: str, attributes: dict, tracer: "Tracer"):
        self.name = name
        self.attributes: dict[str, Any] = attributes
        self.counters: dict[str, int] = {}
        self.children: list["Span"] = []
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self._tracer = tracer

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        self._tracer._pop(self)
        return False

    # -- recording ------------------------------------------------------------

    def add(self, counter: str, n: int = 1) -> None:
        """Increment an additive counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    # -- reading --------------------------------------------------------------

    @property
    def duration_seconds(self) -> float:
        if self.start_s is None:
            return 0.0
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def as_dict(self) -> dict:
        """The nested JSON-ready form of this span subtree."""
        return {
            "name": self.name,
            "start_seconds": self._tracer.offset_of(self),
            "duration_seconds": self.duration_seconds,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
            "counters": dict(self.counters),
            "children": [c.as_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name}, {self.duration_seconds * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


#: Column order of the flat CSV export.
CSV_COLUMNS = ("depth", "name", "start_seconds", "duration_seconds", "counters", "attributes")


class Tracer:
    """Collects spans into a forest of trace trees.  See module docstring."""

    #: Real tracers record; the no-op tracer advertises ``False`` so hot
    #: loops can skip instrumentation with a single attribute check.
    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._epoch: Optional[float] = None

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, to be entered with ``with``."""
        return Span(name, attributes, self)

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.spans).append(span)
        self._stack.append(span)
        if self._epoch is None:
            self._epoch = time.perf_counter()

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - unbalanced exit guard
            while self._stack and self._stack.pop() is not span:
                pass

    def offset_of(self, span: Span) -> float:
        """Span start relative to the first span of the trace."""
        if span.start_s is None or self._epoch is None:
            return 0.0
        return span.start_s - self._epoch

    def reset(self) -> None:
        """Drop every recorded span (open spans keep recording into limbo)."""
        self.spans = []
        self._stack = []
        self._epoch = None

    # -- exports --------------------------------------------------------------

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` traversal of the whole forest."""
        for root in self.spans:
            yield from root.walk()

    def as_dicts(self) -> list[dict]:
        return [root.as_dict() for root in self.spans]

    def to_json(self, indent: int = 2) -> str:
        """The trace forest as a nested JSON array of span trees."""
        return json.dumps(self.as_dicts(), indent=indent)

    def to_csv(self) -> str:
        """One row per span: depth, name, timing, counters, attributes."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(CSV_COLUMNS)
        for depth, span in self.walk():
            writer.writerow(
                [
                    depth,
                    span.name,
                    f"{self.offset_of(span):.6f}",
                    f"{span.duration_seconds:.6f}",
                    ";".join(f"{k}={v}" for k, v in span.counters.items()),
                    ";".join(f"{k}={_jsonable(v)}" for k, v in span.attributes.items()),
                ]
            )
        return out.getvalue()

    def write(self, path) -> None:
        """Export to *path*: CSV when the suffix is ``.csv``, JSON otherwise."""
        text = self.to_csv() if str(path).endswith(".csv") else self.to_json()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    def __repr__(self) -> str:
        total = sum(1 for _ in self.walk())
        return f"Tracer({len(self.spans)} roots, {total} spans)"


class _NoopSpan:
    """The shared do-nothing span handed out by :class:`NoopTracer`."""

    __slots__ = ()
    name = "noop"
    attributes: dict = {}
    counters: dict = {}
    children: tuple = ()
    duration_seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, n: int = 1) -> None:
        pass

    def set(self, **attributes: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<noop-span>"


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: records nothing, allocates nothing.

    Every instrumented call site accepts this by default, so plain
    library use never pays for tracing beyond a method call per coarse
    phase (hot loops additionally guard on :attr:`enabled`).
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def current(self) -> None:
        return None

    def reset(self) -> None:
        pass

    def walk(self):
        return iter(())

    def as_dicts(self) -> list:
        return []

    def to_json(self, indent: int = 2) -> str:
        return "[]"

    def to_csv(self) -> str:
        out = io.StringIO()
        csv.writer(out).writerow(CSV_COLUMNS)
        return out.getvalue()

    def write(self, path) -> None:  # pragma: no cover - nothing to export
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv() if str(path).endswith(".csv") else "[]")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NoopTracer()"


#: Process-wide disabled tracer; the default everywhere.
NOOP_TRACER = NoopTracer()
