"""Tuple- and equality-generating dependencies.

The chase literature (Maier–Mendelzon–Sagiv, Johnson–Klug, Fagin et al.)
classifies constraints into

* **TGDs** — ``body -> exists Z . head`` where the head is a conjunction of
  atoms possibly using existential variables ``Z`` not bound by the body;
  a TGD with no existential variables is *full* (a plain Datalog rule).
* **EGDs** — ``body -> x = y`` equating two body variables.

All of Sigma_FL fits: rho_4 is an EGD, rho_5 an existential (non-full)
TGD, and the other ten are full TGDs.  The chase engine in
:mod:`repro.chase` is written against these generic classes, so arbitrary
dependency sets — not only Sigma_FL — can be chased (the paper's Section 5
"future work" direction; see :mod:`repro.extensions`).
"""

from __future__ import annotations

from typing import Iterable, Union

from ..core.atoms import Atom
from ..core.errors import QueryError
from ..core.terms import Variable

__all__ = ["TGD", "EGD", "Dependency"]


class TGD:
    """A tuple-generating dependency ``body -> exists Z . head``.

    ``head`` is restricted to a single atom — all of Sigma_FL (and most of
    the literature's normal forms) use single-atom heads, and the chase
    graph's arc labelling (Definition 3) is simplest in that form.  A
    multi-head TGD can always be split into single-head TGDs with the same
    chase behaviour up to null naming.
    """

    __slots__ = ("head", "body", "label", "existential_vars", "_hash")

    def __init__(self, head: Atom, body: Iterable[Atom], label: str = ""):
        body = tuple(body)
        if not body:
            raise QueryError("TGD body must be non-empty")
        body_vars: set[Variable] = set()
        for atom in body:
            body_vars |= atom.variables()
        existential = tuple(
            sorted(head.variables() - body_vars, key=lambda v: v.name)
        )
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "label", label or f"tgd_{head.predicate}")
        object.__setattr__(self, "existential_vars", existential)
        object.__setattr__(self, "_hash", hash((head, body)))

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("TGD is immutable")

    def __reduce__(self):
        return (TGD, (self.head, self.body, self.label))

    @property
    def is_full(self) -> bool:
        """True when there are no existential head variables (Datalog rule)."""
        return not self.existential_vars

    def frontier(self) -> set[Variable]:
        """Body variables shared with the head (the "exported" variables)."""
        return self.head.variables() - set(self.existential_vars)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TGD)
            and self._hash == other._hash
            and self.head == other.head
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return f"TGD({self!s})"

    def __str__(self) -> str:
        body_inner = ", ".join(str(a) for a in self.body)
        if self.existential_vars:
            exists = ", ".join(v.name for v in self.existential_vars)
            return f"[{self.label}] {body_inner} -> exists {exists} . {self.head}"
        return f"[{self.label}] {body_inner} -> {self.head}"


class EGD:
    """An equality-generating dependency ``body -> left = right``."""

    __slots__ = ("body", "left", "right", "label", "_hash")

    def __init__(
        self, body: Iterable[Atom], left: Variable, right: Variable, label: str = ""
    ):
        body = tuple(body)
        if not body:
            raise QueryError("EGD body must be non-empty")
        body_vars: set[Variable] = set()
        for atom in body:
            body_vars |= atom.variables()
        for var in (left, right):
            if not isinstance(var, Variable) or var not in body_vars:
                raise QueryError(
                    f"EGD head variable {var} must be a body variable"
                )
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "label", label or "egd")
        object.__setattr__(self, "_hash", hash((body, left, right)))

    def __setattr__(self, key, value):  # pragma: no cover - guarded mutation
        raise AttributeError("EGD is immutable")

    def __reduce__(self):
        return (EGD, (self.body, self.left, self.right, self.label))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EGD)
            and self._hash == other._hash
            and self.body == other.body
            and self.left == other.left
            and self.right == other.right
        )

    def __repr__(self) -> str:
        return f"EGD({self!s})"

    def __str__(self) -> str:
        body_inner = ", ".join(str(a) for a in self.body)
        return f"[{self.label}] {body_inner} -> {self.left} = {self.right}"


Dependency = Union[TGD, EGD]
