"""Sigma_FL — the twelve rules of the F-logic Lite encoding (paper, Section 2).

Each rule is built exactly as printed in the paper, using the same variable
names, and carries the paper's label ``rho_i``:

=====  =========================================================  ==========
rule   statement                                                  kind
=====  =========================================================  ==========
rho1   member(V,T)    :- type(O,A,T), data(O,A,V)                 full TGD
rho2   sub(C1,C2)     :- sub(C1,C3), sub(C3,C2)                   full TGD
rho3   member(O,C1)   :- member(O,C), sub(C,C1)                   full TGD
rho4   V = W          :- data(O,A,V), data(O,A,W), funct(A,O)     EGD
rho5   exists V. data(O,A,V) :- mandatory(A,O)                    exist. TGD
rho6   type(O,A,T)    :- member(O,C), type(C,A,T)                 full TGD
rho7   type(C,A,T)    :- sub(C,C1), type(C1,A,T)                  full TGD
rho8   type(C,A,T)    :- type(C,A,T1), sub(T1,T)                  full TGD
rho9   mandatory(A,C) :- sub(C,C1), mandatory(A,C1)               full TGD
rho10  mandatory(A,O) :- member(O,C), mandatory(A,C)              full TGD
rho11  funct(A,C)     :- sub(C,C1), funct(A,C1)                   full TGD
rho12  funct(A,O)     :- member(O,C), funct(A,C)                  full TGD
=====  =========================================================  ==========

The module exposes the individual rules (``RHO1`` ... ``RHO12``), the full
set ``SIGMA_FL``, the Datalog-only fragment ``SIGMA_FL_MINUS`` used for the
level-0 saturation of Section 4 (``Sigma_FL - {rho5}``; rho_4 is carried
separately since it is not a TGD), and :func:`sigma_fl_datalog_program`
which packages the ten full TGDs as a :class:`~repro.datalog.Program`.
"""

from __future__ import annotations

from ..core.atoms import data, funct, mandatory, member, sub, type_
from ..core.terms import Variable
from ..datalog.program import Program
from ..datalog.rule import Rule
from .dependency import EGD, TGD, Dependency

__all__ = [
    "RHO1",
    "RHO2",
    "RHO3",
    "RHO4",
    "RHO5",
    "RHO6",
    "RHO7",
    "RHO8",
    "RHO9",
    "RHO10",
    "RHO11",
    "RHO12",
    "SIGMA_FL",
    "SIGMA_FL_TGDS",
    "SIGMA_FL_FULL_TGDS",
    "SIGMA_FL_MINUS",
    "sigma_fl_datalog_program",
    "rule_by_label",
]

_O = Variable("O")
_A = Variable("A")
_V = Variable("V")
_W = Variable("W")
_T = Variable("T")
_T1 = Variable("T1")
_C = Variable("C")
_C1 = Variable("C1")
_C2 = Variable("C2")
_C3 = Variable("C3")

#: rho_1 — type correctness: a value of a typed attribute belongs to the type.
RHO1 = TGD(member(_V, _T), (type_(_O, _A, _T), data(_O, _A, _V)), label="rho1")

#: rho_2 — subclass transitivity.
RHO2 = TGD(sub(_C1, _C2), (sub(_C1, _C3), sub(_C3, _C2)), label="rho2")

#: rho_3 — membership propagates along the subclass relation.
RHO3 = TGD(member(_O, _C1), (member(_O, _C), sub(_C, _C1)), label="rho3")

#: rho_4 — functional attributes have at most one value (EGD).
RHO4 = EGD(
    (data(_O, _A, _V), data(_O, _A, _W), funct(_A, _O)),
    _V,
    _W,
    label="rho4",
)

#: rho_5 — mandatory attributes have at least one value (existential TGD).
RHO5 = TGD(data(_O, _A, _V), (mandatory(_A, _O),), label="rho5")

#: rho_6 — members inherit attribute types from their classes.
RHO6 = TGD(type_(_O, _A, _T), (member(_O, _C), type_(_C, _A, _T)), label="rho6")

#: rho_7 — subclasses inherit attribute types from superclasses.
RHO7 = TGD(type_(_C, _A, _T), (sub(_C, _C1), type_(_C1, _A, _T)), label="rho7")

#: rho_8 — supertyping: a supertype of an attribute's type is also a type.
RHO8 = TGD(type_(_C, _A, _T), (type_(_C, _A, _T1), sub(_T1, _T)), label="rho8")

#: rho_9 — mandatory attributes are inherited by subclasses.
RHO9 = TGD(mandatory(_A, _C), (sub(_C, _C1), mandatory(_A, _C1)), label="rho9")

#: rho_10 — mandatory attributes are inherited by class members.
RHO10 = TGD(mandatory(_A, _O), (member(_O, _C), mandatory(_A, _C)), label="rho10")

#: rho_11 — the functional property is inherited by subclasses.
RHO11 = TGD(funct(_A, _C), (sub(_C, _C1), funct(_A, _C1)), label="rho11")

#: rho_12 — the functional property is inherited by class members.
RHO12 = TGD(funct(_A, _O), (member(_O, _C), funct(_A, _C)), label="rho12")

#: The complete Sigma_FL, in the paper's numbering order.
SIGMA_FL: tuple[Dependency, ...] = (
    RHO1,
    RHO2,
    RHO3,
    RHO4,
    RHO5,
    RHO6,
    RHO7,
    RHO8,
    RHO9,
    RHO10,
    RHO11,
    RHO12,
)

#: All TGDs of Sigma_FL (everything but the EGD rho_4).
SIGMA_FL_TGDS: tuple[TGD, ...] = tuple(d for d in SIGMA_FL if isinstance(d, TGD))

#: The full (non-existential) TGDs — the Datalog fragment.
SIGMA_FL_FULL_TGDS: tuple[TGD, ...] = tuple(d for d in SIGMA_FL_TGDS if d.is_full)

#: ``Sigma_FL - {rho5}`` — Section 4's terminating "level 0" rule set.
#: (rho_4 is included; the chase engine dispatches on its EGD type.)
SIGMA_FL_MINUS: tuple[Dependency, ...] = tuple(d for d in SIGMA_FL if d is not RHO5)

_BY_LABEL = {d.label: d for d in SIGMA_FL}


def rule_by_label(label: str) -> Dependency:
    """Look up a Sigma_FL rule by its paper label, e.g. ``"rho7"``."""
    try:
        return _BY_LABEL[label]
    except KeyError:
        raise KeyError(
            f"unknown Sigma_FL rule {label!r}; expected one of {sorted(_BY_LABEL)}"
        ) from None


def sigma_fl_datalog_program() -> Program:
    """The ten full TGDs of Sigma_FL as a Datalog :class:`Program`.

    This program is what the semi-naive engine runs to saturate a chase
    instance (or an F-logic KB) with everything except functionality
    repair (rho_4) and value invention (rho_5).
    """
    return Program(
        Rule(tgd.head, tgd.body, label=tgd.label) for tgd in SIGMA_FL_FULL_TGDS
    )
