"""The dense mirror of a :class:`~repro.datalog.index.FactIndex`.

:class:`DenseIndex` owns a :class:`~repro.core.terms.TermArena` and a
set of :class:`~repro.kernel.columns.PredicateTable` relations mirroring
one fact index.  The mirror is cached on the source index itself (the
``FactIndex.dense`` slot) and kept fresh lazily: every dense search
calls :func:`dense_index_for`, which compares the source's monotone
``generation`` counter against the generation the mirror was last
synced at and only then walks the source.  Monotone growth — the normal
chase regime — appends rows incrementally; an EGD merge that retires
facts triggers a per-table rebuild (the arena survives, so symbol ids
stay stable for the lifetime of the index).

Level-bounded search (:class:`~repro.chase.instance.LevelPrefixView`,
the vehicle for Theorem-12 bound enforcement and anytime probes) is
served by :meth:`DenseIndex.level_masks`: a per-table bitset of the
rows whose chase level is within the view's bound, cached on the view
keyed by sync generation so repeated probes over a quiescent prefix pay
for the mask walk once.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..core.terms import TermArena
from ..datalog.index import FactIndex
from .columns import PredicateTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chase.instance import LevelPrefixView

__all__ = ["DenseIndex", "dense_index_for"]


class DenseIndex:
    """Columnar, int-interned mirror of one :class:`FactIndex`.

    Tables are keyed by (predicate, arity) — the source index tolerates
    mixed arities under one predicate name, and keeping them in separate
    tables is what lets every posting-list bitset assume fixed-width
    rows.
    """

    __slots__ = ("arena", "tables", "source", "synced_generation", "plan_cache")

    #: Compiled-plan cache entries kept per mirror before a wholesale
    #: clear; searches repeat a handful of conjunction shapes, so this
    #: is a backstop against pathological key churn, not an LRU.
    PLAN_CACHE_MAX = 256

    def __init__(self, source: FactIndex):
        self.arena = TermArena()
        self.tables: dict[tuple[str, int], PredicateTable] = {}
        self.source = source
        #: Source generation this mirror reflects (-1 = never synced).
        self.synced_generation = -1
        #: (atoms, seed vars, reorder) -> executable plan specialised
        #: against the current tables; owned by repro.kernel.search and
        #: invalidated wholesale whenever a sync changes anything (join
        #: orders and folded masks depend on counts and rows).
        self.plan_cache: dict = {}

    # -- synchronisation ----------------------------------------------------

    def sync(self, stats=None) -> bool:
        """Bring the mirror up to date with the source index.

        Returns True when any work was done.  When *stats* is given, the
        number of newly interned symbols is accumulated into
        ``stats.intern_symbols`` (surfaced as the
        ``kernel.intern_symbols`` counter by the containment checker).
        """
        generation = self.source.generation
        if generation == self.synced_generation:
            return False
        symbols_before = len(self.arena)
        intern_many = self.arena.intern_many
        live_keys = set()
        for predicate in self.source.predicates():
            # Bucket the live facts per arity before diffing each table.
            by_arity: dict[int, list] = {}
            for atom in self.source.facts(predicate, snapshot=True):
                by_arity.setdefault(atom.arity, []).append(atom)
            for arity, atoms in by_arity.items():
                key = (predicate, arity)
                live_keys.add(key)
                table = self.tables.get(key)
                if table is None:
                    table = self.tables[key] = PredicateTable(predicate, arity)
                row_of = table.row_of
                fresh = [a for a in atoms if a not in row_of]
                if table.n_rows + len(fresh) != len(atoms):
                    # Some previously mirrored row was retired (EGD merge
                    # or explicit discard): rebuild this table from the
                    # live bucket.  The arena is untouched, so ids are
                    # stable across the rebuild.
                    table = self.tables[key] = PredicateTable(predicate, arity)
                    fresh = atoms
                for atom in fresh:
                    table.append(intern_many(atom.args), atom)
        for key in list(self.tables):
            if key not in live_keys:
                del self.tables[key]
        self.synced_generation = generation
        self.plan_cache.clear()
        if stats is not None:
            stats.intern_symbols += len(self.arena) - symbols_before
        return True

    # -- lookups ------------------------------------------------------------

    def table(self, predicate: str, arity: int) -> Optional[PredicateTable]:
        """The table for (predicate, arity), or ``None`` when no facts."""
        return self.tables.get((predicate, arity))

    def level_masks(self, view: "LevelPrefixView") -> dict[tuple[str, int], int]:
        """Per-table bitsets of the rows visible under *view*'s level bound.

        The result is cached on the view (keyed by this mirror's sync
        generation), so the delta path — which re-enters the kernel once
        per anchor fact against the same prefix — walks the rows once.
        """
        cached = view._dense_masks
        if cached is not None and cached[0] is self and cached[1] == self.synced_generation:
            return cached[2]
        instance = view.instance
        bound = view.bound
        level_of = instance.level_of
        masks: dict[tuple[str, int], int] = {}
        for key, table in self.tables.items():
            mask = 0
            bit = 1
            for atom in table.atoms:
                if level_of(atom) <= bound:
                    mask |= bit
                bit <<= 1
            masks[key] = mask
        view._dense_masks = (self, self.synced_generation, masks)
        return masks

    def __repr__(self) -> str:
        rows = sum(t.n_rows for t in self.tables.values())
        return (
            f"DenseIndex({len(self.tables)} tables, {rows} rows, "
            f"{len(self.arena)} symbols)"
        )


def dense_index_for(index: FactIndex, stats=None) -> DenseIndex:
    """The (lazily created, lazily synced) dense mirror of *index*.

    The mirror lives in the index's ``dense`` slot, so all searches over
    the same index share one arena and one set of tables; an unchanged
    ``generation`` makes this call a two-attribute comparison.
    """
    dense = index.dense
    if dense is None:
        dense = index.dense = DenseIndex(index)
    dense.sync(stats)
    return dense
