"""Bitset helpers over plain Python ints.

The kernel represents every row set as one arbitrary-precision int:
bit ``r`` set means row ``r`` is in the set.  Intersection is ``&``,
union ``|``, and the executor's hot loop peels rows with the classic
``low = mask & -mask`` trick inline.  These helpers cover the non-hot
call sites (mask construction, diagnostics, tests) where readability
beats the last nanosecond.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["iter_bits", "popcount", "mask_of"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask* in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits (rows) in *mask*."""
    return mask.bit_count()


def mask_of(rows) -> int:
    """Build a bitset from an iterable of row numbers."""
    mask = 0
    for row in rows:
        mask |= 1 << row
    return mask
