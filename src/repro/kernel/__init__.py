"""repro.kernel — the dense int-interned homomorphism/chase kernel.

Every containment verdict bottoms out in homomorphism search over chase
instances (Theorem 12's bounded chase), and the baseline search is
pure-Python backtracking over interned-*term* objects with per-atom dict
lookups.  This package is the hardware-speed replacement (ROADMAP open
item 3):

* **Int interning** — a :class:`~repro.core.terms.TermArena` maps every
  constant, null and variable to a contiguous small int, so the inner
  loops compare machine integers instead of hashing term objects.
* **Columnar facts** — :class:`~repro.kernel.columns.PredicateTable`
  stores each predicate's tuples column-major as plain int lists.
* **Bitset posting lists** — per (predicate, position, value) the
  :class:`DenseIndex` keeps the set of matching rows as one Python int
  used as a bitset, so candidate sets intersect in O(words) instead of
  per-fact tuple scans.
* **Planned joins** — :mod:`repro.kernel.planner` promotes the
  most-constrained-first heuristic validated by experiment E13 into a
  reusable compile step: a conjunction becomes a :class:`JoinPlan` of
  slot-addressed operations executed by :mod:`repro.kernel.search`.

The kernel is wired behind a ``kernel=auto|dense|baseline`` switch in
:func:`repro.datalog.matching.match_conjunction`, the homomorphism entry
points and :class:`repro.containment.bounded.ContainmentChecker`, with a
transparent fallback to the baseline search whenever the dense path does
not apply (custom term filters, exotic index types).  Governor poll
sites are preserved exactly — the dense search ticks the governor once
per expanded node under the same ``hom.search`` site, so deadlines,
cancellation and fault injection behave identically under both kernels.

Solution sets are **identical** to the baseline search up to nothing at
all — the same substitutions are produced (property-tested in
``tests/kernel``); only the search's internal representation changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "DenseIndex",
    "JoinPlan",
    "KernelTelemetry",
    "PredicateTable",
    "KERNEL_CHOICES",
    "dense_index_for",
    "dense_supported",
    "kernel_match_conjunction",
    "order_atoms",
    "plan_conjunction",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columns import PredicateTable
    from .index import DenseIndex, dense_index_for
    from .planner import JoinPlan, order_atoms, plan_conjunction
    from .search import KERNEL_CHOICES, dense_supported, kernel_match_conjunction
    from .telemetry import KernelTelemetry

_LAZY = {
    "DenseIndex": "index",
    "dense_index_for": "index",
    "PredicateTable": "columns",
    "JoinPlan": "planner",
    "order_atoms": "planner",
    "plan_conjunction": "planner",
    "KERNEL_CHOICES": "search",
    "dense_supported": "search",
    "kernel_match_conjunction": "search",
    "KernelTelemetry": "telemetry",
}


def __getattr__(name: str):
    """Lazy re-exports (PEP 562), breaking the matching <-> kernel cycle.

    :mod:`repro.datalog.matching` dispatches into the kernel per call,
    and the kernel's search imports matching's :class:`SearchStats`; the
    lazy surface lets either side import first.
    """
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
