"""The dense planned-join executor.

:func:`kernel_match_conjunction` is the drop-in dense counterpart of
:func:`repro.datalog.matching.match_conjunction` for the supported index
types (:class:`~repro.datalog.index.FactIndex` and
:class:`~repro.chase.instance.LevelPrefixView`, no term filter).  It
produces the *same substitutions* as the baseline backtracking search —
the join order comes from the same E13-validated heuristic, node counts
match the baseline's "successful single-atom extension" semantics, and
the governor is ticked once per node under the caller's poll site — but
candidate generation runs on bitset posting lists over int-interned
columns instead of per-fact tuple matching.

Execution model: the compiled :class:`~repro.kernel.planner.JoinPlan`
is specialised against the dense mirror once per search (constants are
folded into each step's base mask here), then a recursive generator
walks the steps.  At each depth the remaining candidate rows are the
intersection of the step's base mask with the posting bitsets of its
bound-variable positions; rows are peeled with ``mask & -mask``, free
slots are filled from the columns, and intra-atom repeats are checked
by column equality.  No undo log exists — each slot has exactly one
writer step, so backtracking is simply returning from the generator.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.atoms import Atom
from ..core.substitution import Substitution
from ..datalog.index import FactIndex
from .index import DenseIndex, dense_index_for
from .planner import plan_conjunction

__all__ = ["KERNEL_CHOICES", "dense_supported", "kernel_match_conjunction"]

#: Valid values of the ``kernel=`` switch threaded through the matching
#: and homomorphism entry points: ``baseline`` forces the backtracking
#: search, ``dense`` asks for this executor, and ``auto`` uses it
#: whenever :func:`dense_supported` says it applies.
KERNEL_CHOICES = ("auto", "dense", "baseline")


def dense_supported(index, term_filter=None) -> bool:
    """Whether the dense executor can serve this (index, filter) pair.

    Term filters veto bindings mid-search with arbitrary Python
    predicates over *term objects* — incompatible with id-level
    pruning — and unknown index types have no columnar mirror; both
    cases make the dispatcher in :mod:`repro.datalog.matching` fall
    back to the baseline search transparently (counted in
    ``SearchStats.kernel_fallbacks``).
    """
    if term_filter is not None:
        return False
    if isinstance(index, FactIndex):
        return True
    from ..chase.instance import LevelPrefixView

    return isinstance(index, LevelPrefixView)


def _prepare(index, stats) -> tuple[DenseIndex, Optional[dict]]:
    """The dense mirror for *index*, plus level masks for prefix views."""
    if isinstance(index, FactIndex):
        return dense_index_for(index, stats), None
    from ..chase.instance import LevelPrefixView

    if isinstance(index, LevelPrefixView):
        dense = dense_index_for(index.instance.index, stats)
        return dense, dense.level_masks(index)
    raise TypeError(f"dense kernel does not support index type {type(index)!r}")


def kernel_match_conjunction(
    atoms: Sequence[Atom],
    index,
    base: Substitution = Substitution.EMPTY,
    *,
    reorder: bool = True,
    stats=None,
    governor=None,
    governor_site: str = "hom.search",
) -> Iterator[Substitution]:
    """Yield every substitution mapping all of *atoms* into *index*.

    Same contract as :func:`repro.datalog.matching.match_conjunction`
    (minus ``required_fact``/``term_filter``, which the dispatcher keeps
    on the baseline path): *base* is extended, ``reorder`` applies the
    E13 heuristic, *stats* accumulates node/backtrack/solution counts
    plus the kernel-specific ``kernel_nodes``/``bitset_ops`` counters,
    and *governor* is ticked once per expanded node at *governor_site*.
    """
    dense, masks = _prepare(index, stats)
    arena = dense.arena
    term_of = arena.term
    if stats is not None:
        stats.kernel_searches += 1

    # Compiled plans are cached on the mirror: join order, slot layout
    # and the per-step specialisation (table refs, constant positions
    # folded into the base mask) depend only on the conjunction shape,
    # the seed's domain and the mirror's contents — all stable until the
    # next sync, which clears the cache.
    cache_key = (tuple(atoms), frozenset(base.domain()), reorder)
    cached = dense.plan_cache.get(cache_key)
    if cached is None:
        plan = plan_conjunction(
            atoms,
            count_of=index.count,
            # Sorted for deterministic slot numbering (Variable hashes
            # are string-seeded, so raw set order varies per process).
            bound_vars=sorted(base.domain(), key=lambda v: v.name),
            reorder=reorder,
        )
        exec_steps = []
        for step in plan.steps:
            key = (step.predicate, step.arity)
            table = dense.tables.get(key)
            if table is None:
                exec_steps.append((0, key, (), (), ()))
                continue
            base_mask = table.all_rows
            postings = table.postings
            columns = table.columns
            for pos, term in step.consts:
                ident = arena.id_of(term)
                bits = postings[pos].get(ident, 0) if ident is not None else 0
                if stats is not None:
                    stats.bitset_ops += 1
                base_mask &= bits
                if not base_mask:
                    break
            exec_steps.append(
                (
                    base_mask,
                    key,
                    tuple((postings[pos], slot) for pos, slot in step.bounds),
                    tuple((columns[pos], slot) for pos, slot in step.frees),
                    tuple((columns[pos], slot) for pos, slot in step.sames),
                )
            )
        if len(dense.plan_cache) >= dense.PLAN_CACHE_MAX:
            dense.plan_cache.clear()
        dense.plan_cache[cache_key] = cached = (plan, tuple(exec_steps))
    plan, exec_steps = cached

    binding = [-1] * plan.n_slots
    slot_of = plan.slot_of
    intern = arena.intern
    for var, term in base.items():
        binding[slot_of[var]] = intern(term)

    decode = tuple(slot_of.items())
    depth_limit = len(exec_steps)
    from_trusted = Substitution.from_trusted

    def run(depth: int) -> Iterator[Substitution]:
        if depth == depth_limit:
            if stats is not None:
                stats.solutions += 1
            yield from_trusted({var: term_of(binding[slot]) for var, slot in decode})
            return
        mask, table_key, bounds, frees, sames = exec_steps[depth]
        if masks is not None:
            if stats is not None:
                stats.bitset_ops += 1
            mask &= masks.get(table_key, 0)
        for postings, slot in bounds:
            if stats is not None:
                stats.bitset_ops += 1
            mask &= postings.get(binding[slot], 0)
            if not mask:
                break
        while mask:
            low = mask & -mask
            mask ^= low
            row = low.bit_length() - 1
            for column, slot in frees:
                binding[slot] = column[row]
            matched = True
            for column, slot in sames:
                if column[row] != binding[slot]:
                    matched = False
                    break
            if not matched:
                continue
            if stats is not None:
                stats.nodes += 1
                stats.kernel_nodes += 1
            if governor is not None:
                governor.tick(governor_site)
            yield from run(depth + 1)
        if stats is not None:
            stats.backtracks += 1

    return run(0)
