"""Columnar fact storage for the dense kernel.

A :class:`PredicateTable` holds every fact of one (predicate, arity)
pair as parallel columns of arena ids, plus per-(position, value)
posting lists stored as Python-int bitsets: bit ``r`` of
``postings[pos][value_id]`` is set exactly when row ``r`` carries that
value at that position.  Candidate pruning is then a chain of ``&``
over those ints — O(rows/64) machine words per intersection — instead
of the baseline's per-fact tuple scans.
"""

from __future__ import annotations

from typing import Optional

from ..core.atoms import Atom

__all__ = ["PredicateTable"]


class PredicateTable:
    """One (predicate, arity) relation in columnar, int-interned form.

    Rows are append-only between rebuilds: the owning
    :class:`~repro.kernel.index.DenseIndex` appends new facts while the
    source index grows monotonically and rebuilds the whole table when
    an EGD merge retires rows (retirement is rare — only failing or
    merging chase steps discard facts).
    """

    __slots__ = (
        "predicate",
        "arity",
        "columns",
        "postings",
        "atoms",
        "row_of",
        "n_rows",
        "all_rows",
    )

    def __init__(self, predicate: str, arity: int):
        self.predicate = predicate
        self.arity = arity
        #: ``columns[pos][row]`` — arena id at position *pos* of row *row*.
        self.columns: list[list[int]] = [[] for _ in range(arity)]
        #: ``postings[pos][value_id]`` — bitset of rows with that value.
        self.postings: list[dict[int, int]] = [{} for _ in range(arity)]
        #: Row -> source atom, for decoding and for level-mask building.
        self.atoms: list[Atom] = []
        #: Source atom -> row, for incremental append detection.
        self.row_of: dict[Atom, int] = {}
        self.n_rows = 0
        #: Bitset with one bit per stored row (the unfiltered base mask).
        self.all_rows = 0

    def append(self, ids: list[int], atom: Atom) -> int:
        """Append one fact (already interned to *ids*); returns its row."""
        row = self.n_rows
        bit = 1 << row
        for pos, ident in enumerate(ids):
            self.columns[pos].append(ident)
            postings = self.postings[pos]
            postings[ident] = postings.get(ident, 0) | bit
        self.atoms.append(atom)
        self.row_of[atom] = row
        self.n_rows = row + 1
        self.all_rows |= bit
        return row

    def posting(self, pos: int, value_id: int) -> int:
        """The bitset of rows carrying *value_id* at *pos* (0 when none)."""
        return self.postings[pos].get(value_id, 0)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"PredicateTable({self.predicate}/{self.arity}, {self.n_rows} rows)"


def table_key(atom: Atom) -> tuple[str, int]:
    """The (predicate, arity) key identifying *atom*'s table."""
    return (atom.predicate, atom.arity)


def pattern_key(predicate: str, arity: int) -> tuple[str, int]:
    """Build a table key from already-split components."""
    return (predicate, arity)
