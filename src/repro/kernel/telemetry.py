"""Kernel telemetry accumulation.

:class:`KernelTelemetry` is the long-lived aggregate behind the
``kernel`` section of :meth:`repro.api.Engine.stats` (and therefore the
``flq serve`` ``stats`` op): the containment checker absorbs each
decide's :class:`~repro.datalog.matching.SearchStats` into one of these
so operators can see how much work the dense kernel is doing — and how
often it silently fell back to the baseline search.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelTelemetry"]


@dataclass
class KernelTelemetry:
    """Monotone counters aggregated across searches.

    ``kernel_nodes`` / ``bitset_ops`` / ``intern_symbols`` mirror the
    per-search fields of :class:`~repro.datalog.matching.SearchStats`;
    ``searches`` counts dense searches started and ``fallbacks`` counts
    dispatches that wanted the dense kernel but transparently ran the
    baseline instead (unsupported index type or term filter).
    """

    kernel_nodes: int = 0
    bitset_ops: int = 0
    intern_symbols: int = 0
    searches: int = 0
    fallbacks: int = 0

    def absorb(self, stats) -> None:
        """Fold one search's counters (duck-typed ``SearchStats``) in."""
        self.kernel_nodes += stats.kernel_nodes
        self.bitset_ops += stats.bitset_ops
        self.intern_symbols += stats.intern_symbols
        self.searches += stats.kernel_searches
        self.fallbacks += stats.kernel_fallbacks

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for ``Engine.stats()`` / the serve ``stats`` op."""
        return {
            "kernel_nodes": self.kernel_nodes,
            "bitset_ops": self.bitset_ops,
            "intern_symbols": self.intern_symbols,
            "searches": self.searches,
            "fallbacks": self.fallbacks,
        }
