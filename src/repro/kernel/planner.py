"""Join planning for the dense kernel.

Experiment E13 (design decision D4) validated the classic
most-constrained-first heuristic for ordering conjuncts; this module
promotes it from an experiment-local knob into the reusable compile
step shared by the kernel and the baseline search
(:func:`repro.datalog.matching.order_by_selectivity` delegates here).

:func:`plan_conjunction` turns an ordered conjunction into a
:class:`JoinPlan`: every variable gets a dense *slot*, and every atom
becomes a :class:`JoinStep` classifying its argument positions as

* ``consts`` — fixed terms, folded into the step's base bitset once per
  search;
* ``bounds`` — variables bound by an earlier step (or the seed), pruned
  by posting-list intersection at runtime;
* ``frees`` — first occurrences, bound from the matched row's columns;
* ``sames`` — repeats of a variable first seen *within the same atom*,
  checked by column equality against the freshly bound slot.

The executor in :mod:`repro.kernel.search` walks the steps in order,
so no trail/undo machinery is needed: each slot is written by exactly
one step, and only deeper steps ever read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..core.atoms import Atom
from ..core.terms import Term, Variable

__all__ = ["JoinPlan", "JoinStep", "order_atoms", "plan_conjunction"]


def _bound_positions(atom: Atom, bound_vars: set) -> int:
    """How many argument positions of *atom* are already determined."""
    return sum(
        1
        for term in atom.args
        if not isinstance(term, Variable) or term in bound_vars
    )


def order_atoms(
    atoms: Sequence[Atom],
    count_of: Callable[[str], int],
    initially_bound: Iterable[Variable] = frozenset(),
) -> list[Atom]:
    """Greedy join order: repeatedly pick the most constrained remaining atom.

    The score prefers atoms with (a) more bound positions under the
    variables already fixed by earlier picks and (b) smaller relations
    (*count_of* maps a predicate name to its fact count).  This is the
    most-constrained-first heuristic ablated by E13/D4 and is shared
    verbatim by the baseline and dense searches, so both explore the
    same join order and expand the same nodes.
    """
    remaining = list(atoms)
    bound: set[Variable] = set(initially_bound)
    ordered: list[Atom] = []
    while remaining:
        def score(atom: Atom) -> tuple:
            return (
                -_bound_positions(atom, bound),
                count_of(atom.predicate),
            )

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


@dataclass(frozen=True)
class JoinStep:
    """One atom of a :class:`JoinPlan`, with positions classified.

    Position lists hold ``(position, payload)`` pairs: a source term for
    ``consts`` and a slot number for the three variable kinds.
    """

    predicate: str
    arity: int
    consts: tuple[tuple[int, Term], ...]
    bounds: tuple[tuple[int, int], ...]
    frees: tuple[tuple[int, int], ...]
    sames: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class JoinPlan:
    """A compiled conjunction: ordered steps plus the slot assignment.

    ``slot_of`` maps every variable (seed variables first, then first
    occurrences in step order) to its dense slot; ``n_slots`` is the
    binding-array length the executor must allocate.
    """

    ordered: tuple[Atom, ...]
    steps: tuple[JoinStep, ...]
    slot_of: dict[Variable, int]
    n_slots: int


def plan_conjunction(
    atoms: Sequence[Atom],
    *,
    count_of: Optional[Callable[[str], int]] = None,
    bound_vars: Iterable[Variable] = (),
    reorder: bool = True,
) -> JoinPlan:
    """Compile *atoms* into a :class:`JoinPlan`.

    With ``reorder`` (and a *count_of* selectivity oracle) the atoms are
    first ordered by :func:`order_atoms`; otherwise the given
    left-to-right order is kept — mirroring the ``reorder`` switch of
    the baseline search so the D4 ablation applies to both kernels.
    Seed variables (*bound_vars*) receive the lowest slots; the executor
    fills them from the seed substitution before the first step runs.
    """
    bound_list = list(bound_vars)
    if reorder and count_of is not None:
        ordered = order_atoms(atoms, count_of, set(bound_list))
    else:
        ordered = list(atoms)

    slot_of: dict[Variable, int] = {}
    for var in bound_list:
        if var not in slot_of:
            slot_of[var] = len(slot_of)

    steps: list[JoinStep] = []
    for atom in ordered:
        consts: list[tuple[int, Term]] = []
        bounds: list[tuple[int, int]] = []
        frees: list[tuple[int, int]] = []
        sames: list[tuple[int, int]] = []
        fresh_here: set[Variable] = set()
        for pos, term in enumerate(atom.args):
            if isinstance(term, Variable):
                slot = slot_of.get(term)
                if slot is None:
                    slot = slot_of[term] = len(slot_of)
                    frees.append((pos, slot))
                    fresh_here.add(term)
                elif term in fresh_here:
                    sames.append((pos, slot))
                else:
                    bounds.append((pos, slot))
            else:
                consts.append((pos, term))
        steps.append(
            JoinStep(
                predicate=atom.predicate,
                arity=atom.arity,
                consts=tuple(consts),
                bounds=tuple(bounds),
                frees=tuple(frees),
                sames=tuple(sames),
            )
        )
    return JoinPlan(
        ordered=tuple(ordered),
        steps=tuple(steps),
        slot_of=slot_of,
        n_slots=len(slot_of),
    )
