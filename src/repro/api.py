"""repro.api — the stable public facade of the containment engine.

One import, one object::

    from repro.api import Engine

    with Engine() as engine:
        result = engine.check(q1, q2)

:class:`Engine` consolidates the entry points that used to be scattered
across :mod:`repro.containment`, :mod:`repro.chase`,
:mod:`repro.governance` and :mod:`repro.obs`: configuration (constraint
set, budget envelope, store, observability, pool/queue sizing) is given
**once** at construction, and every method call flows through the same
long-lived :class:`~repro.service.engine.ContainmentService` — shared
chase store, warm worker pool, admission control and request coalescing
included.

The one-shot helpers (:func:`repro.is_contained`,
``ContainmentChecker``) remain available for scripts, but anything that
issues more than a handful of checks should hold an :class:`Engine`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .chase.engine import ChaseResult
from .containment.bounded import ContainmentChecker
from .containment.result import ContainmentResult
from .containment.store import ChaseStore
from .core.atoms import Atom
from .core.query import ConjunctiveQuery
from .dependencies import SIGMA_FL
from .dependencies.dependency import Dependency
from .governance import CancelScope, ExecutionBudget
from .obs import Observability
from .service.engine import ContainmentService
from .store import StoreConfig, resolve_store_config

__all__ = ["Engine", "StoreConfig"]


class Engine:
    """The facade: a configured, reusable containment engine.

    Construction wires the whole stack; the instance is thread-safe and
    intended to live as long as the application (use it as a context
    manager, or call :meth:`close` yourself).

    Parameters
    ----------
    dependencies:
        Constraint set Sigma; defaults to the paper's Sigma_FL.
    anytime:
        Default decision schedule — the interleaved anytime procedure
        (``True``) or the monolithic chase-then-search (``False``).
        Overridable per call.
    reorder_join, max_steps, store:
        Chase configuration, forwarded to the underlying checker/store.
    budget:
        Service-wide :class:`~repro.governance.ExecutionBudget` envelope;
        per-call budgets merge into it and can only tighten it.
    max_active, max_pending:
        Admission limits: concurrent executing requests / waiting
        requests before explicit rejection.
    max_workers:
        Warm process-pool size for :meth:`check_all` batches.
    store_config:
        The engine's whole storage stack in one
        :class:`~repro.store.StoreConfig`: chase-store LRU capacity, an
        optional persistent snapshot ``path`` (+ write-back
        ``snapshot_policy`` / ``read_only`` attach), and the
        decided-verdict ``result_cache`` size.  With a ``path``, chase
        work survives restarts, parallel ``check_all`` workers attach to
        the database zero-pickle, and the serve layer's shards share one
        warm store directory.  Ignored for the chase tier when an
        explicit *store* is given.
    result_cache, store_capacity:
        **Deprecated** — the scattered pre-``StoreConfig`` knobs.  Still
        honoured (each overrides the matching config field) with a
        ``DeprecationWarning``; migrate per ``docs/api.md``.
    obs:
        :class:`~repro.obs.Observability` sink for spans and metrics of
        every layer (store, pool, queue, service).
    kernel:
        Homomorphism-search kernel: ``"auto"`` (default) runs witness
        searches on the dense bitset kernel (:mod:`repro.kernel`) with
        transparent fallback, ``"baseline"`` forces the classic
        backtracking search, ``"dense"`` insists on the dense path.
        Verdicts are identical under every setting.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency] = SIGMA_FL,
        *,
        anytime: bool = True,
        reorder_join: bool = True,
        max_steps: Optional[int] = 200_000,
        store: Optional[ChaseStore] = None,
        budget: Optional[ExecutionBudget] = None,
        max_active: int = 8,
        max_pending: int = 64,
        max_workers: Optional[int] = None,
        store_config: Optional[StoreConfig] = None,
        result_cache: Optional[int] = None,
        store_capacity: Optional[int] = None,
        obs: Optional[Observability] = None,
        kernel: str = "auto",
    ):
        # Resolve the legacy kwargs here so the DeprecationWarning points
        # at the Engine(...) call site, then hand the service one config.
        config = resolve_store_config(
            store_config,
            store_capacity=store_capacity,
            result_cache=result_cache,
            owner="Engine",
        )
        self._service = ContainmentService(
            dependencies,
            reorder_join=reorder_join,
            max_steps=max_steps,
            store=store,
            anytime=anytime,
            budget=budget,
            max_active=max_active,
            max_pending=max_pending,
            max_workers=max_workers,
            store_config=config,
            obs=obs,
            kernel=kernel,
        )

    # -- the API -------------------------------------------------------------

    def check(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        explain: bool = False,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
        scope: Optional[CancelScope] = None,
    ) -> ContainmentResult:
        """Decide ``q1 ⊆_Sigma q2``.

        Returns a three-valued
        :class:`~repro.containment.result.ContainmentResult` (TRUE /
        FALSE / UNKNOWN-under-budget).  Identical concurrent calls are
        coalesced onto one computation; chase work is cached in the
        shared store for every later call with the same ``q1``.  Raises
        :class:`~repro.core.errors.AdmissionRejected` under overload or
        during shutdown.
        """
        return self._service.check(
            q1,
            q2,
            level_bound=level_bound,
            schema=schema,
            explain=explain,
            anytime=anytime,
            budget=budget,
            scope=scope,
        )

    def check_all(
        self,
        pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
        parallel: bool = True,
    ) -> list[ContainmentResult]:
        """Decide a batch of pairs, fanning cold chase groups out to the
        engine's warm worker pool; results come back in input order.
        """
        return self._service.check_all(
            pairs,
            level_bound=level_bound,
            schema=schema,
            anytime=anytime,
            budget=budget,
            parallel=parallel,
        )

    def chase(self, query: ConjunctiveQuery, level_bound: int) -> ChaseResult:
        """Chase *query*'s canonical database to *level_bound* levels.

        Served from (and cached in) the engine's shared store: a prefix
        computed at a larger bound is reused, a smaller one is extended
        in place.
        """
        return self._service.chase_prefix(query, level_bound)

    def explain(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        *,
        level_bound: Optional[int] = None,
        schema: Optional[Iterable[Atom]] = None,
        anytime: Optional[bool] = None,
        budget: Optional[ExecutionBudget] = None,
    ) -> ContainmentResult:
        """:meth:`check` with decision provenance attached.

        Shorthand for ``check(..., explain=True)``; see
        :meth:`ContainmentResult.explain_data
        <repro.containment.result.ContainmentResult.explain_data>`.
        """
        return self._service.check(
            q1,
            q2,
            level_bound=level_bound,
            schema=schema,
            explain=True,
            anytime=anytime,
            budget=budget,
        )

    # -- lifecycle & introspection -------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting new work; wait for in-flight requests.

        New requests are rejected with
        :class:`~repro.core.errors.AdmissionRejected` (reason
        ``"draining"``) from the moment this is called; requests already
        admitted run to completion.  The warm pool stays up until
        :meth:`close`, so a drained engine still answers ``stats()`` —
        this is the per-shard half of the serve layer's graceful
        ``drain`` op.  Returns ``True`` when everything in flight
        finished within *timeout* seconds.
        """
        return self._service.drain(timeout=timeout)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain in-flight requests, then join the warm pool's workers.

        Returns ``True`` when everything drained within *timeout*
        seconds (``None`` = wait forever).  After ``close`` the engine
        rejects new requests.  Idempotent.
        """
        return self._service.close(timeout=timeout)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def service(self) -> ContainmentService:
        """The underlying service (pool, queue, coalescing internals)."""
        return self._service

    @property
    def checker(self) -> ContainmentChecker:
        """The underlying checker — an escape hatch for advanced callers."""
        return self._service.checker

    @property
    def store(self) -> ChaseStore:
        """The shared chase store."""
        return self._service.store

    @property
    def store_config(self) -> StoreConfig:
        """The resolved storage configuration this engine runs under."""
        return self._service.store_config

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the worker pool."""
        return self._service.closed

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or :meth:`close`) stopped admissions."""
        return self._service.draining

    def stats(self) -> dict[str, dict[str, int]]:
        """Counters of every layer: service, queue, pool, store, kernel."""
        return self._service.stats_dict()

    def __repr__(self) -> str:
        return f"Engine({self._service!r})"
