"""Homomorphism search between queries, instances and chase prefixes."""

from .incremental import all_homomorphisms_delta, find_homomorphism_delta
from .search import (
    SearchStats,
    all_homomorphisms,
    all_query_homomorphisms,
    find_homomorphism,
    find_query_homomorphism,
    head_seed,
)

__all__ = [
    "head_seed",
    "all_homomorphisms",
    "find_homomorphism",
    "all_homomorphisms_delta",
    "find_homomorphism_delta",
    "all_query_homomorphisms",
    "find_query_homomorphism",
    "SearchStats",
]
