"""Delta-incremental homomorphism search.

The anytime containment pipeline consumes the chase level by level: after
each extension, only embeddings of ``body(q2)`` that use at least one
*newly added* conjunct need to be explored — every embedding lying wholly
in the older prefix was already covered by an earlier search (the base
search over the initial segment plus the delta searches in between).

:func:`find_homomorphism_delta` is the drop-in sibling of
:func:`repro.homomorphism.search.find_homomorphism` with that restriction:
the head condition seeds the substitution exactly as in the full search,
and the join order of the non-delta conjuncts is the shared
most-constrained-first heuristic of :mod:`repro.datalog.matching` — the
delta restriction only changes *which* embeddings are enumerated, never
how an individual embedding is completed.

Soundness of consuming the chase this way rests on two monotonicity
facts (see ``docs/paper_mapping.md``, "Anytime early termination"):

* a witness into the level-``k`` prefix remains a witness for the full
  Theorem-12 prefix — later chase steps only add conjuncts, and later EGD
  merges rewrite both the witness image and the chased head through the
  same substitution, preserving Definition 1 and the head condition;
* conversely a witness into the full prefix whose image has maximum level
  ``k`` is found no later than the level-``k`` delta search, because each
  of its conjuncts entered the instance (or reached its final, rewritten
  form) in exactly one delta.

Hence the interleaved schedule decides exactly what the monolithic search
decides — positives just exit at the witness level.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Term
from ..datalog.matching import SearchStats, match_conjunction_delta
from .search import head_seed

__all__ = ["all_homomorphisms_delta", "find_homomorphism_delta"]


def all_homomorphisms_delta(
    query: ConjunctiveQuery,
    index,
    delta_facts: Sequence[Atom],
    head_target: Optional[Sequence[Term]] = None,
    *,
    reorder: bool = True,
    stats: Optional[SearchStats] = None,
    governor=None,
    kernel: Optional[str] = None,
) -> Iterator[Substitution]:
    """Every homomorphism from *query* into *index* touching *delta_facts*.

    *index* is anything implementing the :class:`~repro.datalog.index
    .FactIndex` read protocol (the live chase index or a
    :class:`~repro.chase.instance.LevelPrefixView`).  With *head_target*
    given, only homomorphisms sending the query head to exactly that tuple
    are produced — the Theorem-4/12 side condition.
    """
    if head_target is not None:
        seed = head_seed(query.head, head_target)
        if seed is None:
            return
    else:
        seed = Substitution.EMPTY
    yield from match_conjunction_delta(
        query.body, index, delta_facts, seed, reorder=reorder, stats=stats,
        governor=governor, kernel=kernel,
    )


def find_homomorphism_delta(
    query: ConjunctiveQuery,
    index,
    delta_facts: Sequence[Atom],
    head_target: Optional[Sequence[Term]] = None,
    *,
    reorder: bool = True,
    stats: Optional[SearchStats] = None,
    governor=None,
    kernel: Optional[str] = None,
) -> Optional[Substitution]:
    """The first delta-touching homomorphism found, or ``None``.

    A *governor*, when given, is polled (amortised) per expanded node so
    the delta search honours deadlines and cancellation mid-enumeration.
    """
    for sigma in all_homomorphisms_delta(
        query, index, delta_facts, head_target, reorder=reorder, stats=stats,
        governor=governor, kernel=kernel,
    ):
        return sigma
    return None
