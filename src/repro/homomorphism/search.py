"""Homomorphism search (Definition 1).

A homomorphism from a query ``q`` to a database ``B`` maps every constant
of ``q`` to itself and every variable of ``q`` to a value of ``B`` such
that each body conjunct lands on a tuple of ``B``.  For containment
(Theorems 4 and 12) we additionally require the head of ``q2`` to land on
the head of the chased ``q1``.

The search is plain backtracking over the indexed instance, with the
most-constrained-first ordering shared with the Datalog engine; the head
condition is enforced *first* by seeding the substitution, which prunes
the search drastically in the common case.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.errors import QueryError
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Term, Variable
from ..datalog.index import FactIndex
from ..datalog.matching import SearchStats, match_conjunction

__all__ = [
    "head_seed",
    "all_homomorphisms",
    "find_homomorphism",
    "find_query_homomorphism",
    "all_query_homomorphisms",
    "SearchStats",
]


def head_seed(
    head: Sequence[Term], head_target: Sequence[Term]
) -> Optional[Substitution]:
    """The substitution forced by mapping *head* onto *head_target*.

    Returns ``None`` when the mapping is impossible: a head constant that
    differs from its target, or one head variable required to equal two
    different targets.
    """
    if len(head) != len(head_target):
        return None
    bindings: dict[Variable, Term] = {}
    for term, target in zip(head, head_target):
        if isinstance(term, Variable):
            bound = bindings.get(term)
            if bound is None:
                bindings[term] = target
            elif bound != target:
                return None
        elif term != target:
            return None
    return Substitution(bindings)


def all_homomorphisms(
    query: ConjunctiveQuery,
    index: FactIndex,
    head_target: Optional[Sequence[Term]] = None,
    *,
    reorder: bool = True,
    stats: Optional[SearchStats] = None,
    governor=None,
    kernel: Optional[str] = None,
) -> Iterator[Substitution]:
    """Every homomorphism from *query* into *index*.

    With *head_target* given, only homomorphisms sending the query head to
    exactly that tuple are produced (the Theorem-4/12 side condition).
    Without it, the generator enumerates the query's answers over *index*
    viewed as a database.  *stats* accumulates node/backtrack counts of
    the backtracking search (see :class:`SearchStats`).  *kernel* selects
    the search implementation (``auto``/``dense``/``baseline``, see
    :mod:`repro.kernel`); the default is the baseline backtracking
    search, which keeps node counts and traces byte-stable for callers
    that pin them.
    """
    if head_target is not None:
        seed = head_seed(query.head, head_target)
        if seed is None:
            return
    else:
        seed = Substitution.EMPTY
    yield from match_conjunction(
        query.body, index, seed, reorder=reorder, stats=stats, governor=governor,
        kernel=kernel,
    )


def find_homomorphism(
    query: ConjunctiveQuery,
    index: FactIndex,
    head_target: Optional[Sequence[Term]] = None,
    *,
    reorder: bool = True,
    stats: Optional[SearchStats] = None,
    governor=None,
    kernel: Optional[str] = None,
) -> Optional[Substitution]:
    """The first homomorphism found, or ``None``.

    A *governor* makes the backtracking search interruptible: it is
    polled (amortised) per expanded node, so even a search with no
    matching embedding respects deadlines and cancellation.
    """
    for sigma in all_homomorphisms(
        query, index, head_target, reorder=reorder, stats=stats, governor=governor,
        kernel=kernel,
    ):
        return sigma
    return None


def _frozen_body_index(query: ConjunctiveQuery) -> FactIndex:
    """The canonical database of a query: its body atoms, variables as values."""
    return FactIndex(query.canonical_atoms())


def all_query_homomorphisms(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    *,
    stats: Optional[SearchStats] = None,
) -> Iterator[Substitution]:
    """Query-to-query homomorphisms: body(source) -> body(target), head -> head.

    This is the Chandra–Merlin containment witness ``target ⊆ source``
    over constraint-free databases.  Queries must have equal arity.
    """
    if source.arity != target.arity:
        raise QueryError(
            f"arity mismatch: {source.name}/{source.arity} vs {target.name}/{target.arity}"
        )
    index = _frozen_body_index(target)
    yield from all_homomorphisms(source, index, head_target=target.head, stats=stats)


def find_query_homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    *,
    stats: Optional[SearchStats] = None,
) -> Optional[Substitution]:
    """First query-to-query homomorphism, or ``None``."""
    for sigma in all_query_homomorphisms(source, target, stats=stats):
        return sigma
    return None
