"""Legacy installer shim.

``pip install -e .`` uses PEP 660 and needs the ``wheel`` package; on
fully offline machines without it, ``python setup.py develop`` installs
an equivalent editable checkout with nothing but setuptools.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
