#!/usr/bin/env python3
"""Docstring-coverage gate (stdlib-only ``interrogate`` equivalent).

Walks a source tree with :mod:`ast`, counts public definitions (modules,
classes, functions and methods) that carry a docstring, and fails when
coverage drops below a threshold.  The CI step pins the threshold at the
repository's current baseline so coverage can only ratchet up.

Counting rules, chosen to match ``interrogate``'s defaults closely
enough that swapping the real tool in later would not move the number
much:

* every module, class, and function/method definition is one unit;
* names with a leading underscore are *private* and skipped, except
  ``__init__`` and other dunders are skipped too — their contract is the
  class docstring's job;
* ``@overload``-decorated stubs and bodies that are a bare ``...`` are
  skipped (nothing to document beyond the implementation's docstring);
* nested functions (closures) are skipped — they are implementation
  detail of their enclosing function.

Usage::

    python tools/check_docstrings.py src/repro --fail-under 95
    python tools/check_docstrings.py src/repro --list-missing
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

__all__ = ["collect_file", "collect_tree", "main"]


def _is_public(name: str) -> bool:
    """Whether a definition name counts toward coverage."""
    return not name.startswith("_")


def _is_overload(node: ast.AST) -> bool:
    """Whether a function definition is an ``@overload`` stub."""
    for deco in getattr(node, "decorator_list", []):
        target = deco
        if isinstance(target, ast.Attribute):
            target = target.attr
        elif isinstance(target, ast.Name):
            target = target.id
        if target == "overload":
            return True
    return False


def _is_stub_body(node: ast.AST) -> bool:
    """Whether a function body is a bare ``...`` / ``pass`` placeholder."""
    body = getattr(node, "body", [])
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, ast.Constant
    ) and stmt.value.value is Ellipsis


def collect_file(path: Path) -> tuple[int, int, list[str]]:
    """Count (documented, total) public definitions in one file.

    Returns ``(documented, total, missing)`` where *missing* lists
    ``name:line`` labels for undocumented definitions.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented = 0
    total = 0
    missing: list[str] = []

    def visit(node: ast.AST, qualname: str, inside_function: bool) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                name = child.name
                if _is_public(name):
                    total += 1
                    if ast.get_docstring(child) is not None:
                        documented += 1
                    else:
                        missing.append(f"{qualname}{name}:{child.lineno}")
                visit(child, f"{qualname}{name}.", inside_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                countable = (
                    _is_public(name)
                    and not inside_function
                    and not _is_overload(child)
                    and not _is_stub_body(child)
                )
                if countable:
                    total += 1
                    if ast.get_docstring(child) is not None:
                        documented += 1
                    else:
                        missing.append(f"{qualname}{name}:{child.lineno}")
                visit(child, f"{qualname}{name}.", True)
            else:
                visit(child, qualname, inside_function)

    total += 1  # the module itself
    if ast.get_docstring(tree) is not None:
        documented += 1
    else:
        missing.append(f"<module>:{1}")
    visit(tree, "", False)
    return documented, total, missing


def collect_tree(root: Path) -> tuple[int, int, dict[str, list[str]]]:
    """Aggregate :func:`collect_file` over every ``.py`` file under *root*."""
    documented = 0
    total = 0
    missing: dict[str, list[str]] = {}
    for path in sorted(root.rglob("*.py")):
        d, t, m = collect_file(path)
        documented += d
        total += t
        if m:
            missing[str(path)] = m
    return documented, total, missing


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", type=Path, help="source tree to scan")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 when coverage is below this percentage",
    )
    parser.add_argument(
        "--list-missing",
        action="store_true",
        help="print every undocumented definition",
    )
    args = parser.parse_args(argv)
    if not args.root.exists():
        print(f"error: no such path: {args.root}", file=sys.stderr)
        return 2
    documented, total, missing = collect_tree(args.root)
    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public definitions "
        f"documented ({coverage:.1f}%)"
    )
    if args.list_missing:
        for path, labels in missing.items():
            for label in labels:
                print(f"  {path}: {label}")
    if args.fail_under is not None and coverage < args.fail_under:
        print(
            f"FAIL: coverage {coverage:.1f}% is below the "
            f"--fail-under threshold of {args.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
