"""Unit tests for the indexed fact store."""

import pytest

from repro.core.atoms import Atom, data, member, sub
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Variable
from repro.datalog.index import FactIndex

X = Variable("X")
j, s, p = Constant("john"), Constant("student"), Constant("person")


class TestAddDiscard:
    def test_add_new_returns_true(self):
        index = FactIndex()
        assert index.add(member(j, s)) is True
        assert len(index) == 1

    def test_add_duplicate_returns_false(self):
        index = FactIndex([member(j, s)])
        assert index.add(member(j, s)) is False
        assert len(index) == 1

    def test_add_all_counts_new(self):
        index = FactIndex([member(j, s)])
        added = index.add_all([member(j, s), sub(s, p)])
        assert added == 1
        assert len(index) == 2

    def test_discard_present(self):
        index = FactIndex([member(j, s)])
        assert index.discard(member(j, s)) is True
        assert len(index) == 0
        assert member(j, s) not in index

    def test_discard_absent(self):
        index = FactIndex()
        assert index.discard(member(j, s)) is False

    def test_discard_then_candidates_empty(self):
        index = FactIndex([member(j, s)])
        index.discard(member(j, s))
        assert list(index.candidates(member(j, X))) == []


class TestLookup:
    def test_contains_and_iter(self):
        atoms = {member(j, s), sub(s, p)}
        index = FactIndex(atoms)
        assert set(index) == atoms
        assert member(j, s) in index
        assert member(j, p) not in index

    def test_facts_by_predicate(self):
        index = FactIndex([member(j, s), sub(s, p)])
        assert index.facts("member") == frozenset({member(j, s)})
        assert index.facts("nothing") == frozenset()

    def test_count_and_predicates(self):
        index = FactIndex([member(j, s), member(j, p)])
        assert index.count("member") == 2
        assert index.predicates() == {"member"}

    def test_bool(self):
        assert not FactIndex()
        assert FactIndex([member(j, s)])


class TestCandidates:
    def test_bound_position_narrows(self):
        index = FactIndex([member(j, s), member(j, p), member(Constant("m"), s)])
        got = set(index.candidates(member(j, X)))
        assert got == {member(j, s), member(j, p)}

    def test_unbound_pattern_returns_whole_relation(self):
        index = FactIndex([member(j, s), member(j, p)])
        got = set(index.candidates(member(Variable("A"), Variable("B"))))
        assert len(got) == 2

    def test_binding_from_substitution_used(self):
        index = FactIndex([member(j, s), member(Constant("m"), s)])
        sigma = Substitution({X: j})
        got = set(index.candidates(member(X, Variable("C")), sigma))
        assert got == {member(j, s)}

    def test_no_matching_bound_value_returns_empty(self):
        index = FactIndex([member(j, s)])
        assert list(index.candidates(member(Constant("zoe"), X))) == []

    def test_most_selective_position_chosen(self):
        # j appears in many facts at position 0; s only once at position 1.
        atoms = [member(j, Constant(f"c{i}")) for i in range(10)] + [member(j, s)]
        index = FactIndex(atoms)
        got = list(index.candidates(member(j, s)))
        assert got == [member(j, s)]


class TestFactsView:
    """facts() returns a cheap live view, not a per-call frozenset copy."""

    def test_view_equals_frozenset_both_ways(self):
        index = FactIndex([member(j, s), member(j, p)])
        view = index.facts("member")
        assert view == frozenset({member(j, s), member(j, p)})
        assert frozenset({member(j, s), member(j, p)}) == view

    def test_view_is_live(self):
        index = FactIndex([member(j, s)])
        view = index.facts("member")
        index.add(member(j, p))
        assert len(view) == 2 and member(j, p) in view

    def test_view_supports_set_algebra(self):
        index = FactIndex([member(j, s), sub(s, p)])
        view = index.facts("member")
        assert view | {sub(s, p)} == index.to_frozenset()
        assert view & {member(j, s)} == {member(j, s)}

    def test_empty_predicate_view_is_falsy(self):
        view = FactIndex().facts("member")
        assert not view
        assert len(view) == 0 and list(view) == []

    def test_view_is_not_mutable(self):
        view = FactIndex([member(j, s)]).facts("member")
        assert not hasattr(view, "add")
        with pytest.raises(AttributeError):
            view.anything = 1


class TestCandidatesSnapshot:
    """Regression: candidates() must survive mutation during iteration.

    The anytime pipeline interleaves chase steps with homomorphism
    searches over the same index; a lazily-consumed candidate stream must
    not blow up when the chase discards or adds facts mid-iteration.
    """

    def test_mutation_during_bound_scan(self):
        index = FactIndex([member(j, s), member(j, p)])
        stream = iter(index.candidates(member(j, X)))
        first = next(stream)
        index.discard(member(j, s))
        index.discard(member(j, p))
        index.add(member(j, Constant("fresh")))
        rest = list(stream)  # no RuntimeError, sees the snapshot
        assert {first, *rest} == {member(j, s), member(j, p)}

    def test_mutation_during_unbound_scan(self):
        index = FactIndex([member(j, s), member(j, p)])
        stream = iter(index.candidates(member(Variable("A"), Variable("B"))))
        next(stream)
        index.add(member(j, Constant("later")))
        assert len(list(stream)) == 1


class TestCopy:
    def test_copy_is_independent(self):
        index = FactIndex([member(j, s)])
        clone = index.copy()
        clone.add(sub(s, p))
        assert len(index) == 1
        assert len(clone) == 2

    def test_to_frozenset(self):
        index = FactIndex([member(j, s)])
        assert index.to_frozenset() == frozenset({member(j, s)})


class TestBucketHygiene:
    """Regression: discard must not leave empty predicate buckets behind."""

    def test_discard_last_atom_removes_bucket(self):
        index = FactIndex([member(j, s)])
        index.discard(member(j, s))
        assert "member" not in index.predicates()
        assert index._by_predicate == {}
        assert index._position_index == {}

    def test_discard_keeps_nonempty_bucket(self):
        index = FactIndex([member(j, s), member(j, p)])
        index.discard(member(j, s))
        assert index.predicates() == {"member"}

    def test_no_empty_buckets_after_merge_heavy_chase(self):
        """An EGD-merge-heavy chase discards and rewrites many atoms; the
        surviving index must hold no empty buckets or position entries."""
        from repro.chase.engine import chase
        from repro.core.atoms import funct
        from repro.core.query import ConjunctiveQuery

        names = "O A1 A2 A3 V1 W1 V2 W2 V3 W3 C".split()
        O, A1, A2, A3, V1, W1, V2, W2, V3, W3, C = (Variable(n) for n in names)
        # Three functional attributes, each with two values, forces three
        # EGD merges; the member/sub atoms over the merged values force
        # rewrites (discard + re-add) on top of the plain removals.
        merge_heavy = ConjunctiveQuery(
            "q_merges",
            (),
            (
                data(O, A1, V1), data(O, A1, W1), funct(A1, O),
                data(O, A2, V2), data(O, A2, W2), funct(A2, O),
                data(O, A3, V3), data(O, A3, W3), funct(A3, O),
                member(V1, C), member(W1, C), sub(V2, W2), member(V3, C),
            ),
        )
        result = chase(merge_heavy, max_level=8)
        assert not result.failed
        index = result.instance.index
        for predicate, bucket in index._by_predicate.items():
            assert bucket, f"empty bucket survived for {predicate!r}"
        for key, entry in index._position_index.items():
            assert entry, f"empty position entry survived for {key!r}"
        assert index.predicates() == {
            p for p in index._by_predicate if index._by_predicate[p]
        }


class TestSnapshotSemantics:
    """The documented read contracts the service layer's concurrent
    readers rely on (see the module docstring of repro.datalog.index)."""

    def test_facts_live_view_reflects_mutations(self):
        index = FactIndex()
        view = index.facts("member")
        index.add(member(Constant("o1"), Constant("c")))
        assert len(view) == 0 or len(view) == 1  # empty sentinel is static
        live = index.facts("member")
        index.add(member(Constant("o2"), Constant("c")))
        assert len(live) == 2  # live: later adds show through

    def test_facts_snapshot_is_detached(self):
        index = FactIndex()
        index.add(member(Constant("o1"), Constant("c")))
        snap = index.facts("member", snapshot=True)
        assert isinstance(snap, tuple) and len(snap) == 1
        index.add(member(Constant("o2"), Constant("c")))
        assert len(snap) == 1  # the snapshot does not grow
        assert index.facts("missing", snapshot=True) == ()

    def test_factsview_snapshot_method(self):
        index = FactIndex()
        index.add(member(Constant("o1"), Constant("c")))
        view = index.facts("member")
        snap = view.snapshot()
        index.add(member(Constant("o2"), Constant("c")))
        assert len(snap) == 1 and len(view) == 2

    def test_candidates_snapshot_survives_mutation_during_iteration(self):
        index = FactIndex()
        for i in range(50):
            index.add(member(Constant(f"o{i}"), Constant("c")))
        pattern = member(Variable("X"), Constant("c"))
        seen = 0
        for atom in index.candidates(pattern):
            # Mutating mid-iteration must not raise or tear the bucket.
            index.add(member(Constant(f"new{seen}"), Constant("c")))
            seen += 1
        assert seen == 50

    def test_iteration_during_concurrent_extension_sees_no_torn_bucket(self):
        """One writer extends, readers iterate snapshots: every atom seen
        is complete and the reader never crashes mid-iteration."""
        import threading

        index = FactIndex()
        for i in range(100):
            index.add(member(Constant(f"seed{i}"), Constant("c")))
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                index.add(member(Constant(f"w{i}"), Constant("c")))
                index.add(sub(Constant(f"w{i}"), Constant("top")))
                i += 1

        def reader():
            try:
                pattern = member(Variable("X"), Constant("c"))
                for _ in range(200):
                    for atom in index.candidates(pattern):
                        assert atom.predicate == "member"
                        assert len(atom.args) == 2
                    for atom in index.facts("sub", snapshot=True):
                        assert atom.predicate == "sub"
                        assert len(atom.args) == 2
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        w.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join(timeout=120)
        stop.set()
        w.join(timeout=30)
        assert not errors
