"""Unit tests for conjunction matching (the shared join algorithm)."""

from repro.core.atoms import data, member, sub
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Null, Variable
from repro.datalog.index import FactIndex
from repro.datalog.matching import match_conjunction, order_by_selectivity

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def small_index() -> FactIndex:
    return FactIndex(
        [
            member(a, b),
            member(b, c),
            sub(b, c),
            sub(c, c),
            data(a, b, c),
        ]
    )


class TestBasicMatching:
    def test_single_atom_all_matches(self):
        got = list(match_conjunction((member(X, Y),), small_index()))
        assert len(got) == 2

    def test_join_via_shared_variable(self):
        got = list(match_conjunction((member(X, Y), sub(Y, Z)), small_index()))
        images = {(s[X], s[Y], s[Z]) for s in got}
        assert images == {(a, b, c), (b, c, c)}

    def test_no_match(self):
        got = list(match_conjunction((member(c, X),), small_index()))
        assert got == []

    def test_base_substitution_restricts(self):
        base = Substitution({X: a})
        got = list(match_conjunction((member(X, Y),), small_index(), base))
        assert len(got) == 1 and got[0][Y] == b

    def test_empty_conjunction_yields_base(self):
        base = Substitution({X: a})
        got = list(match_conjunction((), small_index(), base))
        assert got == [base]

    def test_reorder_false_same_results(self):
        atoms = (member(X, Y), sub(Y, Z), data(X, Y, Z))
        fast = set(
            tuple(sorted((v.name, str(t)) for v, t in s.items()))
            for s in match_conjunction(atoms, small_index(), reorder=True)
        )
        slow = set(
            tuple(sorted((v.name, str(t)) for v, t in s.items()))
            for s in match_conjunction(atoms, small_index(), reorder=False)
        )
        assert fast == slow


class TestRequiredFact:
    def test_only_matches_using_the_fact(self):
        index = small_index()
        got = list(
            match_conjunction(
                (member(X, Y), sub(Y, Z)), index, required_fact=sub(b, c)
            )
        )
        # sub(Y,Z) must be sub(b,c): Y=b, Z=c; member(X,b) gives X=a.
        assert len(got) == 1
        assert (got[0][X], got[0][Y], got[0][Z]) == (a, b, c)

    def test_fact_not_matching_any_atom(self):
        got = list(
            match_conjunction((member(X, Y),), small_index(), required_fact=data(a, b, c))
        )
        assert got == []

    def test_fact_matching_multiple_positions_deduplicated(self):
        index = FactIndex([member(a, a)])
        got = list(
            match_conjunction(
                (member(X, Y), member(Y, X)), index, required_fact=member(a, a)
            )
        )
        assert len(got) == 1

    def test_semi_naive_completeness(self):
        """Every full match that uses the fact is found via required_fact."""
        index = small_index()
        atoms = (member(X, Y), sub(Y, Z))
        full = {
            (s[X], s[Y], s[Z]) for s in match_conjunction(atoms, index)
        }
        via_delta = set()
        for fact in index:
            for s in match_conjunction(atoms, index, required_fact=fact):
                via_delta.add((s[X], s[Y], s[Z]))
        assert via_delta == full


class TestTermFilter:
    def test_filter_vetoes_bindings(self):
        index = FactIndex([member(a, b), member(Null(1), b)])
        no_nulls = lambda var, term: not term.is_null
        got = list(
            match_conjunction((member(X, Y),), index, term_filter=no_nulls)
        )
        assert len(got) == 1 and got[0][X] == a


class TestOrdering:
    def test_order_by_selectivity_prefers_bound_atoms(self):
        index = small_index()
        atoms = [member(X, Y), sub(b, Z)]
        ordered = order_by_selectivity(atoms, index)
        assert ordered[0] == sub(b, Z)  # one bound position beats zero

    def test_order_preserves_multiset(self):
        index = small_index()
        atoms = [member(X, Y), sub(Y, Z), data(X, Y, Z)]
        ordered = order_by_selectivity(atoms, index)
        assert sorted(map(str, ordered)) == sorted(map(str, atoms))
