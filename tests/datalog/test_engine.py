"""Unit tests for the semi-naive Datalog engine."""

import pytest

from repro.core.atoms import Atom, member, sub
from repro.core.errors import ChaseBudgetExceeded, QueryError
from repro.core.terms import Constant, Variable
from repro.datalog.engine import EvaluationStats, derive_once, evaluate
from repro.datalog.index import FactIndex
from repro.datalog.program import Program
from repro.datalog.rule import Rule

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def tc_program() -> Program:
    """Transitive closure of sub/2 (rho_2 in miniature)."""
    return Program([Rule(sub(X, Z), (sub(X, Y), sub(Y, Z)), label="trans")])


def chain_facts(n: int) -> list[Atom]:
    return [sub(Constant(f"c{i}"), Constant(f"c{i+1}")) for i in range(n)]


class TestRule:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(QueryError):
            Rule(sub(X, Variable("W")), (sub(X, Y),))

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            Rule(sub(X, Y), ())

    def test_str(self):
        rule = Rule(sub(X, Z), (sub(X, Y), sub(Y, Z)))
        assert str(rule) == "sub(X, Z) :- sub(X, Y), sub(Y, Z)."

    def test_label_defaults_to_head_predicate(self):
        assert Rule(sub(X, Z), (sub(X, Y), sub(Y, Z))).label == "sub"


class TestProgram:
    def test_lookup_by_head_and_body(self):
        program = tc_program()
        assert len(program.rules_defining("sub")) == 1
        assert len(program.rules_using("sub")) == 1
        assert program.rules_defining("member") == ()

    def test_idb_predicates(self):
        assert tc_program().idb_predicates() == {"sub"}

    def test_extend(self):
        extra = Rule(member(X, Y), (member(X, Z), sub(Z, Y)), label="m")
        extended = tc_program().extend([extra])
        assert len(extended) == 2

    def test_rule_used_once_per_body_predicate(self):
        rule = Rule(sub(X, Z), (sub(X, Y), sub(Y, Z)))
        program = Program([rule])
        assert program.rules_using("sub") == (rule,)


class TestEvaluate:
    def test_transitive_closure_of_chain(self):
        n = 6
        index = evaluate(tc_program(), chain_facts(n))
        # n*(n+1)/2 pairs in the closure of a length-n chain.
        assert index.count("sub") == n * (n + 1) // 2

    def test_closure_contains_long_hop(self):
        index = evaluate(tc_program(), chain_facts(5))
        assert sub(Constant("c0"), Constant("c5")) in index

    def test_no_rules_returns_facts(self):
        facts = chain_facts(3)
        index = evaluate(Program([]), facts)
        assert set(index) == set(facts)

    def test_empty_facts(self):
        index = evaluate(tc_program(), [])
        assert len(index) == 0

    def test_stats_recorded(self):
        stats = EvaluationStats()
        evaluate(tc_program(), chain_facts(4), stats=stats)
        assert stats.derived_facts == 6  # closure(4-chain) adds C(4,2)=6
        assert stats.rule_firings >= stats.derived_facts
        assert "trans" in stats.firings_per_rule

    def test_max_iterations_budget(self):
        with pytest.raises(ChaseBudgetExceeded):
            evaluate(tc_program(), chain_facts(10), max_iterations=1)

    def test_idempotent(self):
        once = evaluate(tc_program(), chain_facts(5))
        twice = evaluate(tc_program(), list(once))
        assert set(once) == set(twice)

    def test_mutual_recursion(self):
        p = lambda x, y: Atom("p", (x, y))
        q = lambda x, y: Atom("q", (x, y))
        program = Program(
            [
                Rule(p(X, Y), (q(X, Y),), label="p_from_q"),
                Rule(q(X, Z), (p(X, Y), p(Y, Z)), label="q_from_pp"),
            ]
        )
        facts = [q(Constant("a"), Constant("b")), q(Constant("b"), Constant("c"))]
        index = evaluate(program, facts)
        assert p(Constant("a"), Constant("c")) in index or q(
            Constant("a"), Constant("c")
        ) in index


class TestDeriveOnce:
    def test_only_delta_driven_derivations(self):
        program = tc_program()
        facts = chain_facts(3)
        index = FactIndex(facts)
        new = derive_once(program, index, [facts[0]])
        # Only joins that touch sub(c0,c1): the pair (c0,c2).
        assert new == [sub(Constant("c0"), Constant("c2"))]

    def test_existing_facts_not_rederived(self):
        program = tc_program()
        index = FactIndex(chain_facts(2) + [sub(Constant("c0"), Constant("c2"))])
        new = derive_once(program, index, list(index))
        assert new == []
