"""Every experiment must run and make its paper-matching claim hold.

These are the repo's "reproduction regression tests": if a code change
breaks a paper result, the corresponding experiment's data dict flips a
flag and the test here fails.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.tables import ExperimentReport, Table


class TestHarness:
    def test_registry_covers_e1_to_e13(self):
        expected = {f"E{i}" for i in list(range(1, 14))}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive_lookup(self):
        assert run_experiment("e3").experiment_id == "E3"

    def test_table_rendering(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, True)
        text = table.render()
        assert "a" in text and "yes" in text

    def test_table_row_arity_checked(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_report_render_contains_tables_and_summary(self):
        report = run_experiment("E3")
        text = report.render()
        assert "[E3]" in text and report.summary in text


class TestE1E2:
    def test_all_paper_verdicts_match(self):
        report = run_experiment("E1")
        assert report.data["matches"] == len(report.data["results"]) == 4

    def test_positive_pairs_invisible_classically(self):
        report = run_experiment("E1")
        for row in report.data["results"]:
            if row["expected_sigma"]:
                assert row["sigma"] and not row["classic"]


class TestE3:
    def test_head_rewrite_reproduced(self):
        report = run_experiment("E3")
        assert report.data["head_matches_paper"]
        assert report.data["funct_derived_by_rho12"]
        assert report.data["head_after"] == ("V1", "V1")


class TestE4:
    def test_figure1_chain_and_branch(self):
        report = run_experiment("E4")
        assert report.data["chain_found"]
        assert report.data["branch_found"]
        assert not report.data["saturated"]  # the chase is infinite

    def test_graph_has_all_arc_kinds(self):
        report = run_experiment("E4")
        assert report.data["primary_arcs"] > 0
        assert report.data["secondary_arcs"] > 0
        assert report.data["cross_arcs"] > 0


class TestE5:
    def test_no_locality_violations(self):
        report = run_experiment("E5")
        assert report.data["violations"] == 0
        assert report.data["secondary_arcs"] > 0  # the check was not vacuous


class TestE6E7:
    def test_lemma9_holds(self):
        report = run_experiment("E6")
        assert report.data["all_hold"]
        assert any(row["deep"] > 0 for row in report.data["rows"])

    def test_lemma11_holds(self):
        report = run_experiment("E7")
        assert report.data["all_hold"]
        assert report.data["rows"]


class TestE8:
    def test_no_verdict_flips(self):
        report = run_experiment("E8")
        assert report.data["flips"] == 0
        assert report.data["pairs"] >= 20


class TestE9:
    def test_rows_and_monotone_bounds(self):
        report = run_experiment("E9")
        rows = report.data["rows"]
        assert len(rows) >= 3
        bounds = [r["bound"] for r in rows]
        assert bounds == sorted(bounds)


class TestE10:
    def test_classic_never_exceeds_sigma(self):
        report = run_experiment("E10")
        assert report.data["classic_only"] == 0

    def test_sigma_only_pairs_exist(self):
        report = run_experiment("E10")
        assert report.data["sigma_only"] >= 2  # at least the paper's pairs


class TestE11:
    def test_growth_linear_and_ablation_inflates(self):
        report = run_experiment("E11")
        assert report.data["linear"]
        rows = {r["query"]: r for r in report.data["rows"]}
        assert rows["q_presatisfied"]["oblivious"] > rows["q_presatisfied"]["restricted"]

    def test_acyclic_query_saturates(self):
        report = run_experiment("E11")
        rows = {r["query"]: r for r in report.data["rows"]}
        assert rows["q_mandatory"]["saturates"]


class TestE12:
    def test_bgp_verdicts_match(self):
        report = run_experiment("E12")
        assert report.data["all_match"]


class TestE13:
    def test_join_order_ablation(self):
        report = run_experiment("E13")
        rows = {r["workload"]: r for r in report.data["rows"]}
        # On the adversarial chain the heuristic must win clearly.
        chain = rows["chain"]
        assert chain["ordered"] < chain["naive"]


class TestRunAll:
    def test_run_all_unique_reports(self):
        reports = run_all()
        assert len(reports) == 12  # E1/E2 share one module
        assert all(isinstance(r, ExperimentReport) for r in reports)
