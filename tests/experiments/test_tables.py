"""Unit tests for the experiment table/report rendering."""

import pytest

from repro.experiments.tables import ExperimentReport, Table, _format_cell


class TestFormatting:
    def test_bool_renders_yes_no(self):
        assert _format_cell(True) == "yes"
        assert _format_cell(False) == "no"

    def test_float_rendering(self):
        assert _format_cell(0.0) == "0"
        assert _format_cell(0.25) == "0.25"
        assert _format_cell(1.0) == "1"
        assert "e" in _format_cell(0.00001)

    def test_other_types_via_str(self):
        assert _format_cell(12) == "12"
        assert _format_cell("text") == "text"


class TestTable:
    def test_alignment(self):
        table = Table("t", ["col", "x"])
        table.add_row("a-long-cell", 1)
        table.add_row("b", 22)
        lines = table.render().splitlines()
        # Header underline, then rows all the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_title_underlined(self):
        table = Table("My Title", ["a"])
        lines = table.render().splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_len(self):
        table = Table("t", ["a"])
        assert len(table) == 0
        table.add_row(1)
        assert len(table) == 1

    def test_add_row_returns_self_for_chaining(self):
        table = Table("t", ["a"])
        assert table.add_row(1).add_row(2) is table

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Table("t", ["a", "b"]).add_row(1)


class TestReport:
    def test_render_order(self):
        table = Table("tbl", ["a"])
        table.add_row(1)
        report = ExperimentReport(
            experiment_id="EX",
            title="demo",
            tables=[table],
            summary="the end",
        )
        text = report.render()
        assert text.index("[EX]") < text.index("tbl") < text.index("the end")

    def test_str_equals_render(self):
        report = ExperimentReport(experiment_id="EX", title="demo")
        assert str(report) == report.render()
