"""Unit tests for UCQ containment."""

import pytest

from repro.core.atoms import member, sub, type_
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.extensions.unions import UnionQuery, ucq_contained

O, C, D, A, T = (Variable(n) for n in "O C D A T".split())

members = ConjunctiveQuery("members", (O, C), (member(O, C),))
sub_members = ConjunctiveQuery("sub_members", (O, C), (member(O, D), sub(D, C)))
typed = ConjunctiveQuery("typed", (O, C), (member(O, C), type_(C, A, T)))
subclasses = ConjunctiveQuery("subclasses", (O, C), (sub(O, C),))


class TestUnionQuery:
    def test_construction(self):
        union = UnionQuery("u", (members, typed))
        assert len(union) == 2 and union.arity == 2

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery("u", ())

    def test_mixed_arity_rejected(self):
        boolean = ConjunctiveQuery("b", (), (member(O, C),))
        with pytest.raises(QueryError):
            UnionQuery("u", (members, boolean))

    def test_wrap_cq(self):
        union = UnionQuery.wrap(members)
        assert len(union) == 1

    def test_wrap_union_identity(self):
        union = UnionQuery("u", (members,))
        assert UnionQuery.wrap(union) is union

    def test_str(self):
        assert "UNION" in str(UnionQuery("u", (members, typed)))

    def test_immutable(self):
        union = UnionQuery("u", (members,))
        with pytest.raises(AttributeError):
            union.name = "v"  # type: ignore[misc]


class TestUCQContainment:
    def test_each_disjunct_needs_cover(self):
        u1 = UnionQuery("u1", (sub_members, typed))
        result = ucq_contained(u1, members)
        assert result.contained
        assert result.uncovered() == []

    def test_uncovered_disjunct_fails(self):
        u1 = UnionQuery("u1", (sub_members, subclasses))
        result = ucq_contained(u1, members)
        assert not result.contained
        assert result.uncovered() == ["subclasses"]

    def test_superset_union_on_the_right(self):
        u2 = UnionQuery("u2", (subclasses, members))
        assert ucq_contained(sub_members, u2).contained
        assert ucq_contained(subclasses, u2).contained

    def test_right_union_needs_only_one_cover_per_disjunct(self):
        u1 = UnionQuery("u1", (typed, subclasses))
        u2 = UnionQuery("u2", (members, subclasses))
        result = ucq_contained(u1, u2)
        assert result.contained
        assert result.coverage["typed"][0] == "members"
        assert result.coverage["subclasses"][0] == "subclasses"

    def test_cq_on_both_sides_matches_plain_checker(self):
        from repro.containment import is_contained

        assert ucq_contained(sub_members, members).contained == bool(
            is_contained(sub_members, members)
        )
        assert ucq_contained(members, sub_members).contained == bool(
            is_contained(members, sub_members)
        )

    def test_arity_mismatch_raises(self):
        boolean = ConjunctiveQuery("b", (), (member(O, C),))
        with pytest.raises(QueryError):
            ucq_contained(members, boolean)

    def test_explain_lists_coverage(self):
        u1 = UnionQuery("u1", (sub_members, subclasses))
        text = ucq_contained(u1, members).explain()
        assert "NOT covered" in text and "covered by members" in text

    def test_union_reflexivity(self):
        u = UnionQuery("u", (members, typed, subclasses))
        assert ucq_contained(u, u).contained

    def test_sigma_specific_union_containment(self):
        """Only rho_3 makes the sub_members disjunct collapse into members."""
        from repro.containment import contained_classic

        assert not contained_classic(sub_members, members).contained
        assert ucq_contained(UnionQuery("u", (sub_members,)), members).contained
