"""Unit tests for query classification (taxonomies)."""

import pytest

from repro.core.atoms import member, sub, type_
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.extensions.classify import Taxonomy, are_equivalent, classify_queries

O, C, D, D2, A, T = (Variable(n) for n in "O C D D2 A T".split())

members = ConjunctiveQuery("members", (O, C), (member(O, C),))
sub_members = ConjunctiveQuery("sub_members", (O, C), (member(O, D), sub(D, C)))
sub_members_renamed = ConjunctiveQuery(
    "sub_members_renamed", (O, C), (member(O, D2), sub(D2, C))
)
# Redundant variant: equivalent to sub_members only under Sigma_FL (rho3).
sub_members_redundant = ConjunctiveQuery(
    "sub_members_redundant", (O, C), (member(O, D), sub(D, C), member(O, C))
)
typed_members = ConjunctiveQuery(
    "typed_members", (O, C), (member(O, C), type_(C, A, T))
)
subclass_pairs = ConjunctiveQuery("subclass_pairs", (O, C), (sub(O, C),))

ALL = [
    members,
    sub_members,
    sub_members_renamed,
    sub_members_redundant,
    typed_members,
    subclass_pairs,
]


class TestAreEquivalent:
    def test_renaming_equivalent(self):
        assert are_equivalent(sub_members, sub_members_renamed)

    def test_sigma_only_equivalence(self):
        """Equivalent only because rho_3 derives the redundant conjunct."""
        from repro.containment import contained_classic

        assert are_equivalent(sub_members, sub_members_redundant)
        assert not contained_classic(sub_members, sub_members_redundant).contained

    def test_strict_containment_not_equivalent(self):
        assert not are_equivalent(sub_members, members)


class TestClassify:
    @pytest.fixture(scope="class")
    def taxonomy(self) -> Taxonomy:
        return classify_queries(ALL)

    def test_equivalence_classes(self, taxonomy):
        cls = taxonomy.class_of(sub_members)
        names = {q.name for q in taxonomy.classes[cls]}
        assert names == {
            "sub_members",
            "sub_members_renamed",
            "sub_members_redundant",
        }

    def test_direct_subsumptions(self, taxonomy):
        supers = {q.name for q in taxonomy.subsumers(sub_members)}
        assert supers == {"members"}
        subs = {q.name for q in taxonomy.subsumees(members)}
        assert "sub_members" in subs and "typed_members" in subs

    def test_roots_are_most_general(self, taxonomy):
        roots = {q.name for q in taxonomy.roots()}
        assert "members" in roots
        assert "subclass_pairs" in roots  # incomparable with the rest
        assert "sub_members" not in roots

    def test_hasse_has_no_transitive_edges(self, taxonomy):
        import networkx as nx

        graph = taxonomy.to_networkx()
        reduced = nx.transitive_reduction(graph)
        assert set(graph.edges()) == set(reduced.edges())

    def test_pretty_output(self, taxonomy):
        text = taxonomy.pretty()
        assert "≡" in text and "⊑" in text and "(most general)" in text

    def test_empty_input(self):
        taxonomy = classify_queries([])
        assert taxonomy.classes == [] and taxonomy.edges == []

    def test_single_query(self):
        taxonomy = classify_queries([members])
        assert len(taxonomy.classes) == 1
        assert taxonomy.roots() == [members]

    def test_arity_mismatch_rejected(self):
        boolean = ConjunctiveQuery("b", (), (member(O, C),))
        with pytest.raises(QueryError):
            classify_queries([members, boolean])

    def test_class_of_unknown_raises(self, taxonomy):
        other = ConjunctiveQuery("other", (O, C), (type_(O, A, C),))
        with pytest.raises(KeyError):
            taxonomy.class_of(other)
