"""Unit tests for the weak-acyclicity analyser."""

import pytest

from repro.core.atoms import Atom, data, mandatory, member, sub
from repro.core.terms import Variable
from repro.dependencies import (
    EGD,
    SIGMA_FL,
    SIGMA_FL_FULL_TGDS,
    SIGMA_FL_MINUS,
    TGD,
)
from repro.extensions.weak_acyclicity import (
    analyse_weak_acyclicity,
    build_dependency_graph,
    is_weakly_acyclic,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
p = lambda *args: Atom("p", args)
q = lambda *args: Atom("q", args)


class TestGraphConstruction:
    def test_regular_edges_from_propagation(self):
        tgd = TGD(q(X, Y), (p(X, Y),), label="copy")
        graph = build_dependency_graph([tgd])
        assert (("p", 0), ("q", 0)) in graph.regular_edges
        assert (("p", 1), ("q", 1)) in graph.regular_edges
        assert not graph.special_edges

    def test_special_edges_from_invention(self):
        tgd = TGD(q(X, Z), (p(X, Y),), label="invent")
        graph = build_dependency_graph([tgd])
        assert (("p", 0), ("q", 1)) in graph.special_edges
        # Y is not exported: no special edge from p[1].
        assert (("p", 1), ("q", 1)) not in graph.special_edges

    def test_egds_ignored(self):
        egd = EGD((p(X, Y), p(X, Z)), Y, Z)
        graph = build_dependency_graph([egd])
        assert not graph.regular_edges and not graph.special_edges

    def test_networkx_export_flags_special(self):
        tgd = TGD(q(X, Z), (p(X, Y),))
        nx_graph = build_dependency_graph([tgd]).to_networkx()
        specials = [
            d for _, _, d in nx_graph.edges(data=True) if d["special"]
        ]
        assert specials


class TestVerdicts:
    def test_full_tgds_always_weakly_acyclic_here(self):
        assert is_weakly_acyclic(SIGMA_FL_FULL_TGDS)

    def test_sigma_minus_weakly_acyclic(self):
        assert is_weakly_acyclic(SIGMA_FL_MINUS)

    def test_sigma_fl_not_weakly_acyclic(self):
        """The paper's infinite chase, found structurally."""
        report = analyse_weak_acyclicity(SIGMA_FL)
        assert not report.weakly_acyclic
        # The offending loop runs through rho_5's invention position.
        flattened = {pos for cycle in report.offending_cycles for pos in cycle}
        assert ("data", 2) in flattened

    def test_self_inventing_tgd_cyclic(self):
        tgd = TGD(p(Y, Z), (p(X, Y),), label="succ")
        assert not is_weakly_acyclic([tgd])

    def test_two_rule_invention_cycle(self):
        """The invented value flows back into the inventing rule's frontier."""
        t1 = TGD(q(X, Z), (p(X, Y),), label="invent")
        t2 = TGD(p(Y, X), (q(X, Y),), label="swap_back")
        assert not is_weakly_acyclic([t1, t2])

    def test_two_rule_no_feedback_is_acyclic(self):
        """If the null never reaches the inventing frontier, WA holds —
        and indeed the restricted chase terminates."""
        t1 = TGD(q(X, Z), (p(X, Y),), label="invent")
        t2 = TGD(p(X, Y), (q(X, Y),), label="copy_back")
        assert is_weakly_acyclic([t1, t2])

        from repro.chase.engine import chase
        from repro.core.query import ConjunctiveQuery

        query = ConjunctiveQuery("qq", (), (p(X, Y),))
        assert chase(query, dependencies=(t1, t2)).saturated

    def test_invention_without_feedback_acyclic(self):
        t1 = TGD(q(X, Z), (p(X, Y),), label="invent_only")
        assert is_weakly_acyclic([t1])

    def test_report_str(self):
        good = analyse_weak_acyclicity(SIGMA_FL_MINUS)
        assert "terminates" in str(good)
        bad = analyse_weak_acyclicity(SIGMA_FL)
        assert "NOT weakly acyclic" in str(bad)


class TestAgreementWithChase:
    def test_weakly_acyclic_sets_saturate(self):
        """A weakly acyclic set's chase saturates without a level bound."""
        from repro.chase.engine import chase
        from repro.core.query import ConjunctiveQuery

        t1 = TGD(q(X, Z), (p(X, Y),), label="invent_once")
        query = ConjunctiveQuery("qq", (), (p(X, Y),))
        assert is_weakly_acyclic([t1])
        result = chase(query, dependencies=(t1,))
        assert result.saturated

    def test_non_weakly_acyclic_sigma_fl_matches_cycle_analysis(self):
        """Structural WA verdict agrees with the P_FL-specific analyser
        on the paper's Example 2."""
        from repro.analysis.cycles import predict_chase_termination
        from repro.workloads import EXAMPLE2_QUERY

        assert not is_weakly_acyclic(SIGMA_FL)
        report = predict_chase_termination(EXAMPLE2_QUERY)
        assert not report.guaranteed_terminating
