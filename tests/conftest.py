"""Shared fixtures: paper queries, variables, and small knowledge bases."""

from __future__ import annotations

import pytest

from repro.core import ConjunctiveQuery, Variable, data, funct, mandatory, member, sub, type_
from repro.flogic import KnowledgeBase
from repro.workloads import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    INTRO_JOINABLE_Q,
    INTRO_JOINABLE_QQ,
    INTRO_MANDATORY_Q,
    INTRO_MANDATORY_QQ,
)


@pytest.fixture
def v():
    """Shorthand variable factory: ``v('X')``."""
    return Variable


@pytest.fixture
def joinable_pair():
    return INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ


@pytest.fixture
def mandatory_pair():
    return INTRO_MANDATORY_Q, INTRO_MANDATORY_QQ


@pytest.fixture
def example1_query():
    return EXAMPLE1_QUERY


@pytest.fixture
def example2_query():
    return EXAMPLE2_QUERY


@pytest.fixture
def university_kb() -> KnowledgeBase:
    """The running example of the paper's Section 2, as a loadable KB."""
    kb = KnowledgeBase()
    kb.load(
        """
        % classes
        freshman::student.
        student::person.
        employee::person.
        % signatures
        person[age {0:1} *=> number].
        person[name {1:*} *=> string].
        student[major *=> string].
        % objects
        john:student.
        mary:employee.
        john[age->33].
        john[name->'John Doe'].
        john[major->'CS'].
        mary[name->'Mary Major'].
        """
    )
    return kb


@pytest.fixture
def simple_cq(v):
    """A tiny query usable wherever 'any valid CQ' is needed."""
    return ConjunctiveQuery(
        "simple", (v("X"),), (member(v("X"), v("C")), sub(v("C"), v("D")))
    )
