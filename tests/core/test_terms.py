"""Unit tests for the term kernel: interning, ordering, null minting."""

import pytest

from repro.core.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    is_ground,
    parse_term,
    term_sort_key,
)


class TestConstant:
    def test_interning_returns_identical_object(self):
        assert Constant("john") is Constant("john")

    def test_distinct_names_distinct_objects(self):
        assert Constant("john") != Constant("mary")

    def test_str_is_name(self):
        assert str(Constant("person")) == "person"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Constant("")

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            Constant(42)  # type: ignore[arg-type]

    def test_immutable(self):
        c = Constant("john")
        with pytest.raises(AttributeError):
            c.name = "mary"  # type: ignore[misc]

    def test_kind_flags(self):
        c = Constant("john")
        assert c.is_constant and not c.is_variable and not c.is_null

    def test_hash_stable_across_interning(self):
        assert hash(Constant("a")) == hash(Constant("a"))


class TestVariable:
    def test_interning(self):
        assert Variable("X") is Variable("X")

    def test_kind_flags(self):
        x = Variable("X")
        assert x.is_variable and not x.is_constant and not x.is_null

    def test_variable_and_constant_differ_even_with_same_name(self):
        assert Variable("x") != Constant("x")
        assert hash(Variable("x")) != hash(Constant("x"))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Variable("X").name = "Y"  # type: ignore[misc]


class TestNull:
    def test_interning_by_index(self):
        assert Null(3) is Null(3)

    def test_name_rendering(self):
        assert str(Null(7)) == "_v7"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Null(-1)

    def test_kind_flags(self):
        n = Null(1)
        assert n.is_null and not n.is_constant and not n.is_variable


class TestNullFactory:
    def test_fresh_monotone(self):
        factory = NullFactory()
        first, second, third = factory.fresh(), factory.fresh(), factory.fresh()
        assert (first.index, second.index, third.index) == (1, 2, 3)

    def test_custom_start(self):
        assert NullFactory(start=10).fresh().index == 10

    def test_peek_does_not_consume(self):
        factory = NullFactory()
        assert factory.peek() == 1
        assert factory.fresh().index == 1
        assert factory.peek() == 2

    def test_independent_factories(self):
        a, b = NullFactory(), NullFactory()
        assert a.fresh().index == b.fresh().index == 1


class TestOrdering:
    """The Definition-2 lexicographic order: constants < nulls < variables."""

    def test_constant_before_null(self):
        assert term_sort_key(Constant("zzz")) < term_sort_key(Null(0))

    def test_null_before_variable(self):
        assert term_sort_key(Null(999)) < term_sort_key(Variable("A"))

    def test_constants_alphabetical(self):
        assert term_sort_key(Constant("apple")) < term_sort_key(Constant("banana"))

    def test_nulls_by_creation_index(self):
        assert term_sort_key(Null(1)) < term_sort_key(Null(2))

    def test_variables_alphabetical(self):
        assert term_sort_key(Variable("A")) < term_sort_key(Variable("B"))

    def test_sort_key_rejects_non_terms(self):
        with pytest.raises(TypeError):
            term_sort_key("john")  # type: ignore[arg-type]

    def test_egd_merge_preference_order(self):
        """sorted() with the key picks the survivor the chase must keep."""
        terms = [Variable("V"), Null(5), Constant("c")]
        assert sorted(terms, key=term_sort_key)[0] == Constant("c")


class TestHelpers:
    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null(1))
        assert not is_ground(Variable("X"))

    def test_parse_term_capitalised_is_variable(self):
        assert parse_term("Att") == Variable("Att")

    def test_parse_term_underscore_prefix_is_variable(self):
        assert parse_term("_x") == Variable("_x")

    def test_parse_term_lowercase_is_constant(self):
        assert parse_term("john") == Constant("john")

    def test_parse_term_numericish_is_constant(self):
        assert parse_term("33") == Constant("33")
