"""Unit tests for the alpha-invariant canonical form of queries."""

from repro.core.atoms import member, sub, type_
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

O, C, D, A, T = (Variable(n) for n in "O C D A T".split())
X, Y, Z, W, V = (Variable(n) for n in "X Y Z W V".split())
book = Constant("book")


def q(name, head, body):
    return ConjunctiveQuery(name, head, body)


class TestCanonicalKey:
    def test_rename_apart_variant_shares_key(self):
        q1 = q("q1", (O, C), (member(O, D), sub(D, C)))
        q2 = q("q2", (X, Y), (member(X, Z), sub(Z, Y)))
        assert q1.canonical_key() == q2.canonical_key()
        assert q1.canonical_hash == q2.canonical_hash

    def test_body_reordering_shares_key(self):
        q1 = q("q1", (O, C), (member(O, D), sub(D, C)))
        q2 = q("q2", (O, C), (sub(D, C), member(O, D)))
        assert q1.canonical_key() == q2.canonical_key()

    def test_name_is_irrelevant(self):
        q1 = q("alpha", (O,), (member(O, book),))
        q2 = q("omega", (O,), (member(O, book),))
        assert q1.canonical_key() == q2.canonical_key()

    def test_different_constants_differ(self):
        q1 = q("q1", (O,), (member(O, book),))
        q2 = q("q2", (O,), (member(O, Constant("car")),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_different_join_structure_differs(self):
        joined = q("q1", (O, C), (member(O, D), sub(D, C)))
        unjoined = q("q2", (O, C), (member(O, D), sub(A, C)))
        assert joined.canonical_key() != unjoined.canonical_key()

    def test_head_order_matters(self):
        q1 = q("q1", (O, C), (member(O, C),))
        q2 = q("q2", (C, O), (member(O, C),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_head_projection_matters(self):
        q1 = q("q1", (O,), (member(O, C),))
        q2 = q("q2", (C,), (member(O, C),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_key_is_cached(self):
        query = q("q", (O, C), (member(O, D), sub(D, C)))
        assert query.canonical_key() is query.canonical_key()

    def test_duplicate_atom_multiplicity_preserved(self):
        q1 = q("q1", (O,), (member(O, C), member(O, C)))
        q2 = q("q2", (O,), (member(O, C),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_three_way_rename_and_shuffle(self):
        q1 = q("q1", (X,), (type_(X, Y, Z), sub(Z, W), member(X, W)))
        q2 = q("q2", (A,), (member(A, T), sub(D, T), type_(A, C, D)))
        assert q1.canonical_key() == q2.canonical_key()

    def test_equal_queries_equal_hash(self):
        q1 = q("q1", (O, C), (member(O, D), sub(D, C)))
        q2 = q("q2", (X, Y), (sub(Z, Y), member(X, Z)))
        assert q1.canonical_hash == q2.canonical_hash
