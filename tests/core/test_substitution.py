"""Unit tests for substitutions, matching and unification."""

import pytest

from repro.core.atoms import Atom, data, member
from repro.core.errors import SubstitutionError, UnificationError
from repro.core.substitution import Substitution, match_atom, unify_atoms
from repro.core.terms import Constant, Null, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestSubstitutionBasics:
    def test_empty_is_shared_and_empty(self):
        assert len(Substitution.EMPTY) == 0
        assert Substitution.EMPTY.apply_term(X) == X

    def test_apply_term(self):
        sigma = Substitution({X: a})
        assert sigma.apply_term(X) == a
        assert sigma.apply_term(Y) == Y
        assert sigma.apply_term(a) == a

    def test_apply_atom(self):
        sigma = Substitution({X: a, Y: b})
        assert sigma.apply_atom(member(X, Y)) == member(a, b)

    def test_apply_atom_empty_returns_same_object(self):
        atom = member(X, Y)
        assert Substitution.EMPTY.apply_atom(atom) is atom

    def test_rejects_non_variable_keys(self):
        with pytest.raises(SubstitutionError):
            Substitution({a: b})  # type: ignore[dict-item]

    def test_rejects_non_term_values(self):
        with pytest.raises(SubstitutionError):
            Substitution({X: "a"})  # type: ignore[dict-item]

    def test_mapping_protocol(self):
        sigma = Substitution({X: a})
        assert X in sigma
        assert sigma[X] == a
        assert sigma.get(Y) is None
        assert set(sigma.domain()) == {X}


class TestBindCompose:
    def test_bind_returns_new(self):
        base = Substitution({X: a})
        extended = base.bind(Y, b)
        assert Y not in base
        assert extended[Y] == b

    def test_bind_same_value_is_noop(self):
        sigma = Substitution({X: a})
        assert sigma.bind(X, a) is sigma

    def test_bind_conflict_raises(self):
        with pytest.raises(SubstitutionError):
            Substitution({X: a}).bind(X, b)

    def test_compose_applies_left_then_right(self):
        """(other ∘ self)(x) = other(self(x))."""
        first = Substitution({X: Y})
        second = Substitution({Y: a})
        composed = first.compose(second)
        assert composed.apply_term(X) == a

    def test_compose_keeps_right_only_bindings(self):
        first = Substitution({X: a})
        second = Substitution({Y: b})
        composed = first.compose(second)
        assert composed.apply_term(X) == a
        assert composed.apply_term(Y) == b

    def test_compose_matches_sequential_application_on_atoms(self):
        first = Substitution({X: Y, Z: a})
        second = Substitution({Y: b})
        atom = data(X, Z, Y)
        assert first.compose(second).apply_atom(atom) == second.apply_atom(
            first.apply_atom(atom)
        )

    def test_restrict(self):
        sigma = Substitution({X: a, Y: b})
        assert sigma.restrict([X]) == Substitution({X: a})


class TestMatchAtom:
    def test_simple_match(self):
        sigma = match_atom(member(X, Y), member(a, b))
        assert sigma is not None
        assert sigma[X] == a and sigma[Y] == b

    def test_predicate_mismatch(self):
        assert match_atom(member(X, Y), data(a, b, a)) is None

    def test_constant_position_must_agree(self):
        assert match_atom(member(a, Y), member(b, b)) is None
        assert match_atom(member(a, Y), member(a, b)) is not None

    def test_repeated_variable_must_match_equal_terms(self):
        assert match_atom(member(X, X), member(a, b)) is None
        sigma = match_atom(member(X, X), member(a, a))
        assert sigma is not None and sigma[X] == a

    def test_extends_base_consistently(self):
        base = Substitution({X: a})
        assert match_atom(member(X, Y), member(b, b), base) is None
        sigma = match_atom(member(X, Y), member(a, b), base)
        assert sigma is not None and sigma[Y] == b

    def test_base_unchanged_when_no_new_bindings(self):
        base = Substitution({X: a, Y: b})
        assert match_atom(member(X, Y), member(a, b), base) is base

    def test_null_values_match_variables(self):
        sigma = match_atom(member(X, Y), Atom("member", (Null(1), a)))
        assert sigma is not None and sigma[X] == Null(1)


class TestUnifyAtoms:
    def test_unifies_variables_both_sides(self):
        sigma = unify_atoms(member(X, a), member(b, Y))
        assert sigma.apply_atom(member(X, a)) == sigma.apply_atom(member(b, Y))

    def test_occurs_free_chain_flattening(self):
        sigma = unify_atoms(data(X, Y, Z), data(Y, Z, a))
        atom = sigma.apply_atom(data(X, Y, Z))
        assert atom == data(a, a, a)

    def test_constant_clash_raises(self):
        with pytest.raises(UnificationError):
            unify_atoms(member(a, X), member(b, X))

    def test_predicate_clash_raises(self):
        with pytest.raises(UnificationError):
            unify_atoms(member(X, Y), data(X, Y, Z))

    def test_identical_atoms_unify_empty(self):
        assert len(unify_atoms(member(X, Y), member(X, Y))) == 0
