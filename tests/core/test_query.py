"""Unit tests for conjunctive queries."""

import pytest

from repro.core.atoms import Atom, data, member, sub, type_
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery, fresh_variable_namer
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def q_simple() -> ConjunctiveQuery:
    return ConjunctiveQuery("q", (X,), (member(X, Y), sub(Y, Z)))


class TestConstruction:
    def test_basic_properties(self):
        q = q_simple()
        assert q.name == "q"
        assert q.arity == 1
        assert q.size == 2 == len(q)

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("q", (X,), ())

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("q", (Variable("W"),), (member(X, Y),))

    def test_head_constants_allowed(self):
        q = ConjunctiveQuery("q", (Constant("c"),), (member(X, Y),))
        assert q.arity == 1

    def test_boolean_query_allowed(self):
        q = ConjunctiveQuery("q", (), (member(X, Y),))
        assert q.arity == 0

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("", (X,), (member(X, Y),))

    def test_non_atom_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("q", (), ("member(X,Y)",))  # type: ignore[arg-type]

    def test_immutable(self):
        with pytest.raises(AttributeError):
            q_simple().name = "p"  # type: ignore[misc]


class TestStructure:
    def test_variables(self):
        assert q_simple().variables() == {X, Y, Z}

    def test_head_and_existential_split(self):
        q = q_simple()
        assert q.head_variables() == {X}
        assert q.existential_variables() == {Y, Z}

    def test_constants(self):
        q = ConjunctiveQuery("q", (), (member(X, Constant("person")),))
        assert q.constants() == {Constant("person")}

    def test_predicates(self):
        assert q_simple().predicates() == {"member", "sub"}

    def test_size_is_paper_cardinality(self):
        """|q| counts body conjuncts — the measure in delta = 2|q|."""
        q = ConjunctiveQuery(
            "q", (), (member(X, Y), member(X, Y), sub(Y, Z))
        )
        assert q.size == 3  # duplicates in the tuple still count


class TestValidatePfl:
    def test_accepts_pfl_body(self):
        assert q_simple().validate_pfl() is not None

    def test_rejects_non_pfl_predicate(self):
        q = ConjunctiveQuery("q", (), (Atom("likes", (X, Y)),))
        with pytest.raises(Exception):
            q.validate_pfl()


class TestTransformations:
    def test_apply_rewrites_head_and_body(self):
        sigma = Substitution({X: Constant("john")})
        q = q_simple().apply(sigma)
        assert q.head == (Constant("john"),)
        assert q.body[0] == member(Constant("john"), Y)

    def test_rename_apart_avoids_taken(self):
        q = q_simple()
        renamed, sigma = q.rename_apart({X, Y})
        assert renamed.variables().isdisjoint({X, Y}) or Z in renamed.variables()
        assert X not in renamed.variables()
        assert Y not in renamed.variables()
        # Semantically the same query: renaming is a bijection.
        assert renamed.size == q.size

    def test_rename_apart_no_clash_is_identity_mapping(self):
        q = q_simple()
        renamed, sigma = q.rename_apart(set())
        assert renamed == q
        assert len(sigma) == 0

    def test_with_body_and_with_head(self):
        q = q_simple()
        q2 = q.with_body((member(X, Y),))
        assert q2.size == 1 and q2.head == q.head
        q3 = q.with_head(())
        assert q3.arity == 0 and q3.body == q.body

    def test_canonical_atoms_is_body(self):
        q = q_simple()
        assert q.canonical_atoms() == q.body


class TestEqualityDisplay:
    def test_equality(self):
        assert q_simple() == q_simple()

    def test_body_order_matters_for_identity(self):
        q1 = ConjunctiveQuery("q", (), (member(X, Y), sub(Y, Z)))
        q2 = ConjunctiveQuery("q", (), (sub(Y, Z), member(X, Y)))
        assert q1 != q2  # distinct objects; semantic equality is containment both ways

    def test_str_roundtrippable_shape(self):
        text = str(q_simple())
        assert text == "q(X) :- member(X, Y), sub(Y, Z)."

    def test_hashable(self):
        assert len({q_simple(), q_simple()}) == 1


class TestNamer:
    def test_fresh_variable_namer_sequence(self):
        namer = fresh_variable_namer("T")
        assert [next(namer).name for _ in range(3)] == ["T1", "T2", "T3"]
