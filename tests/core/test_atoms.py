"""Unit tests for atoms and the P_FL schema."""

import pytest

from repro.core.atoms import (
    P_FL,
    P_FL_ARITIES,
    Atom,
    data,
    funct,
    mandatory,
    member,
    sub,
    type_,
    validate_pfl_atom,
)
from repro.core.errors import ArityError, SchemaError
from repro.core.terms import Constant, Null, Variable


class TestAtomBasics:
    def test_construction_and_accessors(self):
        atom = Atom("member", (Constant("john"), Constant("student")))
        assert atom.predicate == "member"
        assert atom.arity == 2
        assert atom[0] == Constant("john")
        assert list(atom) == [Constant("john"), Constant("student")]

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("member", ("john", "student"))  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        a = member("john", "student")
        b = member("john", "student")
        assert a == b
        assert hash(a) == hash(b)
        assert a != member("mary", "student")

    def test_atoms_with_different_predicates_differ(self):
        assert member("a", "b") != sub("a", "b")

    def test_immutability(self):
        atom = member("john", "student")
        with pytest.raises(AttributeError):
            atom.predicate = "sub"  # type: ignore[misc]

    def test_str(self):
        assert str(data("john", "age", "33")) == "data(john, age, 33)"

    def test_variables_constants_nulls(self):
        atom = Atom("data", (Constant("o"), Variable("A"), Null(1)))
        assert atom.variables() == {Variable("A")}
        assert atom.constants() == {Constant("o")}
        assert atom.nulls() == {Null(1)}

    def test_is_ground(self):
        assert member("john", "student").is_ground
        assert Atom("member", (Constant("j"), Null(1))).is_ground
        assert not member("john", Variable("C")).is_ground


class TestPFLSchema:
    def test_schema_has_six_predicates(self):
        assert P_FL == {"member", "sub", "data", "type", "mandatory", "funct"}

    def test_arities_match_paper(self):
        assert P_FL_ARITIES == {
            "member": 2,
            "sub": 2,
            "data": 3,
            "type": 3,
            "mandatory": 2,
            "funct": 2,
        }

    def test_validate_accepts_well_formed(self):
        atom = member("john", "student")
        assert validate_pfl_atom(atom) is atom

    def test_validate_rejects_unknown_predicate(self):
        with pytest.raises(SchemaError):
            validate_pfl_atom(Atom("likes", (Constant("a"), Constant("b"))))

    def test_validate_rejects_wrong_arity(self):
        with pytest.raises(ArityError):
            validate_pfl_atom(Atom("member", (Constant("a"),)))


class TestConvenienceConstructors:
    def test_capitalisation_convention(self):
        atom = member("X", "person")
        assert atom.args == (Variable("X"), Constant("person"))

    def test_terms_pass_through(self):
        x = Variable("X")
        assert member(x, "c").args[0] is x

    def test_all_constructors_produce_valid_pfl(self):
        atoms = [
            member("o", "c"),
            sub("c", "d"),
            data("o", "a", "v"),
            type_("o", "a", "t"),
            mandatory("a", "o"),
            funct("a", "o"),
        ]
        for atom in atoms:
            validate_pfl_atom(atom)

    def test_mandatory_argument_order_is_attribute_first(self):
        """The paper writes mandatory(A, O) — attribute first."""
        atom = mandatory("age", "person")
        assert atom.args == (Constant("age"), Constant("person"))

    def test_rejects_uncoercible(self):
        with pytest.raises(TypeError):
            member(3.14, "c")  # type: ignore[arg-type]
