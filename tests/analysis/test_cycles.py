"""Unit tests for mandatory-cycle detection and termination prediction."""

import pytest

from repro.analysis.cycles import (
    find_mandatory_cycles,
    has_mandatory_cycle,
    predict_chase_termination,
    probe_termination,
)
from repro.core.atoms import data, funct, mandatory, member, sub, type_
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

A, B, T, U, V, O = (Variable(n) for n in "A B T U V O".split())


class TestCycleDetection:
    def test_self_loop(self):
        atoms = [mandatory(A, T), type_(T, A, T)]
        cycles = find_mandatory_cycles(atoms)
        assert len(cycles) == 1
        assert len(cycles[0]) == 1

    def test_two_cycle(self):
        atoms = [
            mandatory(A, T),
            type_(T, A, U),
            mandatory(B, U),
            type_(U, B, T),
        ]
        cycles = find_mandatory_cycles(atoms)
        assert len(cycles) == 1
        assert len(cycles[0]) == 2

    def test_mandatory_without_matching_type_no_cycle(self):
        atoms = [mandatory(A, T), type_(T, B, T)]  # different attribute
        assert not has_mandatory_cycle(atoms)

    def test_type_chain_without_mandatory_no_cycle(self):
        atoms = [type_(T, A, U), type_(U, B, T)]
        assert not has_mandatory_cycle(atoms)

    def test_open_chain_no_cycle(self):
        atoms = [mandatory(A, T), type_(T, A, U), mandatory(B, U), type_(U, B, V)]
        assert not has_mandatory_cycle(atoms)

    def test_each_simple_cycle_reported_once(self):
        atoms = [
            mandatory(A, T),
            type_(T, A, U),
            mandatory(B, U),
            type_(U, B, T),
            mandatory(A, U),   # a second edge U -> T via A? needs type(U,A,T)
        ]
        cycles = find_mandatory_cycles(atoms)
        assert len(cycles) == 1

    def test_two_disjoint_cycles(self):
        c1, c2 = Constant("c1"), Constant("c2")
        a1, a2 = Constant("a1"), Constant("a2")
        atoms = [
            mandatory(a1, c1),
            type_(c1, a1, c1),
            mandatory(a2, c2),
            type_(c2, a2, c2),
        ]
        assert len(find_mandatory_cycles(atoms)) == 2

    def test_max_cycles_caps_enumeration(self):
        c1, c2 = Constant("c1"), Constant("c2")
        a1, a2 = Constant("a1"), Constant("a2")
        atoms = [
            mandatory(a1, c1),
            type_(c1, a1, c1),
            mandatory(a2, c2),
            type_(c2, a2, c2),
        ]
        assert len(find_mandatory_cycles(atoms, max_cycles=1)) == 1

    def test_cycle_str_shows_hops(self):
        cycles = find_mandatory_cycles([mandatory(A, T), type_(T, A, T)])
        assert "-[A]->" in str(cycles[0])


class TestTerminationPrediction:
    def test_example2_not_guaranteed(self, example2_query):
        report = predict_chase_termination(example2_query)
        assert not report.guaranteed_terminating
        assert report.cycles

    def test_acyclic_guaranteed(self, example1_query):
        report = predict_chase_termination(example1_query)
        assert report.guaranteed_terminating

    def test_cycle_visible_only_after_saturation(self):
        """The cycle emerges at level 0 via rho9 (mandatory inheritance)."""
        q = ConjunctiveQuery(
            "q",
            (),
            (
                mandatory(A, U),     # on the superclass
                sub(T, U),           # T subclass of U
                type_(T, A, T),      # typed back into T
            ),
        )
        # No syntactic cycle in the body itself...
        assert not has_mandatory_cycle(q.body)
        # ...but rho9 derives mandatory(A, T), closing the loop.
        report = predict_chase_termination(q)
        assert not report.guaranteed_terminating

    def test_failed_chase_counts_as_terminating(self):
        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, Constant("x")),
                data(O, A, Constant("y")),
                funct(A, O),
            ),
        )
        report = predict_chase_termination(q)
        assert report.failed and report.guaranteed_terminating

    def test_report_str(self, example2_query):
        text = str(predict_chase_termination(example2_query))
        assert "cycles" in text


class TestProbe:
    def test_probe_agrees_on_acyclic(self, example1_query):
        assert probe_termination(example1_query)

    def test_probe_detects_infinite(self, example2_query):
        assert not probe_termination(example2_query, max_level=12)

    @pytest.mark.parametrize("seed", range(8))
    def test_prediction_sound_for_guaranteed(self, seed):
        """guaranteed_terminating=True must imply the probe saturates."""
        from repro.workloads import random_query

        q = random_query(seed, n_atoms=5)
        report = predict_chase_termination(q)
        if report.guaranteed_terminating and not report.failed:
            assert probe_termination(q, max_level=24)
