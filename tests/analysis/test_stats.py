"""Unit tests for chase statistics and the locality checker."""

from repro.analysis.stats import check_locality, collect_chase_stats
from repro.chase.engine import chase
from repro.chase.graph import ChaseGraph
from repro.core.atoms import data, funct, member
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

O, A, C = Variable("O"), Variable("A"), Variable("C")


class TestCollectStats:
    def test_counts_match_instance(self, example2_query):
        result = chase(example2_query, max_level=8)
        stats = collect_chase_stats(result)
        assert stats.total_conjuncts == result.size()
        assert stats.max_level == result.level_reached
        assert sum(stats.conjuncts_per_level.values()) == stats.total_conjuncts
        assert sum(stats.conjuncts_per_predicate.values()) == stats.total_conjuncts

    def test_initial_rule_counted(self, example2_query):
        result = chase(example2_query, max_level=4)
        stats = collect_chase_stats(result)
        assert stats.conjuncts_per_rule["initial"] == example2_query.size

    def test_growth_series_cumulative(self, example2_query):
        result = chase(example2_query, max_level=6)
        stats = collect_chase_stats(result)
        series = stats.growth_per_level()
        assert series[0][0] == 0
        assert series[-1][1] == stats.total_conjuncts
        counts = [n for _, n in series]
        assert counts == sorted(counts)

    def test_failed_chase_stats(self):
        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, Constant("x")),
                data(O, A, Constant("y")),
                funct(A, O),
            ),
        )
        stats = collect_chase_stats(chase(q))
        assert stats.failed and stats.total_conjuncts == 0

    def test_str_rendering(self, example2_query):
        stats = collect_chase_stats(chase(example2_query, max_level=4))
        text = str(stats)
        assert "conjuncts" in text and "per level" in text


class TestLocality:
    def test_example2_no_violations(self, example2_query):
        result = chase(example2_query, max_level=10, track_graph=True)
        graph = ChaseGraph.from_result(result)
        assert check_locality(graph) == []

    def test_paper_corpus_no_violations(self):
        from repro.workloads import PAPER_QUERIES

        for query in PAPER_QUERIES:
            result = chase(query, max_level=8, track_graph=True)
            if result.failed:
                continue
            graph = ChaseGraph.from_result(result)
            assert check_locality(graph) == [], f"violation for {query.name}"

    def test_saturated_acyclic_graph_trivially_local(self):
        q = ConjunctiveQuery("q", (), (member(O, C),))
        graph = ChaseGraph.from_result(chase(q, track_graph=True))
        assert check_locality(graph) == []
