"""Unit tests for the dependency model and the Sigma_FL rule set."""

import pytest

from repro.core.atoms import data, funct, mandatory, member, sub, type_
from repro.core.errors import QueryError
from repro.core.terms import Variable
from repro.dependencies import (
    EGD,
    RHO1,
    RHO4,
    RHO5,
    SIGMA_FL,
    SIGMA_FL_FULL_TGDS,
    SIGMA_FL_MINUS,
    SIGMA_FL_TGDS,
    TGD,
    rule_by_label,
    sigma_fl_datalog_program,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestTGD:
    def test_full_tgd_has_no_existentials(self):
        tgd = TGD(member(X, Y), (member(X, Z), sub(Z, Y)))
        assert tgd.is_full
        assert tgd.existential_vars == ()

    def test_existential_detected(self):
        tgd = TGD(data(X, Y, Z), (mandatory(Y, X),))
        assert not tgd.is_full
        assert tgd.existential_vars == (Z,)

    def test_frontier(self):
        tgd = TGD(data(X, Y, Z), (mandatory(Y, X),))
        assert tgd.frontier() == {X, Y}

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            TGD(member(X, Y), ())

    def test_str_mentions_exists_for_existential(self):
        tgd = TGD(data(X, Y, Z), (mandatory(Y, X),), label="t")
        assert "exists Z" in str(tgd)


class TestEGD:
    def test_head_variables_must_be_in_body(self):
        with pytest.raises(QueryError):
            EGD((data(X, Y, Z),), Z, Variable("W"))

    def test_valid_egd(self):
        egd = EGD((data(X, Y, Z), data(X, Y, Variable("W"))), Z, Variable("W"))
        assert egd.left == Z

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            EGD((), X, Y)


class TestSigmaFL:
    def test_twelve_rules(self):
        assert len(SIGMA_FL) == 12

    def test_labels_are_paper_numbering(self):
        assert [d.label for d in SIGMA_FL] == [f"rho{i}" for i in range(1, 13)]

    def test_exactly_one_egd(self):
        egds = [d for d in SIGMA_FL if isinstance(d, EGD)]
        assert egds == [RHO4]

    def test_exactly_one_existential_tgd(self):
        existential = [d for d in SIGMA_FL_TGDS if not d.is_full]
        assert existential == [RHO5]

    def test_ten_full_tgds(self):
        assert len(SIGMA_FL_FULL_TGDS) == 10

    def test_sigma_minus_excludes_rho5_only(self):
        assert len(SIGMA_FL_MINUS) == 11
        assert RHO5 not in SIGMA_FL_MINUS
        assert RHO4 in SIGMA_FL_MINUS

    def test_rho1_shape_matches_paper(self):
        """member(V,T) :- type(O,A,T), data(O,A,V)."""
        assert RHO1.head.predicate == "member"
        assert [a.predicate for a in RHO1.body] == ["type", "data"]
        # The value position of data is the member position 0.
        assert RHO1.head.args[0] == RHO1.body[1].args[2]
        # The type position of type is the class position 1.
        assert RHO1.head.args[1] == RHO1.body[0].args[2]

    def test_rho4_equates_the_two_values(self):
        assert RHO4.left != RHO4.right
        value_positions = {RHO4.body[0].args[2], RHO4.body[1].args[2]}
        assert value_positions == {RHO4.left, RHO4.right}

    def test_rho5_invents_the_value(self):
        assert RHO5.head.predicate == "data"
        assert RHO5.existential_vars == (RHO5.head.args[2],)

    def test_rule_by_label(self):
        assert rule_by_label("rho7") is SIGMA_FL[6]

    def test_rule_by_label_unknown(self):
        with pytest.raises(KeyError):
            rule_by_label("rho99")

    def test_datalog_program_has_ten_rules(self):
        program = sigma_fl_datalog_program()
        assert len(program) == 10
        assert program.rules_defining("data") == ()  # rho5 is not Datalog

    @pytest.mark.parametrize(
        "label,head_pred,body_preds",
        [
            ("rho1", "member", ["type", "data"]),
            ("rho2", "sub", ["sub", "sub"]),
            ("rho3", "member", ["member", "sub"]),
            ("rho6", "type", ["member", "type"]),
            ("rho7", "type", ["sub", "type"]),
            ("rho8", "type", ["type", "sub"]),
            ("rho9", "mandatory", ["sub", "mandatory"]),
            ("rho10", "mandatory", ["member", "mandatory"]),
            ("rho11", "funct", ["sub", "funct"]),
            ("rho12", "funct", ["member", "funct"]),
        ],
    )
    def test_full_tgd_shapes(self, label, head_pred, body_preds):
        rule = rule_by_label(label)
        assert isinstance(rule, TGD)
        assert rule.head.predicate == head_pred
        assert [a.predicate for a in rule.body] == body_preds
