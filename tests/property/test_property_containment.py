"""Property-based tests for containment semantics.

The most important one is *soundness against evaluation*: whenever the
checker says ``q1 ⊆_Sigma q2``, evaluating both queries over an actual
Sigma_FL-closed database must give ``q1(B) ⊆ q2(B)``.  Databases are
random generated ontologies without mandatory attributes (so that the
Sigma_FL closure is finite and the materialisation is a *complete* legal
database, not a truncated one).
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.containment import contained_classic, is_contained
from repro.core.errors import ChaseBudgetExceeded
from repro.flogic.kb import KnowledgeBase
from repro.homomorphism.search import all_homomorphisms
from repro.workloads import OntologyParams, QueryGenerator, generate_ontology, specialize

from .strategies import conjunctive_queries

SETTINGS = settings(max_examples=25, deadline=None)


def checked(q1, q2):
    try:
        return is_contained(q1, q2)
    except ChaseBudgetExceeded:
        assume(False)


class TestAlgebraicLaws:
    @SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_reflexivity(self, query):
        assert checked(query, query).contained

    @SETTINGS
    @given(conjunctive_queries(max_atoms=3), st.integers(0, 1000))
    def test_classic_implies_sigma(self, query, seed):
        rng = random.Random(seed)
        spec = specialize(query, rng=rng)
        if contained_classic(spec, query).contained:
            assert checked(spec, query).contained

    @SETTINGS
    @given(conjunctive_queries(max_atoms=3), st.integers(0, 1000))
    def test_specialisation_contained(self, query, seed):
        rng = random.Random(seed)
        spec = specialize(query, rng=rng)
        assert checked(spec, query).contained

    @SETTINGS
    @given(conjunctive_queries(max_atoms=3), st.integers(0, 500))
    def test_transitivity_spot_check(self, query, seed):
        rng = random.Random(seed)
        mid = specialize(query, rng=rng)
        low = specialize(mid, rng=rng)
        # low ⊆ mid ⊆ query by construction; check low ⊆ query directly.
        assert checked(low, query).contained


class TestSoundnessAgainstEvaluation:
    """is_contained verdicts must agree with evaluation on real databases."""

    def _evaluate(self, query, index):
        return {
            tuple(sigma.apply_term(t) for t in query.head)
            for sigma in all_homomorphisms(query, index)
        }

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_positive_verdicts_sound_on_random_databases(self, pair_seed, db_seed):
        gen = QueryGenerator(pair_seed)
        q1, q2 = gen.containment_pair()
        result = checked(q1, q2)
        assume(result.contained)
        # A finite, complete Sigma_FL database: no mandatory attributes.
        ontology = generate_ontology(
            db_seed,
            OntologyParams(mandatory_probability=0.0, n_classes=5, n_objects=6),
        )
        kb = KnowledgeBase()
        for atom in ontology.atoms:
            kb.add(atom)
        assume(kb.is_consistent())
        index = kb.materialise()
        answers1 = self._evaluate(q1, index)
        answers2 = self._evaluate(q2, index)
        assert answers1 <= answers2, (
            f"containment verdict unsound: {q1} vs {q2} on seed {db_seed}"
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_paper_pairs_sound_on_random_databases(self, db_seed):
        from repro.workloads import PAPER_CONTAINMENT_PAIRS

        ontology = generate_ontology(
            db_seed,
            OntologyParams(mandatory_probability=0.0, n_classes=5, n_objects=6),
        )
        kb = KnowledgeBase()
        for atom in ontology.atoms:
            kb.add(atom)
        assume(kb.is_consistent())
        index = kb.materialise()
        for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS:
            if expected:
                assert self._evaluate(q1, index) <= self._evaluate(q2, index)
