"""Property-based tests for the core kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.errors import UnificationError
from repro.core.substitution import Substitution, match_atom, unify_atoms
from repro.core.terms import Variable
from repro.datalog.index import FactIndex
from repro.datalog.matching import match_conjunction

from .strategies import (
    conjunctive_queries,
    ground_pfl_atoms,
    pfl_atoms,
    substitutions,
    terms,
    variables,
)


class TestSubstitutionLaws:
    @given(substitutions(), pfl_atoms())
    def test_application_preserves_shape(self, sigma, atom):
        image = sigma.apply_atom(atom)
        assert image.predicate == atom.predicate
        assert image.arity == atom.arity

    @given(substitutions(), substitutions(), pfl_atoms())
    def test_compose_is_sequential_application(self, s1, s2, atom):
        assert s1.compose(s2).apply_atom(atom) == s2.apply_atom(s1.apply_atom(atom))

    @given(substitutions(), pfl_atoms())
    def test_empty_compose_identity(self, sigma, atom):
        lhs = sigma.compose(Substitution.EMPTY)
        rhs = Substitution.EMPTY.compose(sigma)
        assert lhs.apply_atom(atom) == rhs.apply_atom(atom) == sigma.apply_atom(atom)

    @given(substitutions())
    def test_restrict_subset_of_domain(self, sigma):
        sub = sigma.restrict(list(sigma.domain())[:1])
        assert sub.domain() <= sigma.domain()


class TestMatchingProperties:
    @given(pfl_atoms(), ground_pfl_atoms())
    def test_match_is_sound(self, pattern, fact):
        sigma = match_atom(pattern, fact)
        if sigma is not None:
            assert sigma.apply_atom(pattern) == fact

    @given(ground_pfl_atoms())
    def test_ground_atom_matches_itself_empty(self, fact):
        sigma = match_atom(fact, fact)
        assert sigma is not None
        assert sigma.apply_atom(fact) == fact

    @given(pfl_atoms(), pfl_atoms())
    def test_unify_produces_unifier(self, left, right):
        try:
            sigma = unify_atoms(left, right)
        except UnificationError:
            return
        assert sigma.apply_atom(left) == sigma.apply_atom(right)

    @given(pfl_atoms(), pfl_atoms())
    def test_unifier_idempotent(self, left, right):
        try:
            sigma = unify_atoms(left, right)
        except UnificationError:
            return
        once = sigma.apply_atom(left)
        assert sigma.apply_atom(once) == once


class TestIndexProperties:
    @given(st.lists(ground_pfl_atoms(), max_size=20))
    def test_index_models_a_set(self, atoms):
        index = FactIndex(atoms)
        assert set(index) == set(atoms)
        assert len(index) == len(set(atoms))

    @given(st.lists(ground_pfl_atoms(), max_size=15), st.lists(ground_pfl_atoms(), max_size=5))
    def test_discard_inverse_of_add(self, base, removed):
        index = FactIndex(base)
        for atom in removed:
            index.discard(atom)
        assert set(index) == set(base) - set(removed)

    @given(st.lists(ground_pfl_atoms(), max_size=20), pfl_atoms())
    def test_candidates_lose_no_matches(self, atoms, pattern):
        """Index-pruned matching equals brute force."""
        index = FactIndex(atoms)
        via_candidates = {
            fact
            for fact in index.candidates(pattern)
            if match_atom(pattern, fact) is not None
        }
        brute = {fact for fact in set(atoms) if match_atom(pattern, fact) is not None}
        assert via_candidates == brute


class TestConjunctionProperties:
    @settings(max_examples=40)
    @given(conjunctive_queries(max_atoms=3), st.lists(ground_pfl_atoms(), max_size=12))
    def test_every_match_maps_body_into_index(self, query, atoms):
        index = FactIndex(atoms)
        for sigma in match_conjunction(query.body, index):
            for atom in query.body:
                assert sigma.apply_atom(atom) in index

    @settings(max_examples=40)
    @given(conjunctive_queries(max_atoms=2), st.lists(ground_pfl_atoms(), max_size=10))
    def test_reorder_invariance(self, query, atoms):
        index = FactIndex(atoms)
        fast = {
            tuple(sorted((v.name, str(t)) for v, t in s.items()))
            for s in match_conjunction(query.body, index, reorder=True)
        }
        slow = {
            tuple(sorted((v.name, str(t)) for v, t in s.items()))
            for s in match_conjunction(query.body, index, reorder=False)
        }
        assert fast == slow
