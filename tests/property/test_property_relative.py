"""Property-based tests for schema-relative containment."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.containment import is_contained
from repro.core.errors import ChaseBudgetExceeded
from repro.workloads import OntologyParams, QueryGenerator, generate_ontology

SETTINGS = settings(max_examples=15, deadline=None)


def _schema(seed: int):
    ontology = generate_ontology(
        seed,
        OntologyParams(
            n_classes=5, n_objects=0, mandatory_probability=0.0, n_attributes=3
        ),
    )
    return tuple(
        a for a in ontology.atoms if a.predicate in {"sub", "type", "funct"}
    )


class TestRelativeContainmentProperties:
    @SETTINGS
    @given(st.integers(0, 3000), st.integers(0, 3000))
    def test_absolute_implies_relative(self, pair_seed, schema_seed):
        """Shrinking the database class can only create containments."""
        q1, q2 = QueryGenerator(pair_seed).containment_pair()
        schema = _schema(schema_seed)
        try:
            absolute = is_contained(q1, q2).contained
            relative = is_contained(q1, q2, schema=schema).contained
        except ChaseBudgetExceeded:
            assume(False)
        if absolute:
            assert relative

    @SETTINGS
    @given(st.integers(0, 3000), st.integers(0, 3000))
    def test_relative_monotone_in_schema(self, pair_seed, schema_seed):
        """Adding schema atoms never destroys a relative containment."""
        q1, q2 = QueryGenerator(pair_seed).containment_pair()
        schema = _schema(schema_seed)
        half = schema[: len(schema) // 2]
        try:
            with_half = is_contained(q1, q2, schema=half).contained
            with_all = is_contained(q1, q2, schema=schema).contained
        except ChaseBudgetExceeded:
            assume(False)
        if with_half:
            assert with_all

    @SETTINGS
    @given(st.integers(0, 3000))
    def test_relative_reflexive(self, seed):
        gen = QueryGenerator(seed)
        q = gen.query()
        schema = _schema(seed)
        try:
            assert is_contained(q, q, schema=schema).contained
        except ChaseBudgetExceeded:
            assume(False)
