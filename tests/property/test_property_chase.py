"""Property-based tests for chase invariants.

The central invariant: a *saturated* chase result is a model of the
dependency set — no full TGD can derive a new conjunct, the EGD has no
violating pair, and every mandatory attribute has a value (restricted
rho_5 satisfaction).  Hypothesis drives this over random queries.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase.engine import chase
from repro.core.atoms import DATA, FUNCT, MANDATORY
from repro.core.errors import ChaseBudgetExceeded
from repro.datalog.matching import match_conjunction
from repro.dependencies import RHO4, RHO5, SIGMA_FL_FULL_TGDS
from repro.homomorphism.search import find_homomorphism

from .strategies import conjunctive_queries

CHASE_SETTINGS = settings(max_examples=30, deadline=None)


def run_chase(query):
    """Chase with a generous level bound; skip budget blow-ups."""
    try:
        return chase(query, max_level=16, max_steps=20_000)
    except ChaseBudgetExceeded:
        assume(False)


class TestModelProperty:
    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_full_tgds_satisfied_when_saturated(self, query):
        result = run_chase(query)
        assume(not result.failed and result.saturated)
        index = result.instance.index
        for tgd in SIGMA_FL_FULL_TGDS:
            for sigma in match_conjunction(tgd.body, index):
                assert sigma.apply_atom(tgd.head) in index, (
                    f"{tgd.label} violated by {sigma}"
                )

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_egd_satisfied(self, query):
        result = run_chase(query)
        assume(not result.failed)
        index = result.instance.index
        for sigma in match_conjunction(RHO4.body, index):
            assert sigma.apply_term(RHO4.left) == sigma.apply_term(RHO4.right)

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_mandatory_attributes_have_values_when_saturated(self, query):
        result = run_chase(query)
        assume(not result.failed and result.saturated)
        index = result.instance.index
        for fact in index.facts(MANDATORY):
            attr, host = fact.args
            has_value = any(
                d.args[0] == host and d.args[1] == attr for d in index.facts(DATA)
            )
            assert has_value, f"mandatory({attr},{host}) has no data value"


class TestStructuralInvariants:
    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_query_maps_into_own_chase(self, query):
        """Theorem 4's easy direction: q ⊆ q via the chase."""
        result = run_chase(query)
        assume(not result.failed)
        witness = find_homomorphism(
            query, result.instance.index, head_target=result.head
        )
        assert witness is not None

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_levels_within_bound(self, query):
        result = run_chase(query)
        assume(not result.failed)
        assert result.level_reached <= 16
        for atom in result.instance:
            assert 0 <= result.instance.level_of(atom) <= 16

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_chase_deterministic(self, query):
        first = run_chase(query)
        second = run_chase(query)
        if first.failed:
            assert second.failed
        else:
            assert first.atoms() == second.atoms()
            assert first.head == second.head

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=3))
    def test_funct_never_violated_with_two_values(self, query):
        """After the chase, a functional attribute has at most one value."""
        result = run_chase(query)
        assume(not result.failed)
        index = result.instance.index
        functional = {(f.args[0], f.args[1]) for f in index.facts(FUNCT)}
        for attr, host in functional:
            values = {
                d.args[2]
                for d in index.facts(DATA)
                if d.args[0] == host and d.args[1] == attr
            }
            assert len(values) <= 1

    @CHASE_SETTINGS
    @given(conjunctive_queries(max_atoms=3))
    def test_oblivious_contains_restricted(self, query):
        """The oblivious chase derives a superset, up to null renaming.

        We compare sizes per predicate, which is renaming-invariant.
        """
        try:
            restricted = chase(query, max_level=8, max_steps=20_000)
            oblivious = chase(
                query, max_level=8, max_steps=20_000, restricted=False
            )
        except ChaseBudgetExceeded:
            assume(False)
        assume(not restricted.failed and not oblivious.failed)
        for predicate in ("member", "sub", "data", "type", "mandatory", "funct"):
            assert oblivious.instance.index.count(
                predicate
            ) >= restricted.instance.index.count(predicate)
