"""Property-based tests: constructive excision vs bounded-image search."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase import ChaseGraph, chase
from repro.chase.excision import excise
from repro.chase.paths import bounded_image, equivalent
from repro.core.errors import ChaseBudgetExceeded
from repro.workloads import QueryGenParams, QueryGenerator

SETTINGS = settings(max_examples=15, deadline=None)


def cyclic_chase(seed: int, cycle_length: int):
    params = QueryGenParams(
        n_atoms=2 * cycle_length,
        cycle_length=cycle_length,
        head_arity=0,
        constant_probability=0.0,
    )
    query = QueryGenerator(seed, params).query()
    delta = 2 * query.size
    try:
        result = chase(query, max_level=3 * delta, track_graph=True)
    except ChaseBudgetExceeded:
        assume(False)
    assume(not result.failed)
    return query, result, delta


class TestExcisionProperties:
    @SETTINGS
    @given(st.integers(0, 500), st.integers(1, 3))
    def test_excision_succeeds_wherever_search_does(self, seed, cycle_length):
        query, result, delta = cyclic_chase(seed, cycle_length)
        instance = result.instance
        graph = ChaseGraph.from_result(result)
        deep = [a for a in instance if instance.level_of(a) > delta]
        for atom in deep:
            searched = bounded_image(instance, atom, delta)
            constructed = excise(graph, instance, atom, delta)
            assert (searched is None) == (constructed is None)
            if constructed is not None:
                assert graph.level(constructed.result) <= delta
                assert equivalent(atom, constructed.result)

    @SETTINGS
    @given(st.integers(0, 500), st.integers(1, 2))
    def test_excision_levels_strictly_decrease(self, seed, cycle_length):
        query, result, delta = cyclic_chase(seed, cycle_length)
        instance = result.instance
        graph = ChaseGraph.from_result(result)
        deep = [a for a in instance if instance.level_of(a) > delta]
        assume(deep)
        atom = max(deep, key=instance.level_of)
        trace = excise(graph, instance, atom, delta)
        assume(trace is not None)
        levels = [graph.level(trace.start)] + [
            graph.level(clip.after) for clip in trace.clips
        ]
        assert all(a > b for a, b in zip(levels, levels[1:]))

    @SETTINGS
    @given(st.integers(0, 500))
    def test_clip_pairs_are_equivalent(self, seed):
        query, result, delta = cyclic_chase(seed, 2)
        instance = result.instance
        graph = ChaseGraph.from_result(result)
        deep = [a for a in instance if instance.level_of(a) > delta]
        assume(deep)
        trace = excise(graph, instance, deep[-1], delta)
        assume(trace is not None and trace.clips)
        for clip in trace.clips:
            assert equivalent(clip.upper, clip.lower)
            assert clip.levels_saved > 0
