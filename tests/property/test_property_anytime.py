"""Property tests: the anytime schedule decides the monolithic relation.

The anytime pipeline is an optimisation, not a semantics change — over
random workloads it must return the same verdict, for the same reason,
with an independently verifiable certificate.  A dedicated regression
pins the other half of the contract: early exit is a *positive-side*
shortcut and never fires on known non-containments (the paper's
Example 1 negative direction and the E10 baseline-gap corpus).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.containment.bounded import ContainmentChecker
from repro.core.errors import ChaseBudgetExceeded
from repro.workloads import QueryGenerator
from repro.workloads.corpus import PAPER_CONTAINMENT_PAIRS

SETTINGS = settings(max_examples=25, deadline=None)


def both_schedules(q1, q2):
    try:
        anytime = ContainmentChecker().check(q1, q2)
        monolithic = ContainmentChecker(anytime=False).check(q1, q2)
    except ChaseBudgetExceeded:
        assume(False)
    return anytime, monolithic


class TestScheduleEquivalenceOnRandomWorkloads:
    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_verdict_reason_and_certificate_agree(self, pair_seed):
        q1, q2 = QueryGenerator(pair_seed).containment_pair()
        anytime, monolithic = both_schedules(q1, q2)
        assert anytime.contained == monolithic.contained
        assert anytime.reason == monolithic.reason
        assert anytime.verify()
        assert monolithic.verify()

    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_positive_witnesses_respect_the_witness_level(self, pair_seed):
        q1, q2 = QueryGenerator(pair_seed).containment_pair()
        anytime, _ = both_schedules(q1, q2)
        assume(anytime.contained and anytime.witness is not None)
        instance = anytime.chase_result.instance
        assert instance is not None
        # Every conjunct of the witness image must already live in the
        # prefix the early exit stopped at.
        for atom in anytime.q2.body:
            image = anytime.witness.apply_atom(atom)
            assert instance.level_of(image) <= anytime.witness_level

    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_levels_chased_never_exceeds_bound(self, pair_seed):
        q1, q2 = QueryGenerator(pair_seed).containment_pair()
        anytime, _ = both_schedules(q1, q2)
        assert anytime.levels_chased is not None
        assert anytime.levels_chased <= anytime.level_bound


class TestEarlyExitNeverFiresOnNonContainments:
    """Known negatives must always pay the full refutation, in both modes."""

    def test_example1_negative_direction(self):
        negatives = [
            (q1, q2) for q1, q2, sigma, _ in PAPER_CONTAINMENT_PAIRS if not sigma
        ]
        assert negatives, "corpus must include the paper's negative directions"
        for q1, q2 in negatives:
            result = ContainmentChecker().check(q1, q2)
            assert not result.contained
            assert result.witness_level is None
            assert not result.early_exit

    def test_e10_gap_corpus(self):
        # The E10 experiment's corpus: the paper pairs plus 40 random
        # pairs from the seed-17 generator, decided as one batch.
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
        gen = QueryGenerator(17)
        for _ in range(40):
            pairs.append(gen.containment_pair())
        anytime = ContainmentChecker().check_all(pairs)
        monolithic = ContainmentChecker().check_all(pairs, anytime=False)
        for a, m in zip(anytime, monolithic):
            assert a.contained == m.contained
            assert a.reason == m.reason
            if not a.contained:
                assert a.witness_level is None
                assert not a.early_exit
            assert a.verify()
