"""Property tests: incremental chase extension ≡ fresh chase.

The tentpole invariant of resumable sessions: for any query and bounds
``b < b'``, chasing to ``b`` and then extending the same session to
``b'`` must produce an instance atom-for-atom equal — up to a bijective
renaming of the invented nulls — to a fresh chase run straight to ``b'``.
Null *indices* may differ (the resumed run burns indices in a different
order than the straight run), which is exactly why equality is checked
modulo a null bijection.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseConfig, ChaseEngine
from repro.core.errors import ChaseBudgetExceeded
from repro.core.terms import Null
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_QUERIES
from repro.workloads.query_gen import QueryGenerator

from .strategies import conjunctive_queries

RUN_SETTINGS = settings(max_examples=25, deadline=None)

MAX_STEPS = 20_000


def _shape(atom):
    """The atom with every null collapsed to a placeholder."""
    return (
        atom.predicate,
        tuple("⊥" if isinstance(t, Null) else t for t in atom.args),
    )


def _match_atom(a, b, fwd, bwd):
    """Extend the null bijection so *a* maps to *b*, or return None."""
    if a.predicate != b.predicate or len(a.args) != len(b.args):
        return None
    fwd, bwd = dict(fwd), dict(bwd)
    for s, t in zip(a.args, b.args):
        s_null, t_null = isinstance(s, Null), isinstance(t, Null)
        if s_null != t_null:
            return None
        if not s_null:
            if s != t:
                return None
            continue
        if fwd.get(s, t) != t or bwd.get(t, s) != s:
            return None
        fwd[s], bwd[t] = t, s
    return fwd, bwd


def equal_up_to_null_renaming(atoms_a, atoms_b) -> bool:
    """True iff some null bijection maps one atom set onto the other."""
    a, b = sorted(atoms_a, key=str), sorted(atoms_b, key=str)
    if len(a) != len(b):
        return False
    if sorted(map(_shape, a), key=str) != sorted(map(_shape, b), key=str):
        return False

    def backtrack(i, remaining, fwd, bwd):
        if i == len(a):
            return not remaining
        for j, cand in enumerate(remaining):
            extended = _match_atom(a[i], cand, fwd, bwd)
            if extended is None:
                continue
            if backtrack(i + 1, remaining[:j] + remaining[j + 1 :], *extended):
                return True
        return False

    return backtrack(0, b, {}, {})


def _chase_pair(query, b, b_prime):
    """(incremental run at b→b', fresh run at b') or None on budget blowup."""
    try:
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        session = engine.start(query)
        session.extend_to(b)
        session.extend_to(b_prime)
        fresh_engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        fresh = fresh_engine.start(query)
        fresh.extend_to(b_prime)
    except ChaseBudgetExceeded:
        return None
    return session, fresh


def assert_equivalent(query, b, b_prime, *, hypothesis_driven=True):
    pair = _chase_pair(query, b, b_prime)
    if pair is None:
        if hypothesis_driven:
            assume(False)  # discard budget blowups inside hypothesis runs
        raise AssertionError(f"chase budget exceeded on corpus query {query}")
    session, fresh = pair
    assert session.failed == fresh.failed
    if session.failed:
        return
    incremental = session.result().instance
    straight = fresh.result().instance
    assert equal_up_to_null_renaming(
        incremental.index.to_frozenset(), straight.index.to_frozenset()
    ), (
        f"extend_to({b})→extend_to({b_prime}) diverged from a fresh chase "
        f"at {b_prime} on {query}"
    )


class TestHelperSanity:
    def test_identical_sets_match(self):
        atoms = set(EXAMPLE2_QUERY.body)
        assert equal_up_to_null_renaming(atoms, atoms)

    def test_different_sizes_do_not_match(self):
        atoms = list(EXAMPLE2_QUERY.body)
        assert not equal_up_to_null_renaming(atoms, atoms[:-1])

    def test_null_permutation_matches(self):
        from repro.core.atoms import data, sub

        n1, n2, n3 = Null(1), Null(2), Null(3)
        a = {data(n1, n2, n3), sub(n1, n2)}
        b = {data(n3, n1, n2), sub(n3, n1)}
        assert equal_up_to_null_renaming(a, b)

    def test_inconsistent_null_sharing_rejected(self):
        from repro.core.atoms import sub

        n1, n2, n3 = Null(1), Null(2), Null(3)
        a = {sub(n1, n1)}  # one null, twice
        b = {sub(n2, n3)}  # two distinct nulls
        assert not equal_up_to_null_renaming(a, b)


class TestIncrementalEqualsFresh:
    @RUN_SETTINGS
    @given(conjunctive_queries(max_atoms=4), st.integers(0, 3), st.integers(1, 5))
    def test_random_hypothesis_queries(self, query, b, delta):
        assert_equivalent(query, b, b + delta)

    @RUN_SETTINGS
    @given(st.integers(0, 2 ** 31), st.integers(0, 3), st.integers(1, 4))
    def test_generated_corpus_queries(self, seed, b, delta):
        query = QueryGenerator(seed).query()
        assert_equivalent(query, b, b + delta)

    def test_paper_corpus_queries(self):
        for query in PAPER_QUERIES:
            assert_equivalent(query, 2, 6, hypothesis_driven=False)

    def test_example2_deep_extension(self):
        assert_equivalent(EXAMPLE2_QUERY, 1, 10, hypothesis_driven=False)

    def test_multi_step_extension_chain(self):
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        session = engine.start(EXAMPLE2_QUERY)
        for bound in (1, 2, 4, 7, 11):
            session.extend_to(bound)
        fresh_engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        fresh = fresh_engine.start(EXAMPLE2_QUERY)
        fresh.extend_to(11)
        assert equal_up_to_null_renaming(
            session.result().instance.index.to_frozenset(),
            fresh.result().instance.index.to_frozenset(),
        )
