"""Property tests: persist-then-resume ≡ fresh chase (up to null renaming).

The persistent-tier analogue of ``test_property_chase_run``: for any query
and bounds ``b < b'``, chasing to ``b``, snapshotting through the on-disk
store, hydrating into a *new* engine and extending the resumed run to
``b'`` must produce an instance equal — modulo a bijective renaming of the
invented nulls — to a fresh chase straight to ``b'``.  This is the
round-trip the restarted :mod:`repro.serve` fleet and the zero-pickle pool
workers both rely on.
"""

import tempfile

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseConfig, ChaseEngine, ChaseRun
from repro.core.errors import ChaseBudgetExceeded
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.store import SnapshotStore, dependency_fingerprint, key_digest
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_QUERIES
from repro.workloads.query_gen import QueryGenerator

from .strategies import conjunctive_queries
from .test_property_chase_run import equal_up_to_null_renaming

RUN_SETTINGS = settings(max_examples=25, deadline=None)

MAX_STEPS = 20_000

_FINGERPRINT = dependency_fingerprint(SIGMA_FL)


def _resume_pair(query, b, b_prime):
    """(resumed-from-disk run at b', fresh run at b') or None on blowup."""
    try:
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        first = engine.start(query)
        first.extend_to(b)
        digest = key_digest(query.canonical_key(), _FINGERPRINT)
        with tempfile.TemporaryDirectory() as tmp:
            store = SnapshotStore(tmp)
            store.save(digest, first.snapshot_state())
            snap = store.load(digest)
            store.close()
        # A brand-new engine, as a restarted process would build.
        resumed_engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        resumed = ChaseRun.from_snapshot(resumed_engine, query, snap)
        resumed.extend_to(b_prime)
        fresh_engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=MAX_STEPS))
        fresh = fresh_engine.start(query)
        fresh.extend_to(b_prime)
    except ChaseBudgetExceeded:
        return None
    return resumed, fresh


def assert_resume_equivalent(query, b, b_prime, *, hypothesis_driven=True):
    pair = _resume_pair(query, b, b_prime)
    if pair is None:
        if hypothesis_driven:
            assume(False)  # discard budget blowups inside hypothesis runs
        raise AssertionError(f"chase budget exceeded on corpus query {query}")
    resumed, fresh = pair
    assert resumed.failed == fresh.failed
    if resumed.failed:
        return
    # Saturated runs freeze their bound wherever saturation struck, which
    # may differ between the two schedules — the instances are what must
    # agree, not the level counter.
    assert resumed.saturated == fresh.saturated
    assert equal_up_to_null_renaming(
        set(resumed.instance), set(fresh.instance)
    ), (
        f"persist@{b} → hydrate → extend_to({b_prime}) diverged from a "
        f"fresh chase at {b_prime} on {query}"
    )


class TestPersistedResumeEqualsFresh:
    @RUN_SETTINGS
    @given(conjunctive_queries(max_atoms=4), st.integers(0, 3), st.integers(1, 5))
    def test_random_hypothesis_queries(self, query, b, delta):
        assert_resume_equivalent(query, b, b + delta)

    @RUN_SETTINGS
    @given(st.integers(0, 2 ** 31), st.integers(0, 3), st.integers(1, 4))
    def test_generated_corpus_queries(self, seed, b, delta):
        query = QueryGenerator(seed).query()
        assert_resume_equivalent(query, b, b + delta)

    def test_paper_corpus_queries(self):
        for query in PAPER_QUERIES:
            assert_resume_equivalent(query, 2, 6, hypothesis_driven=False)

    def test_example2_deep_resume(self):
        assert_resume_equivalent(EXAMPLE2_QUERY, 1, 10, hypothesis_driven=False)
