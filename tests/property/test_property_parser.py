"""Property-based round-trip tests for the language front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flogic.encoding import decode_atom, encode_program, encode_rule
from repro.flogic.parser import parse_program, parse_statement
from repro.workloads import OntologyParams, generate_ontology

from .strategies import conjunctive_queries, ground_pfl_atoms


class TestAtomRoundTrip:
    @given(st.lists(ground_pfl_atoms(), min_size=1, max_size=10, unique=True))
    def test_decode_parse_encode_identity(self, atoms):
        """Rendering atoms as F-logic and re-encoding them is lossless.

        Atoms whose terms are nulls are excluded by construction in the
        strategy?  No — nulls render as `_v1`, which re-parse as variables
        and are rejected in facts, so we filter them here.
        """
        printable = [a for a in atoms if not a.nulls()]
        if not printable:
            return
        text = "\n".join(f"{decode_atom(a)}." for a in printable)
        facts, _, _ = encode_program(parse_program(text))
        assert set(facts) == set(printable)

    @given(st.integers(0, 200))
    def test_ontology_roundtrip(self, seed):
        ontology = generate_ontology(
            seed, OntologyParams(n_classes=4, n_objects=4, n_attributes=3)
        )
        facts, _, _ = encode_program(parse_program(ontology.to_flogic()))
        assert set(facts) == set(ontology.atoms)


class TestQueryRoundTrip:
    @settings(max_examples=50)
    @given(conjunctive_queries(max_atoms=4))
    def test_str_reparses_to_same_query(self, query):
        """str(ConjunctiveQuery) is valid F-logic rule syntax over P_FL.

        Queries whose head is empty print as `h() :- ...` which the
        grammar also accepts.
        """
        statement = parse_statement(str(query))
        reencoded = encode_rule(statement)
        assert reencoded.name == query.name
        assert reencoded.head == query.head
        assert tuple(reencoded.body) == tuple(query.body)
