"""Property-based tests for minimisation, unions and classification."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.containment import is_contained, minimize_query
from repro.core.errors import ChaseBudgetExceeded
from repro.extensions import UnionQuery, are_equivalent, ucq_contained
from repro.flogic.kb import KnowledgeBase
from repro.homomorphism.search import all_homomorphisms
from repro.workloads import OntologyParams, QueryGenerator, generate_ontology

from .strategies import conjunctive_queries

SETTINGS = settings(max_examples=20, deadline=None)


def _evaluate(query, index):
    return {
        tuple(sigma.apply_term(t) for t in query.head)
        for sigma in all_homomorphisms(query, index)
    }


class TestMinimizationProperties:
    @SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_minimised_equivalent_to_original(self, query):
        try:
            result = minimize_query(query)
        except ChaseBudgetExceeded:
            assume(False)
        assert are_equivalent(result.minimized, query)

    @SETTINGS
    @given(conjunctive_queries(max_atoms=4))
    def test_minimised_never_larger(self, query):
        try:
            result = minimize_query(query)
        except ChaseBudgetExceeded:
            assume(False)
        assert result.minimized.size <= query.size
        assert result.minimized.head == query.head

    @settings(max_examples=10, deadline=None)
    @given(conjunctive_queries(max_atoms=3), st.integers(0, 5000))
    def test_minimisation_preserves_answers_on_databases(self, query, db_seed):
        try:
            minimized = minimize_query(query).minimized
        except ChaseBudgetExceeded:
            assume(False)
        ontology = generate_ontology(
            db_seed,
            OntologyParams(mandatory_probability=0.0, n_classes=4, n_objects=5),
        )
        kb = KnowledgeBase()
        for atom in ontology.atoms:
            kb.add(atom)
        assume(kb.is_consistent())
        index = kb.materialise()
        assert _evaluate(query, index) == _evaluate(minimized, index)


class TestUnionProperties:
    @SETTINGS
    @given(st.integers(0, 5000))
    def test_cq_sides_agree_with_plain_checker(self, seed):
        gen = QueryGenerator(seed)
        q1, q2 = gen.containment_pair()
        try:
            plain = bool(is_contained(q1, q2))
            lifted = ucq_contained(q1, q2).contained
        except ChaseBudgetExceeded:
            assume(False)
        assert plain == lifted

    @SETTINGS
    @given(st.integers(0, 5000))
    def test_union_is_monotone_on_the_right(self, seed):
        """Adding a disjunct on the right never breaks containment."""
        gen = QueryGenerator(seed)
        q1, q2 = gen.containment_pair()
        extra = gen.query()
        if extra.arity != q2.arity:
            extra = extra.with_head(extra.head[: q2.arity])
            assume(extra.arity == q2.arity)
        try:
            base = ucq_contained(q1, q2).contained
            widened = ucq_contained(q1, UnionQuery("u", (q2, extra))).contained
        except ChaseBudgetExceeded:
            assume(False)
        if base:
            assert widened

    @SETTINGS
    @given(st.integers(0, 5000))
    def test_left_union_requires_all(self, seed):
        """u1 ⊆ q iff every disjunct of u1 is ⊆ q."""
        gen = QueryGenerator(seed)
        qa, q = gen.containment_pair()
        qb = gen.query()
        if qb.arity != q.arity:
            qb = qb.with_head(qb.head[: q.arity])
            assume(qb.arity == q.arity)
        try:
            union_result = ucq_contained(UnionQuery("u", (qa, qb)), q).contained
            individual = (
                ucq_contained(qa, q).contained and ucq_contained(qb, q).contained
            )
        except ChaseBudgetExceeded:
            assume(False)
        assert union_result == individual
