"""Hypothesis strategies for terms, atoms, substitutions and queries."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.atoms import P_FL_ARITIES, Atom
from repro.core.query import ConjunctiveQuery
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Null, Variable

constants = st.sampled_from([Constant(f"c{i}") for i in range(6)])
variables = st.sampled_from([Variable(f"X{i}") for i in range(6)])
nulls = st.sampled_from([Null(i) for i in range(1, 5)])

terms = st.one_of(constants, variables, nulls)
values = st.one_of(constants, nulls)  # ground terms


@st.composite
def pfl_atoms(draw, term_strategy=terms):
    predicate = draw(st.sampled_from(sorted(P_FL_ARITIES)))
    arity = P_FL_ARITIES[predicate]
    args = tuple(draw(term_strategy) for _ in range(arity))
    return Atom(predicate, args)


@st.composite
def ground_pfl_atoms(draw):
    return draw(pfl_atoms(term_strategy=values))


@st.composite
def substitutions(draw):
    keys = draw(st.lists(variables, unique=True, max_size=4))
    return Substitution({k: draw(terms) for k in keys})


@st.composite
def conjunctive_queries(draw, max_atoms: int = 4):
    body = tuple(
        draw(pfl_atoms(term_strategy=st.one_of(constants, variables)))
        for _ in range(draw(st.integers(1, max_atoms)))
    )
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    if body_vars:
        arity = draw(st.integers(0, min(2, len(body_vars))))
        head = tuple(draw(st.permutations(body_vars))[:arity])
    else:
        head = ()
    return ConjunctiveQuery("h", head, body)
