"""Unit tests for delta-restricted homomorphism search.

The contract: ``all_homomorphisms_delta(q, index, delta)`` enumerates
exactly the homomorphisms of ``q`` into ``index`` whose image uses at
least one atom of ``delta`` — the embeddings a search over the pre-delta
index could not have produced.  Partitioning the full search this way is
what lets the anytime containment pipeline never repeat level-``k`` work
at level ``k+1``.
"""

from repro.core.atoms import member, sub
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.datalog.index import FactIndex
from repro.datalog.matching import SearchStats, match_conjunction_delta
from repro.homomorphism import (
    all_homomorphisms,
    all_homomorphisms_delta,
    find_homomorphism_delta,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def split_index(old_facts, delta_facts):
    """An index holding old ∪ delta, plus the delta tuple."""
    return FactIndex(list(old_facts) + list(delta_facts)), tuple(delta_facts)


class TestDeltaPartition:
    """old-only homs + delta homs = homs over the union, with no overlap."""

    def homs(self, q, index):
        return set(all_homomorphisms(q, index))

    def delta_homs(self, q, index, delta):
        return set(all_homomorphisms_delta(q, index, delta))

    def test_partitions_the_full_search(self):
        old = [member(a, b), sub(b, c)]
        new = [member(b, c), sub(c, d)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y), sub(Y, Z)))
        full = self.homs(q, union)
        old_only = self.homs(q, FactIndex(old))
        via_delta = self.delta_homs(q, union, delta)
        assert old_only | via_delta == full
        assert old_only.isdisjoint(via_delta)

    def test_every_result_touches_the_delta(self):
        old = [member(a, b), member(b, c)]
        new = [member(c, d)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y), member(Y, Z)))
        for sigma in all_homomorphisms_delta(q, union, delta):
            image = {sigma.apply_atom(atom) for atom in q.body}
            assert image & set(delta)

    def test_empty_delta_yields_nothing(self):
        index = FactIndex([member(a, b), member(b, c)])
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        assert list(all_homomorphisms_delta(q, index, ())) == []

    def test_multi_atom_delta_image_not_duplicated(self):
        # A homomorphism whose image contains TWO delta atoms must be
        # yielded once, not once per delta anchor.
        old = [member(a, b)]
        new = [member(b, c), member(c, d)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y), member(Y, Z)))
        results = list(all_homomorphisms_delta(q, union, delta))
        assert len(results) == len(set(results))
        # b->c->d uses both delta atoms; a->b->c uses one.
        assert len(results) == 2


class TestHeadCondition:
    def test_head_target_filters(self):
        old = [member(a, b)]
        new = [member(b, c)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        hit = find_homomorphism_delta(q, union, delta, head_target=(b,))
        assert hit is not None and hit[X] == b
        miss = find_homomorphism_delta(q, union, delta, head_target=(a,))
        # member(a, b) is not in the delta: the a-rooted embedding is old.
        assert miss is None

    def test_unsatisfiable_head_seed_short_circuits(self):
        index = FactIndex([member(a, b)])
        q = ConjunctiveQuery("q", (a,), (member(a, X),))
        assert (
            find_homomorphism_delta(q, index, (member(a, b),), head_target=(b,))
            is None
        )


class TestStatsAndModes:
    def test_stats_accumulate(self):
        old = [member(a, b)]
        new = [member(b, c)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y), member(Y, Z)))
        stats = SearchStats()
        list(all_homomorphisms_delta(q, union, delta, stats=stats))
        assert stats.nodes > 0

    def test_reorder_flag_changes_nothing_semantically(self):
        old = [member(a, b), sub(b, c)]
        new = [member(b, c), sub(c, d), member(c, d)]
        union, delta = split_index(old, new)
        q = ConjunctiveQuery("q", (X,), (member(X, Y), sub(Y, Z)))
        ordered = set(all_homomorphisms_delta(q, union, delta, reorder=True))
        naive = set(all_homomorphisms_delta(q, union, delta, reorder=False))
        assert ordered == naive

    def test_match_conjunction_delta_base_substitution(self):
        union, delta = split_index([member(a, b)], [member(b, c)])
        from repro.core.substitution import Substitution

        base = Substitution({X: b})
        results = list(
            match_conjunction_delta((member(X, Y),), union, delta, base)
        )
        assert len(results) == 1 and results[0][Y] == c
