"""Unit tests for the homomorphism engine."""

import pytest

from repro.core.atoms import Atom, data, member, sub
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Null, Variable
from repro.datalog.index import FactIndex
from repro.homomorphism import (
    all_homomorphisms,
    all_query_homomorphisms,
    find_homomorphism,
    find_query_homomorphism,
    head_seed,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestHeadSeed:
    def test_binds_head_variables(self):
        seed = head_seed((X, Y), (a, b))
        assert seed is not None and seed[X] == a and seed[Y] == b

    def test_repeated_variable_consistent(self):
        assert head_seed((X, X), (a, a)) is not None
        assert head_seed((X, X), (a, b)) is None

    def test_constant_must_equal_target(self):
        assert head_seed((a,), (a,)) is not None
        assert head_seed((a,), (b,)) is None

    def test_arity_mismatch(self):
        assert head_seed((X,), (a, b)) is None

    def test_empty_heads(self):
        seed = head_seed((), ())
        assert seed is not None and len(seed) == 0


class TestInstanceHomomorphisms:
    def index(self):
        return FactIndex([member(a, b), member(b, c), sub(b, c)])

    def test_enumerates_answers(self):
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        answers = {s[X] for s in all_homomorphisms(q, self.index())}
        assert answers == {a, b}

    def test_head_target_filters(self):
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        got = list(all_homomorphisms(q, self.index(), head_target=(b,)))
        assert len(got) == 1 and got[0][X] == b

    def test_impossible_head_target_short_circuits(self):
        q = ConjunctiveQuery("q", (a,), (member(X, Y),))
        assert list(all_homomorphisms(q, self.index(), head_target=(c,))) == []

    def test_find_returns_first_or_none(self):
        q = ConjunctiveQuery("q", (X,), (member(X, Y), sub(Y, Z)))
        assert find_homomorphism(q, self.index()) is not None
        q_bad = ConjunctiveQuery("q", (X,), (member(X, a),))
        assert find_homomorphism(q_bad, self.index()) is None

    def test_variables_may_map_to_nulls(self):
        index = FactIndex([Atom("member", (Null(1), a))])
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        sigma = find_homomorphism(q, index)
        assert sigma is not None and sigma[X] == Null(1)

    def test_constants_never_map_to_nulls(self):
        index = FactIndex([Atom("member", (Null(1), a))])
        q = ConjunctiveQuery("q", (), (member(b, a),))
        assert find_homomorphism(q, index) is None


class TestQueryHomomorphisms:
    def test_identity_homomorphism_exists(self):
        q = ConjunctiveQuery("q", (X,), (member(X, Y),))
        assert find_query_homomorphism(q, q) is not None

    def test_specialisation_direction(self):
        """q2 = q1 + extra atom: hom q1 -> q2 exists (q2 contained in q1)."""
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, Y), sub(Y, Z)))
        assert find_query_homomorphism(q1, q2) is not None
        assert find_query_homomorphism(q2, q1) is None

    def test_head_must_map_to_head(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (Y,), (member(X, Y),))
        # body(q1) maps into body(q2), but head X must land on q2's head Y.
        sigma = find_query_homomorphism(q1, q2)
        assert sigma is None

    def test_constant_heads(self):
        q1 = ConjunctiveQuery("q1", (a,), (member(a, Y),))
        q2 = ConjunctiveQuery("q2", (a,), (member(a, b),))
        assert find_query_homomorphism(q1, q2) is not None

    def test_arity_mismatch_raises(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X, Y), (member(X, Y),))
        with pytest.raises(QueryError):
            find_query_homomorphism(q1, q2)

    def test_shared_variable_names_no_leak(self):
        """q and target may reuse names; matching treats target vars as values."""
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (Y,), (member(Y, X),))
        sigma = find_query_homomorphism(q1, q2)
        assert sigma is not None
        assert sigma[X] == Y and sigma[Y] == X

    def test_all_query_homomorphisms_counts(self):
        q1 = ConjunctiveQuery("q1", (), (member(X, Y),))
        q2 = ConjunctiveQuery(
            "q2", (), (member(a, b), member(b, c))
        )
        assert len(list(all_query_homomorphisms(q1, q2))) == 2


class TestSearchStats:
    """Node/backtrack counters of the backtracking search.

    The search is fully deterministic (fixed join order, insertion-ordered
    candidate enumeration), so the counts on the paper's fixtures are
    exact regression values, not bounds.
    """

    def _example1(self):
        from repro.workloads.corpus import EXAMPLE1_QUERY

        return EXAMPLE1_QUERY

    def _figure1(self):
        from repro.workloads.corpus import EXAMPLE2_QUERY

        return EXAMPLE2_QUERY

    def test_example1_self_homomorphism_counts(self):
        from repro.homomorphism import SearchStats

        stats = SearchStats()
        homs = list(
            all_query_homomorphisms(self._example1(), self._example1(), stats=stats)
        )
        assert len(homs) == 1
        assert stats.solutions == 1
        assert stats.nodes == 4  # one successful extension per body atom
        assert stats.backtracks == 4  # full enumeration unwinds every level

    def test_example1_witness_into_chase_counts(self):
        from repro.chase.engine import chase
        from repro.homomorphism import SearchStats

        q = self._example1()
        result = chase(q, max_level=4)
        stats = SearchStats()
        witness = find_homomorphism(
            q, result.instance.index, head_target=result.head, stats=stats
        )
        assert witness is not None
        # find_* stops at the first witness: no exhaustive unwinding.
        assert (stats.nodes, stats.backtracks, stats.solutions) == (4, 0, 1)

    def test_figure1_witness_into_chase_counts(self):
        from repro.chase.engine import chase
        from repro.homomorphism import SearchStats

        q = self._figure1()
        result = chase(q, max_level=6)
        stats = SearchStats()
        witness = find_homomorphism(
            q, result.instance.index, head_target=result.head, stats=stats
        )
        assert witness is not None
        assert (stats.nodes, stats.backtracks, stats.solutions) == (3, 0, 1)

    def test_figure1_self_homomorphism_counts(self):
        from repro.homomorphism import SearchStats

        stats = SearchStats()
        homs = list(
            all_query_homomorphisms(self._figure1(), self._figure1(), stats=stats)
        )
        assert len(homs) == 1
        assert (stats.nodes, stats.backtracks, stats.solutions) == (3, 3, 1)

    def test_counts_are_reproducible(self):
        from repro.homomorphism import SearchStats

        runs = []
        for _ in range(2):
            stats = SearchStats()
            list(
                all_query_homomorphisms(
                    self._example1(), self._example1(), stats=stats
                )
            )
            runs.append((stats.nodes, stats.backtracks, stats.solutions))
        assert runs[0] == runs[1]

    def test_stats_accumulate_across_searches(self):
        from repro.homomorphism import SearchStats

        stats = SearchStats()
        q = self._example1()
        list(all_query_homomorphisms(q, q, stats=stats))
        first = stats.nodes
        list(all_query_homomorphisms(q, q, stats=stats))
        assert stats.nodes == 2 * first
        assert stats.solutions == 2

    def test_as_dict_and_str(self):
        from repro.homomorphism import SearchStats

        stats = SearchStats(nodes=5, backtracks=2, solutions=1)
        assert stats.as_dict() == {"nodes": 5, "backtracks": 2, "solutions": 1}
        assert "5 nodes" in str(stats)
