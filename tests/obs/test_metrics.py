"""Metrics registry: instrument identity, kinds, and dump formats."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    global_registry,
)


class TestCounters:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("chase.triggers", rule="rho5")
        b = reg.counter("chase.triggers", rule="rho5")
        assert a is b
        assert reg.counter("chase.triggers", rule="rho6") is not a

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", p="1", q="2")
        b = reg.counter("x", q="2", p="1")
        assert a is b

    def test_inc_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("store.live_entries")
        with pytest.raises(TypeError):
            reg.gauge("store.live_entries")


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("store.live_entries")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2


class TestHistograms:
    def test_bucketing_and_batch_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram("chase.level_of_conjunct")
        h.observe(0, 5)
        h.observe(3)
        h.observe(10_000)
        dump = h.dump()
        assert dump["count"] == 7
        assert dump["sum"] == 3 + 10_000
        assert dump["buckets"]["<=0"] == 5
        assert dump["buckets"]["<=4"] == 1
        assert dump["buckets"]["+Inf"] == 1

    def test_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("custom", buckets=(1, 10))
        h.observe(5)
        assert h.buckets == (1, 10)
        assert h.dump()["buckets"]["<=10"] == 1

    def test_default_buckets_cover_paper_bounds(self):
        # Theorem-12 bounds for the corpus queries land within 256 levels.
        assert DEFAULT_BUCKETS[-1] >= 256


class TestRegistryDump:
    def test_as_dict_sections_and_label_grouping(self):
        reg = MetricsRegistry()
        reg.counter("chase.triggers", rule="rho5").inc(2)
        reg.counter("chase.triggers", rule="rho7").inc()
        reg.counter("containment.checks").inc()
        reg.gauge("store.live_entries").set(4)
        reg.histogram("levels").observe(1)
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert d["counters"]["chase.triggers"] == {"rule=rho5": 2, "rule=rho7": 1}
        assert d["counters"]["containment.checks"] == 1
        assert d["gauges"]["store.live_entries"] == 4
        assert d["histograms"]["levels"]["count"] == 1

    def test_json_round_trip_and_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        path = tmp_path / "metrics.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"]["a"] == 1

    def test_reset_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()
