"""Decision provenance: reconstruction from containment evidence."""

import json

from repro.containment.bounded import ContainmentChecker
from repro.containment.classic import contained_classic
from repro.core import ConjunctiveQuery, Variable, data, funct, sub, type_
from repro.obs.provenance import build_provenance

T1, T2, T3, A, B, X, O = (Variable(n) for n in "T1 T2 T3 A B X O".split())

#: The paper's Section-1 pair: q ⊆ qq under Sigma_FL.
Q = ConjunctiveQuery("q", (A, B), (type_(T1, A, T2), sub(T2, T3), type_(T3, B, X)))
QQ = ConjunctiveQuery("qq", (A, B), (type_(T1, A, T2), type_(T2, B, X)))


class TestPositiveVerdict:
    def setup_method(self):
        self.result = ContainmentChecker().check(Q, QQ, explain=True)

    def test_provenance_attached_by_explain_flag(self):
        assert self.result.provenance is not None
        assert self.result.provenance.contained is True
        assert self.result.provenance.reason == "homomorphism"

    def test_witness_levels_within_bound(self):
        prov = self.result.provenance
        assert prov.witness_levels  # a positive verdict has a witness
        assert prov.max_witness_level <= prov.level_bound

    def test_per_level_facts_cover_prefix(self):
        prov = self.result.provenance
        assert 0 in prov.per_level_facts
        assert sum(prov.per_level_facts.values()) == self.result.chase_result.size()

    def test_firing_sequence_matches_rule_counts_shape(self):
        prov = self.result.provenance
        assert prov.rule_firings  # Sigma_FL derives facts on this pair
        # Every fired rule in the sequence is accounted for in the totals
        # (totals may exceed the sequence: merged-away conjuncts).
        for rule, level in prov.rule_firings:
            assert rule in prov.rule_counts
            assert level >= 0

    def test_as_dict_is_json_ready(self):
        payload = json.loads(json.dumps(self.result.provenance.as_dict()))
        assert payload["q1"] == "q" and payload["q2"] == "qq"
        assert payload["contained"] is True

    def test_pretty_mentions_levels_and_rules(self):
        text = self.result.provenance.pretty()
        assert "⊆" in text
        assert "witness touches levels" in text
        assert "firing sequence" in text


class TestOtherVerdicts:
    def test_negative_verdict_has_no_witness_levels(self):
        result = ContainmentChecker().check(QQ, Q, explain=True)
        prov = result.provenance
        assert prov is not None
        assert prov.contained is False
        assert prov.witness_levels == ()
        assert prov.max_witness_level is None
        assert "⊄" in prov.pretty()

    def test_chase_failure_has_empty_profile(self):
        from repro.core import Constant

        o, a = Variable("O"), Variable("A")
        # funct(A, O) equates the two data values red and blue — an EGD
        # clash on distinct constants, so the chase of `red` fails.
        red = ConjunctiveQuery(
            "qfail",
            (),
            (
                data(o, a, Constant("red")),
                data(o, a, Constant("blue")),
                funct(a, o),
            ),
        )
        other = ConjunctiveQuery("qother", (), (sub(Variable("C"), Variable("D")),))
        result = ContainmentChecker().check(red, other, explain=True)
        prov = result.provenance
        assert result.contained and prov.reason == "chase-failure"
        assert prov.witness_levels == ()
        assert prov.per_level_facts == {}
        assert prov.rule_firings == ()

    def test_classic_result_without_chase_evidence(self):
        result = contained_classic(Q, QQ)
        assert build_provenance(result) is None
        assert result.explain_data() is None

    def test_lazy_explain_data_builds_and_caches(self):
        result = ContainmentChecker().check(Q, QQ)  # no explain flag
        assert result.provenance is None
        prov = result.explain_data()
        assert prov is not None
        assert result.explain_data() is prov
