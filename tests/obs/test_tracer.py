"""Spans: nesting, counters, exports, and the no-op tracer contract."""

import csv
import io
import json

import pytest

from repro.obs.tracer import CSV_COLUMNS, NOOP_TRACER, NoopTracer, Tracer


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.spans] == ["outer"]
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_counters_accumulate(self):
        tracer = Tracer()
        with tracer.span("phase") as sp:
            sp.add("nodes", 3)
            sp.add("nodes")
            sp.add("backtracks", 2)
        assert sp.counters == {"nodes": 4, "backtracks": 2}

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("phase", rule="rho5") as sp:
            sp.set(level=3, fired=True)
        assert sp.attributes == {"rule": "rho5", "level": 3, "fired": True}

    def test_duration_positive_and_current_tracking(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("timed") as sp:
            assert tracer.current() is sp
        assert tracer.current() is None
        assert sp.duration_seconds >= 0.0
        assert sp.end_s is not None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.current() is None
        assert tracer.spans[0].end_s is not None

    def test_reset_drops_everything(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.as_dicts() == []


class TestExports:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("root", query="q") as sp:
            sp.add("triggers", 2)
            with tracer.span("child"):
                pass
        return tracer

    def test_json_round_trip(self):
        tracer = self._sample()
        trees = json.loads(tracer.to_json())
        assert len(trees) == 1
        root = trees[0]
        assert root["name"] == "root"
        assert root["attributes"] == {"query": "q"}
        assert root["counters"] == {"triggers": 2}
        assert [c["name"] for c in root["children"]] == ["child"]
        assert root["start_seconds"] == pytest.approx(0.0, abs=1e-3)
        assert root["duration_seconds"] >= root["children"][0]["duration_seconds"]

    def test_csv_has_one_row_per_span_with_depths(self):
        tracer = self._sample()
        rows = list(csv.reader(io.StringIO(tracer.to_csv())))
        assert rows[0] == list(CSV_COLUMNS)
        assert [(r[0], r[1]) for r in rows[1:]] == [("0", "root"), ("1", "child")]
        assert "triggers=2" in rows[1][4]

    def test_write_picks_format_from_suffix(self, tmp_path):
        tracer = self._sample()
        json_path = tmp_path / "trace.json"
        csv_path = tmp_path / "trace.csv"
        tracer.write(json_path)
        tracer.write(csv_path)
        assert json.loads(json_path.read_text())[0]["name"] == "root"
        assert csv_path.read_text().startswith(",".join(CSV_COLUMNS))

    def test_non_jsonable_attributes_coerced(self):
        tracer = Tracer()
        with tracer.span("a", obj=object()):
            pass
        json.loads(tracer.to_json())  # must not raise


class TestNoopTracer:
    def test_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("anything", k=1) as sp:
            sp.add("c", 5)
            sp.set(x=1)
        assert tracer.spans == ()
        assert tracer.as_dicts() == []
        assert tracer.to_json() == "[]"
        assert sp.counters == {}

    def test_shared_singleton_span(self):
        a = NOOP_TRACER.span("a")
        b = NOOP_TRACER.span("b", k=2)
        assert a is b  # one stateless object, nothing allocated per call

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NOOP_TRACER.enabled is False

    def test_csv_is_header_only(self):
        rows = list(csv.reader(io.StringIO(NOOP_TRACER.to_csv())))
        assert rows == [list(CSV_COLUMNS)]
